//! # stone-repro
//!
//! Facade crate for the STONE reproduction workspace. It re-exports every
//! subsystem so that examples and downstream users can depend on a single
//! crate:
//!
//! * [`obs`] — tracing, metrics and kernel-profiling substrate
//!   (`STONE_TRACE` / `STONE_PROF`);
//! * [`par`] — dependency-free scoped data parallelism (`STONE_THREADS`);
//! * [`tensor`] — dense `f32` tensors and small linear algebra;
//! * [`nn`] — layer-based neural networks with manual backprop;
//! * [`radio`] — the indoor WiFi propagation simulator;
//! * [`dataset`] — long-term fingerprint datasets and evaluation suites;
//! * [`core`](mod@core) — the STONE Siamese-encoder framework itself;
//! * [`baselines`] — KNN (LearnLoc), LT-KNN, GIFT and SCNN comparators;
//! * [`eval`] — the experiment runner and report rendering;
//! * [`serve`] — the batching localization server with per-venue model
//!   registry and warm reload;
//! * [`net`] — the framed-TCP front-end (wire codec, listener, client) in
//!   front of the server.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use stone as core;
pub use stone_baselines as baselines;
pub use stone_dataset as dataset;
pub use stone_eval as eval;
pub use stone_net as net;
pub use stone_nn as nn;
pub use stone_obs as obs;
pub use stone_par as par;
pub use stone_radio as radio;
pub use stone_serve as serve;
pub use stone_tensor as tensor;

/// Commonly used items, suitable for glob import in examples.
pub mod prelude {
    pub use stone::{StoneBuilder, StoneConfig, StoneLocalizer};
    pub use stone_dataset::{
        Fingerprint, FingerprintDataset, Framework, Localizer, LongTermSuite, SuiteConfig,
        SuiteKind,
    };
    pub use stone_eval::{Experiment, ExperimentReport};
    pub use stone_net::{NetClient, NetServer};
    pub use stone_radio::Point2;
    pub use stone_serve::{LocalizationServer, ModelRegistry, ServerConfig};
}
