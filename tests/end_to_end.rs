//! Cross-crate integration: the full offline→online pipeline for all five
//! frameworks on a miniature suite.

use stone::{StoneBuilder, StoneConfig, TrainerConfig};
use stone_baselines::{GiftBuilder, KnnBuilder, LtKnnBuilder, ScnnBuilder};
use stone_dataset::{office_suite, Framework, SuiteConfig};
use stone_eval::Experiment;

fn tiny_stone() -> StoneBuilder {
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 4,
            epochs: 3,
            triplets_per_epoch: 96,
            batch_size: 16,
            ..TrainerConfig::quick()
        },
        ..StoneConfig::quick()
    })
}

#[test]
fn all_five_frameworks_run_end_to_end() {
    let suite = office_suite(&SuiteConfig::tiny(21));
    let stone = tiny_stone();
    let knn = KnnBuilder::default();
    let ltknn = LtKnnBuilder::default();
    let gift = GiftBuilder::default();
    let scnn = ScnnBuilder::quick();
    let frameworks: Vec<&dyn Framework> = vec![&stone, &knn, &ltknn, &gift, &scnn];

    let report = Experiment::new(21).run(&suite, &frameworks);

    assert_eq!(report.series.len(), 5);
    assert_eq!(report.bucket_labels.len(), 16);
    let bounds = suite.env.floorplan().bounds();
    let diag = (bounds.width().powi(2) + bounds.height().powi(2)).sqrt();
    for s in &report.series {
        assert_eq!(s.mean_errors_m.len(), 16, "{} series length", s.framework);
        for (i, &e) in s.mean_errors_m.iter().enumerate() {
            assert!(e.is_finite(), "{} bucket {i} not finite", s.framework);
            assert!(e >= 0.0, "{} bucket {i} negative", s.framework);
            // GIFT dead-reckons and may wander, but nobody should be worse
            // than several building diagonals on average.
            assert!(e < 4.0 * diag, "{} bucket {i} error {e} m is absurd", s.framework);
        }
    }

    // Only LT-KNN re-trains post-deployment.
    for s in &report.series {
        assert_eq!(
            s.requires_retraining,
            s.framework == "LT-KNN",
            "{} retraining flag",
            s.framework
        );
    }

    // Day-0 sanity: the instance-matched KNN baseline must be accurate on
    // the collection instance it was trained in.
    let knn_series = report.series_for("KNN").expect("KNN evaluated");
    assert!(
        knn_series.mean_errors_m[0] < 8.0,
        "KNN CI0 error {:.2} m is too high for same-instance data",
        knn_series.mean_errors_m[0]
    );
}

#[test]
fn stone_degradation_stays_bounded_on_tiny_suite() {
    // Smoke bound: even the deliberately under-trained tiny configuration
    // must not blow up after the CI-11 AP removal (the failure mode we saw
    // during development was >10 m post-removal). The paper-shape claim —
    // STONE degrading less than raw KNN — is evaluated at realistic scale
    // by the fig5/fig6 benches, not on this 8-RP miniature where a 6 m RP
    // pitch makes raw KNN trivially stable.
    let suite = office_suite(&SuiteConfig::tiny(33));
    let stone = tiny_stone();
    let knn = KnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&stone, &knn];
    let report = Experiment::new(33).run(&suite, &frameworks);

    let s = report.series_for("STONE").expect("series exists");
    let early: f64 = s.mean_errors_m[..3].iter().sum::<f64>() / 3.0;
    let late: f64 = s.mean_errors_m[12..].iter().sum::<f64>() / 4.0;
    assert!(late < 8.0, "STONE post-removal error {late:.2} m blew up");
    assert!(late - early < 6.0, "STONE degraded catastrophically: {early:.2} -> {late:.2} m");
}

#[test]
fn report_rendering_is_complete() {
    let suite = office_suite(&SuiteConfig::tiny(5));
    let knn = KnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&knn];
    let report = Experiment::new(5).run(&suite, &frameworks);
    let table = report.render_table();
    for label in &report.bucket_labels {
        assert!(table.contains(label.as_str()), "missing {label}");
    }
    let csv = report.to_csv();
    assert_eq!(csv.lines().count(), 1 + 16);
}
