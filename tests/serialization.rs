//! Serialization across crates: dataset CSV roundtrips and encoder weight
//! export/import (the deployment path of the paper's Fig. 2).

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone::{build_encoder, EncoderConfig, ImageCodec, StoneBuilder, StoneConfig, TrainerConfig};
use stone_dataset::{io, office_suite, uji_suite, SuiteConfig};
use stone_nn::{load_weights, save_weights};

#[test]
fn dataset_csv_roundtrip_all_suites_is_exact() {
    for (name, train) in [
        ("office", office_suite(&SuiteConfig::tiny(1)).train),
        ("uji", uji_suite(&SuiteConfig::tiny(1)).train),
    ] {
        let csv = io::to_csv(&train);
        let back = io::from_csv(name, &csv).expect("roundtrip parses");
        assert_eq!(back.ap_count(), train.ap_count(), "{name} ap count");
        // Bit-exact: positions, timestamps and RSSI all use shortest
        // round-trip float formatting, so nothing is truncated away.
        assert_eq!(back.records(), train.records(), "{name} records");
        assert_eq!(back.rps(), train.rps(), "{name} reference points");
    }
}

#[test]
fn spilled_buckets_roundtrip_from_disk() {
    // The streaming CSV-spill path: write every bucket of a plan to disk,
    // read them back, and require byte-identity with the in-memory suite.
    let cfg = SuiteConfig::tiny(8);
    let plan = stone_dataset::office_plan(&cfg);
    let dir = std::env::temp_dir().join(format!("stone-spill-{}", std::process::id()));
    let paths = plan.spill_buckets(&dir).expect("spill writes");
    let suite = plan.build();
    assert_eq!(paths.len(), suite.buckets.len());
    for (path, expect) in paths.iter().zip(&suite.buckets) {
        let text = std::fs::read_to_string(path).expect("spilled file readable");
        let bucket = io::bucket_from_csv(&text).expect("spilled bucket parses");
        assert_eq!(&bucket, expect, "bucket {} diverged through disk", expect.label);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn trained_encoder_weights_roundtrip() {
    let suite = office_suite(&SuiteConfig::tiny(2));
    let localizer = StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 4,
            epochs: 2,
            triplets_per_epoch: 32,
            batch_size: 16,
            ..TrainerConfig::quick()
        },
        ..StoneConfig::quick()
    })
    .fit(&suite.train, 2);

    let blob = save_weights(localizer.encoder().net());

    // Fresh architecture, different init, then load.
    let codec = ImageCodec::new(suite.train.ap_count());
    let mut rng = StdRng::seed_from_u64(12345);
    let mut fresh = build_encoder(&EncoderConfig::paper(codec.side(), 4), &mut rng);
    let probe = suite.train.records()[0].rssi.as_slice();
    let x = codec.encode_batch(&[probe]);
    assert_ne!(fresh.predict(&x).into_vec(), localizer.embed(probe));

    load_weights(&mut fresh, &blob).expect("architectures match");
    assert_eq!(fresh.predict(&x).into_vec(), localizer.embed(probe));
}

#[test]
fn weight_blob_rejects_other_architecture() {
    let suite = office_suite(&SuiteConfig::tiny(3));
    let codec = ImageCodec::new(suite.train.ap_count());
    let mut rng = StdRng::seed_from_u64(1);
    let net_a = build_encoder(&EncoderConfig::paper(codec.side(), 4), &mut rng);
    let mut net_b = build_encoder(&EncoderConfig::paper(codec.side(), 8), &mut rng);
    let blob = save_weights(&net_a);
    assert!(load_weights(&mut net_b, &blob).is_err());
}
