//! Reproducibility: identical seeds must reproduce experiments bit-for-bit
//! across the whole stack (simulator → dataset → training → evaluation).

use stone::{StoneBuilder, StoneConfig, TrainerConfig};
use stone_baselines::KnnBuilder;
use stone_dataset::{basement_suite, office_suite, Framework, SuiteConfig};
use stone_eval::Experiment;

fn tiny_stone() -> StoneBuilder {
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 3,
            epochs: 2,
            triplets_per_epoch: 32,
            batch_size: 16,
            ..TrainerConfig::quick()
        },
        ..StoneConfig::quick()
    })
}

#[test]
fn same_seed_same_report() {
    let run = || {
        let suite = office_suite(&SuiteConfig::tiny(77));
        let stone = tiny_stone();
        let knn = KnnBuilder::default();
        let frameworks: Vec<&dyn Framework> = vec![&stone, &knn];
        Experiment::new(77).run(&suite, &frameworks)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two identical runs diverged");
}

#[test]
fn different_seed_different_numbers() {
    let run = |seed: u64| {
        let suite = office_suite(&SuiteConfig::tiny(seed));
        let knn = KnnBuilder::default();
        let frameworks: Vec<&dyn Framework> = vec![&knn];
        Experiment::new(seed).run(&suite, &frameworks)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(
        a.series[0].mean_errors_m, b.series[0].mean_errors_m,
        "different seeds produced identical error series"
    );
}

#[test]
fn suites_differ_across_venues() {
    let office = office_suite(&SuiteConfig::tiny(9));
    let basement = basement_suite(&SuiteConfig::tiny(9));
    assert_ne!(office.train.ap_count(), 0);
    assert_ne!(
        office.train.records()[0].rssi,
        basement.train.records()[0].rssi,
        "office and basement generated identical fingerprints"
    );
    // Path lengths differ (48 vs 61 RPs before striding).
    assert!(basement.train.rps().len() >= office.train.rps().len());
}
