//! Workspace smoke test: the facade's documented entry points exist and a
//! miniature pipeline runs deterministically.

use stone_repro::prelude::*;

/// Every name the crate-level docs promise is importable through the
/// prelude and usable without reaching into the member crates.
#[test]
fn prelude_reexports_resolve() {
    // Types resolve and the builder API is reachable through the prelude.
    let _config: StoneConfig = StoneConfig::quick();
    let _builder: StoneBuilder = StoneBuilder::quick();
    let suite_cfg: SuiteConfig = SuiteConfig::tiny(1);
    let _kind: SuiteKind = SuiteKind::Office;
    let origin: Point2 = Point2::new(0.0, 0.0);
    assert_eq!(origin.distance(origin), 0.0);

    // The facade's module aliases point at the member crates.
    let eye = stone_repro::tensor::Tensor::eye(2);
    assert_eq!(eye.as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    let suite: LongTermSuite = stone_repro::dataset::office_suite(&suite_cfg);
    assert!(!suite.train.is_empty());
}

/// A tiny office suite trains and localizes end to end, twice, with
/// identical results under a fixed seed — the workspace-level determinism
/// contract. The trainer is shrunk far below `quick()` so the test stays
/// fast in debug builds.
#[test]
fn tiny_office_suite_trains_and_localizes_deterministically() {
    fn run() -> Vec<(f64, f64)> {
        use stone_repro::core::{StoneConfig, TrainerConfig};
        let suite = stone_repro::dataset::office_suite(&SuiteConfig::tiny(7));
        let cfg = StoneConfig {
            trainer: TrainerConfig {
                embed_dim: 3,
                epochs: 2,
                triplets_per_epoch: 32,
                batch_size: 16,
                ..TrainerConfig::quick()
            },
            ..StoneConfig::quick()
        };
        let localizer: StoneLocalizer = StoneBuilder::from_config(cfg).fit(&suite.train, 7);
        suite.buckets[..4]
            .iter()
            .map(|bucket| {
                let fp = &bucket.trajectories[0].fingerprints[0];
                let p = localizer.locate(&fp.rssi);
                assert!(
                    p.x.is_finite() && p.y.is_finite(),
                    "predicted position must be finite, got {p}"
                );
                (p.x, p.y)
            })
            .collect()
    }

    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed must reproduce identical predictions");
}

/// The `Localizer`/`Framework` traits are usable through the prelude with a
/// baseline framework, not just STONE.
#[test]
fn framework_trait_objects_work_through_prelude() {
    let suite = stone_repro::dataset::office_suite(&SuiteConfig::tiny(3));
    let knn = stone_repro::baselines::KnnBuilder::default();
    let loc = Framework::fit(&knn, &suite.train, 3);
    let fp = &suite.buckets[0].trajectories[0].fingerprints[0];
    let p = Localizer::locate(loc.as_ref(), &fp.rssi);
    assert!(p.x.is_finite() && p.y.is_finite());
}
