//! The parallel subsystem's contract (see `docs/PERFORMANCE.md`): every
//! parallel path — tiled matmul, batched embedding, parallel KNN sweep,
//! suite sharding, the `LocalizationServer` batch executors, and the
//! concurrent experiment runner — produces **bitwise-identical** results
//! at thread counts 1, 2 and 8, and the AVX2 matmul microkernels are
//! bit-equal to the `STONE_NO_SIMD` portable fallback. Since PR 6 every
//! parallel region runs on the long-lived `stone-par` worker pool, so
//! these tests also pin that results are independent of pool state
//! (warm, cold, shared across tests), and they cover the sub-2²⁰-MAC
//! sizes that only parallelize now that dispatch costs ~3.3 µs.
//!
//! `stone_par::with_threads` installs a process-wide override, so every
//! test in this binary takes `THREAD_LOCK` before touching it.
//!
//! Comparisons between *batched* and *single-scan* execution are pinned
//! to the portable backend: the opt-in `STONE_FMA=1` backend contracts
//! only the tiled microkernel, so batch-vs-single equality legitimately
//! does not hold under it (documented on `MatmulBackend::Fma`), while
//! thread-count invariance holds on every backend, FMA included.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone::{EmbeddingKnn, KnnMode, StoneBuilder, StoneConfig, TrainerConfig};
use stone_baselines::{KnnBuilder, LtKnnBuilder};
use stone_dataset::{
    basement_plan, office_plan, office_suite, uji_plan, uji_suite, Framework, Localizer,
    LongTermSuite, RpId, SuiteConfig, SuitePlan,
};
use stone_eval::{Experiment, ExperimentReport};
use stone_par::with_threads;
use stone_radio::Point2;
use stone_serve::{LocalizationServer, ModelRegistry, ServerConfig};
use stone_tensor::{matmul, matmul_a_bt, matmul_at_b, rng::uniform_tensor, Tensor};

static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    THREAD_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` at every thread count and asserts all results equal the
/// single-thread one.
fn assert_thread_invariant<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let baseline = with_threads(1, &f);
    for nt in THREAD_COUNTS {
        assert_eq!(with_threads(nt, &f), baseline, "diverged at {nt} threads");
    }
}

#[test]
fn matmul_variants_are_bitwise_identical_across_thread_counts() {
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(11);
    // 168·118·90 ≈ 1.78M MACs — comfortably above the parallel threshold
    // (2²⁰ since the PR 4 re-derivation), with split points that don't
    // divide evenly at 2 or 8 threads and ragged register-tile edges in
    // every dimension.
    let a = uniform_tensor(&mut rng, vec![168, 118], -2.0, 2.0);
    let b = uniform_tensor(&mut rng, vec![118, 90], -2.0, 2.0);
    let at = uniform_tensor(&mut rng, vec![118, 168], -2.0, 2.0);
    let bt = uniform_tensor(&mut rng, vec![90, 118], -2.0, 2.0);
    assert_thread_invariant(|| -> Vec<Vec<f32>> {
        vec![
            matmul(&a, &b).into_vec(),
            matmul_at_b(&at, &b).into_vec(),
            matmul_a_bt(&a, &bt).into_vec(),
        ]
    });
}

#[test]
fn simd_kernels_are_bitwise_identical_to_no_simd_fallback() {
    let _g = lock();
    if !stone_tensor::simd_available() {
        // Single-backend machine: the contract is vacuous here.
        return;
    }
    if std::env::var("STONE_NO_SIMD").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0") {
        // STONE_NO_SIMD=1 is the operator's AVX2 kill-switch, and
        // `with_backend(Simd)` would override it by design (it's a test
        // hook) — honor the kill-switch here so the CI no-SIMD job never
        // executes AVX2 code. The default-environment run of this test
        // covers the comparison.
        return;
    }
    // The AVX2 microkernel must be an execution strategy, never a numerics
    // change: bit-equality with the portable fallback on every variant,
    // over tiled, ragged-edge and narrow (< one tile) shapes, serial and
    // threaded.
    let mut rng = StdRng::seed_from_u64(13);
    for (m, k, n) in [(168, 118, 90), (64, 64, 64), (13, 29, 11), (3, 500, 40), (1, 64, 8)] {
        let a = uniform_tensor(&mut rng, vec![m, k], -2.0, 2.0);
        let b = uniform_tensor(&mut rng, vec![k, n], -2.0, 2.0);
        let at = uniform_tensor(&mut rng, vec![k, m], -2.0, 2.0);
        let bt = uniform_tensor(&mut rng, vec![n, k], -2.0, 2.0);
        let run = || -> Vec<Vec<f32>> {
            vec![
                matmul(&a, &b).into_vec(),
                matmul_at_b(&at, &b).into_vec(),
                matmul_a_bt(&a, &bt).into_vec(),
            ]
        };
        for nt in THREAD_COUNTS {
            let portable =
                stone_tensor::with_backend(stone_tensor::MatmulBackend::Portable, || {
                    with_threads(nt, run)
                });
            let simd = stone_tensor::with_backend(stone_tensor::MatmulBackend::Simd, || {
                with_threads(nt, run)
            });
            assert_eq!(portable, simd, "{m}x{k}x{n} diverged at {nt} threads");
        }
    }
}

#[test]
fn matmul_parallel_path_equals_pre_parallel_reference() {
    let _g = lock();
    // Freeze the semantics: the tiled/parallel kernel must match the naive
    // triple loop (the seed implementation) exactly, element order and
    // all, not just approximately. 128·112·80 ≈ 1.15M MACs keeps the
    // parallel dispatch engaged above the PR 4 threshold.
    let mut rng = StdRng::seed_from_u64(12);
    let a = uniform_tensor(&mut rng, vec![128, 112], -1.0, 1.0);
    let b = uniform_tensor(&mut rng, vec![112, 80], -1.0, 1.0);
    let mut naive = Tensor::zeros(vec![128, 80]);
    for i in 0..128 {
        for p in 0..112 {
            let av = a.at2(i, p);
            if av != 0.0 {
                for j in 0..80 {
                    let v = naive.at2(i, j) + av * b.at2(p, j);
                    naive.set2(i, j, v);
                }
            }
        }
    }
    // Pinned portable: equality with the naive loop is a mul-then-add
    // contract that the opt-in STONE_FMA=1 backend deliberately contracts
    // away (thread-count invariance, which holds on every backend, is
    // covered by the tests above).
    stone_tensor::with_backend(stone_tensor::MatmulBackend::Portable, || {
        for nt in THREAD_COUNTS {
            let c = with_threads(nt, || matmul(&a, &b));
            assert_eq!(c.as_slice(), naive.as_slice(), "{nt} threads");
        }
    });
}

#[test]
fn sub_threshold_matmuls_are_bitwise_identical_across_thread_counts() {
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(17);
    // Shapes straddling the PR 6 threshold re-derivation (PAR_MIN_MACS
    // 2²⁰ → 2¹⁸ against pool dispatch):
    //   90·70·60  = 378K MACs — serial before the pool, parallel now;
    //   64·64·64  = 262 144 = exactly 2¹⁸ — the boundary engages (>=);
    //   40·40·40  = 64K — still serial on every path.
    // Bitwise equality across thread counts must hold in all three
    // regimes, with ragged tile edges and uneven row splits throughout.
    for (m, k, n) in [(90, 70, 60), (64, 64, 64), (40, 40, 40)] {
        let a = uniform_tensor(&mut rng, vec![m, k], -2.0, 2.0);
        let b = uniform_tensor(&mut rng, vec![k, n], -2.0, 2.0);
        let at = uniform_tensor(&mut rng, vec![k, m], -2.0, 2.0);
        let bt = uniform_tensor(&mut rng, vec![n, k], -2.0, 2.0);
        assert_thread_invariant(|| -> Vec<Vec<f32>> {
            vec![
                matmul(&a, &b).into_vec(),
                matmul_at_b(&at, &b).into_vec(),
                matmul_a_bt(&a, &bt).into_vec(),
            ]
        });
    }
}

#[test]
fn knn_sweep_and_batch_parallelize_deterministically_at_new_thresholds() {
    let _g = lock();
    // 2 100 references × dim 8 = 16.8K MACs per sweep — above the PR 6
    // sweep threshold (2¹⁴) but far below the spawn-era 2¹⁸, so this
    // venue-sized registry used to run serial and now exercises the
    // parallel sweep. Deterministic synthetic embeddings, no RNG.
    let mut knn = EmbeddingKnn::new(5, KnnMode::WeightedRegression);
    for i in 0..2100u32 {
        let e: Vec<f32> = (0..8).map(|d| ((i * 8 + d) as f32 * 0.377).sin()).collect();
        knn.insert(e, RpId(i % 40), Point2::new(f64::from(i % 7), f64::from(i % 13)));
    }
    let q: Vec<f32> = (0..8).map(|d| (d as f32 * 0.731).cos()).collect();
    assert_thread_invariant(|| knn.locate(&q));
    // 12 queries × 2 100 references = 25.2K pairs — above the new batch
    // threshold (2¹² = 4 096), below the spawn-era 2¹⁵ = 32 768: a
    // serve-sized coalesced batch that only parallelizes since PR 6.
    let queries: Vec<Vec<f32>> =
        (0..12u32).map(|i| (0..8).map(|d| ((i * 8 + d) as f32 * 0.911).sin()).collect()).collect();
    assert_thread_invariant(|| knn.locate_batch(&queries));
    // Query independence: the batch path must equal per-query locate
    // (pure scalar sweeps — no matmul, so no backend pinning needed).
    let singles: Vec<_> = queries.iter().map(|qq| knn.locate(qq)).collect();
    assert_eq!(knn.locate_batch(&queries), singles);
}

#[test]
fn localization_server_batching_is_deterministic_across_thread_counts() {
    let _g = lock();
    // The executor's batch *composition* depends on arrival timing, so
    // this only pins determinism when results are independent of batch
    // grouping — true of every non-contracting backend (narrow and tiled
    // paths are bit-equal) but deliberately not of STONE_FMA=1; pin
    // portable so the test is meaningful in any environment.
    stone_tensor::with_backend(stone_tensor::MatmulBackend::Portable, || {
        let suite = office_suite(&SuiteConfig::tiny(43));
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("venue", tiny_stone().fit(&suite.train, 43));
        let snapshot = registry.snapshot("venue").expect("published");
        let scans: Vec<Vec<f32>> = suite
            .buckets
            .iter()
            .flat_map(|b| b.trajectories.iter().flat_map(|t| &t.fingerprints))
            .map(|f| f.rssi.clone())
            .take(24)
            .collect();
        let direct: Vec<_> =
            with_threads(1, || scans.iter().map(|s| snapshot.model().locate(s)).collect());
        for nt in THREAD_COUNTS {
            let answers: Vec<_> = with_threads(nt, || {
                let server = LocalizationServer::start(
                    Arc::clone(&registry),
                    ServerConfig {
                        max_batch: 8,
                        max_wait: Duration::from_millis(5),
                        queue_capacity: 64,
                        workers: 1,
                        ..ServerConfig::default()
                    },
                );
                let handle = server.handle();
                let tickets: Vec<_> =
                    scans.iter().map(|s| handle.submit("venue", s).expect("enqueue")).collect();
                tickets.into_iter().map(|t| t.wait().expect("answered").position).collect()
            });
            assert_eq!(answers, direct, "served positions diverged at {nt} threads");
        }
    });
}

fn tiny_stone() -> StoneBuilder {
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 3,
            epochs: 2,
            triplets_per_epoch: 32,
            batch_size: 16,
            ..TrainerConfig::quick()
        },
        ..StoneConfig::quick()
    })
}

#[test]
fn embed_batch_matches_single_scan_embeddings_across_thread_counts() {
    let _g = lock();
    let suite = office_suite(&SuiteConfig::tiny(41));
    let loc = tiny_stone().fit(&suite.train, 41);
    let raws: Vec<&[f32]> =
        suite.train.records().iter().take(20).map(|r| r.rssi.as_slice()).collect();
    assert_thread_invariant(|| loc.embed_batch(&raws));
    // Batch-vs-single equality is a mul-then-add contract, so it is pinned
    // to the portable backend: STONE_FMA=1 contracts only the tiled
    // (batched) microkernel, making this comparison legitimately fail on
    // the FMA backend (see the module docs).
    stone_tensor::with_backend(stone_tensor::MatmulBackend::Portable, || {
        let singles: Vec<Vec<f32>> = raws.iter().map(|r| loc.embed(r)).collect();
        assert_eq!(loc.embed_batch(&raws), singles, "batched forward != per-scan forward");
    });
}

#[test]
fn locate_batch_matches_single_scan_locate() {
    let _g = lock();
    let suite = office_suite(&SuiteConfig::tiny(42));
    let loc = tiny_stone().fit(&suite.train, 42);
    let raws: Vec<&[f32]> =
        suite.buckets[0].trajectories[0].fingerprints.iter().map(|f| f.rssi.as_slice()).collect();
    assert_thread_invariant(|| loc.locate_batch(&raws));
    // Pinned portable for the same reason as the embedding test above.
    stone_tensor::with_backend(stone_tensor::MatmulBackend::Portable, || {
        let singles: Vec<_> = raws.iter().map(|r| loc.locate(r)).collect();
        assert_eq!(loc.locate_batch(&raws), singles);
    });
}

/// The comparable content of a suite: train records, bucket labels, and
/// per-trajectory fingerprints.
type SuiteBytes =
    (Vec<stone_dataset::Fingerprint>, Vec<String>, Vec<Vec<Vec<stone_dataset::Fingerprint>>>);

/// Every byte of a suite the frameworks consume. (`LongTermSuite` itself
/// holds the simulator, which has no `PartialEq`.)
fn suite_fingerprint(s: &LongTermSuite) -> SuiteBytes {
    (
        s.train.records().to_vec(),
        s.bucket_labels(),
        s.buckets
            .iter()
            .map(|b| b.trajectories.iter().map(|t| t.fingerprints.clone()).collect())
            .collect(),
    )
}

#[test]
fn sharded_suite_generation_is_bitwise_identical_across_thread_counts() {
    let _g = lock();
    // Property over both suite families and two seeds each: the sharded
    // generator (per-RP survey streams + per-bucket streams) must emit the
    // same bytes at STONE_THREADS ∈ {1, 2, 8}.
    type SuiteBuilder = Box<dyn Fn() -> LongTermSuite>;
    for seed in [7, 91] {
        let builders: [(&str, SuiteBuilder); 2] = [
            ("uji", Box::new(move || uji_suite(&SuiteConfig::tiny(seed)))),
            ("office", Box::new(move || office_suite(&SuiteConfig::tiny(seed)))),
        ];
        for (name, build) in builders {
            let baseline = with_threads(1, || suite_fingerprint(&build()));
            for nt in THREAD_COUNTS {
                assert_eq!(
                    with_threads(nt, || suite_fingerprint(&build())),
                    baseline,
                    "{name} seed {seed} diverged at {nt} threads"
                );
            }
        }
    }
}

#[test]
fn streamed_bucket_equals_materialized_twin_at_any_thread_count() {
    let _g = lock();
    let cfg = SuiteConfig::tiny(23);
    let plans: [(&str, SuitePlan); 3] =
        [("uji", uji_plan(&cfg)), ("office", office_plan(&cfg)), ("basement", basement_plan(&cfg))];
    for (name, plan) in plans {
        // Materialize in parallel; stream serially (and at 8 threads) —
        // every bucket must be byte-identical either way.
        let built = with_threads(8, || plan.build());
        for nt in THREAD_COUNTS {
            let streamed: Vec<_> = with_threads(nt, || plan.buckets_iter().collect());
            assert_eq!(streamed, built.buckets, "{name} streamed diverged at {nt} threads");
        }
        assert_eq!(
            with_threads(1, || plan.train().records().to_vec()),
            built.train.records(),
            "{name} survey diverged"
        );
    }
}

fn run_experiment(seed: u64) -> ExperimentReport {
    let suite = office_suite(&SuiteConfig::tiny(seed));
    let stone = tiny_stone();
    let knn = KnnBuilder::default();
    let lt = LtKnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&stone, &knn, &lt];
    Experiment::new(seed).run(&suite, &frameworks)
}

#[test]
fn parallel_experiment_run_is_byte_identical_across_thread_counts() {
    let _g = lock();
    let baseline = with_threads(1, || run_experiment(77));
    for nt in THREAD_COUNTS {
        let report = with_threads(nt, || run_experiment(77));
        assert_eq!(report, baseline, "report diverged at {nt} threads");
        assert_eq!(report.to_csv(), baseline.to_csv(), "CSV diverged at {nt} threads");
        assert_eq!(
            report.render_table(),
            baseline.render_table(),
            "table diverged at {nt} threads"
        );
    }
    // Series order is the input roster order, not completion order.
    let names: Vec<&str> = baseline.series.iter().map(|s| s.framework.as_str()).collect();
    assert_eq!(names, vec!["STONE", "KNN", "LT-KNN"]);
}
