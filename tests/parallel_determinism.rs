//! The parallel subsystem's contract (see `docs/PERFORMANCE.md`): every
//! parallel path — tiled matmul, batched embedding, parallel KNN sweep,
//! and the concurrent experiment runner — produces **bitwise-identical**
//! results at thread counts 1, 2 and 8, and the AVX2 matmul microkernels
//! are bit-equal to the `STONE_NO_SIMD` portable fallback.
//!
//! `stone_par::with_threads` installs a process-wide override, so every
//! test in this binary takes `THREAD_LOCK` before touching it.

use std::sync::{Mutex, MutexGuard, PoisonError};

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone::{StoneBuilder, StoneConfig, TrainerConfig};
use stone_baselines::{KnnBuilder, LtKnnBuilder};
use stone_dataset::{
    basement_plan, office_plan, office_suite, uji_plan, uji_suite, Framework, Localizer,
    LongTermSuite, SuiteConfig, SuitePlan,
};
use stone_eval::{Experiment, ExperimentReport};
use stone_par::with_threads;
use stone_tensor::{matmul, matmul_a_bt, matmul_at_b, rng::uniform_tensor, Tensor};

static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    THREAD_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` at every thread count and asserts all results equal the
/// single-thread one.
fn assert_thread_invariant<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let baseline = with_threads(1, &f);
    for nt in THREAD_COUNTS {
        assert_eq!(with_threads(nt, &f), baseline, "diverged at {nt} threads");
    }
}

#[test]
fn matmul_variants_are_bitwise_identical_across_thread_counts() {
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(11);
    // 168·118·90 ≈ 1.78M MACs — comfortably above the parallel threshold
    // (2²⁰ since the PR 4 re-derivation), with split points that don't
    // divide evenly at 2 or 8 threads and ragged register-tile edges in
    // every dimension.
    let a = uniform_tensor(&mut rng, vec![168, 118], -2.0, 2.0);
    let b = uniform_tensor(&mut rng, vec![118, 90], -2.0, 2.0);
    let at = uniform_tensor(&mut rng, vec![118, 168], -2.0, 2.0);
    let bt = uniform_tensor(&mut rng, vec![90, 118], -2.0, 2.0);
    assert_thread_invariant(|| -> Vec<Vec<f32>> {
        vec![
            matmul(&a, &b).into_vec(),
            matmul_at_b(&at, &b).into_vec(),
            matmul_a_bt(&a, &bt).into_vec(),
        ]
    });
}

#[test]
fn simd_kernels_are_bitwise_identical_to_no_simd_fallback() {
    let _g = lock();
    if !stone_tensor::simd_available() {
        // Single-backend machine: the contract is vacuous here.
        return;
    }
    if std::env::var("STONE_NO_SIMD").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0") {
        // STONE_NO_SIMD=1 is the operator's AVX2 kill-switch, and
        // `with_backend(Simd)` would override it by design (it's a test
        // hook) — honor the kill-switch here so the CI no-SIMD job never
        // executes AVX2 code. The default-environment run of this test
        // covers the comparison.
        return;
    }
    // The AVX2 microkernel must be an execution strategy, never a numerics
    // change: bit-equality with the portable fallback on every variant,
    // over tiled, ragged-edge and narrow (< one tile) shapes, serial and
    // threaded.
    let mut rng = StdRng::seed_from_u64(13);
    for (m, k, n) in [(168, 118, 90), (64, 64, 64), (13, 29, 11), (3, 500, 40), (1, 64, 8)] {
        let a = uniform_tensor(&mut rng, vec![m, k], -2.0, 2.0);
        let b = uniform_tensor(&mut rng, vec![k, n], -2.0, 2.0);
        let at = uniform_tensor(&mut rng, vec![k, m], -2.0, 2.0);
        let bt = uniform_tensor(&mut rng, vec![n, k], -2.0, 2.0);
        let run = || -> Vec<Vec<f32>> {
            vec![
                matmul(&a, &b).into_vec(),
                matmul_at_b(&at, &b).into_vec(),
                matmul_a_bt(&a, &bt).into_vec(),
            ]
        };
        for nt in THREAD_COUNTS {
            let portable =
                stone_tensor::with_backend(stone_tensor::MatmulBackend::Portable, || {
                    with_threads(nt, run)
                });
            let simd = stone_tensor::with_backend(stone_tensor::MatmulBackend::Simd, || {
                with_threads(nt, run)
            });
            assert_eq!(portable, simd, "{m}x{k}x{n} diverged at {nt} threads");
        }
    }
}

#[test]
fn matmul_parallel_path_equals_pre_parallel_reference() {
    let _g = lock();
    // Freeze the semantics: the tiled/parallel kernel must match the naive
    // triple loop (the seed implementation) exactly, element order and
    // all, not just approximately. 128·112·80 ≈ 1.15M MACs keeps the
    // parallel dispatch engaged above the PR 4 threshold.
    let mut rng = StdRng::seed_from_u64(12);
    let a = uniform_tensor(&mut rng, vec![128, 112], -1.0, 1.0);
    let b = uniform_tensor(&mut rng, vec![112, 80], -1.0, 1.0);
    let mut naive = Tensor::zeros(vec![128, 80]);
    for i in 0..128 {
        for p in 0..112 {
            let av = a.at2(i, p);
            if av != 0.0 {
                for j in 0..80 {
                    let v = naive.at2(i, j) + av * b.at2(p, j);
                    naive.set2(i, j, v);
                }
            }
        }
    }
    for nt in THREAD_COUNTS {
        let c = with_threads(nt, || matmul(&a, &b));
        assert_eq!(c.as_slice(), naive.as_slice(), "{nt} threads");
    }
}

fn tiny_stone() -> StoneBuilder {
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 3,
            epochs: 2,
            triplets_per_epoch: 32,
            batch_size: 16,
            ..TrainerConfig::quick()
        },
        ..StoneConfig::quick()
    })
}

#[test]
fn embed_batch_matches_single_scan_embeddings_across_thread_counts() {
    let _g = lock();
    let suite = office_suite(&SuiteConfig::tiny(41));
    let loc = tiny_stone().fit(&suite.train, 41);
    let raws: Vec<&[f32]> =
        suite.train.records().iter().take(20).map(|r| r.rssi.as_slice()).collect();
    let singles: Vec<Vec<f32>> = raws.iter().map(|r| loc.embed(r)).collect();
    assert_thread_invariant(|| loc.embed_batch(&raws));
    assert_eq!(loc.embed_batch(&raws), singles, "batched forward != per-scan forward");
}

#[test]
fn locate_batch_matches_single_scan_locate() {
    let _g = lock();
    let suite = office_suite(&SuiteConfig::tiny(42));
    let loc = tiny_stone().fit(&suite.train, 42);
    let raws: Vec<&[f32]> =
        suite.buckets[0].trajectories[0].fingerprints.iter().map(|f| f.rssi.as_slice()).collect();
    let singles: Vec<_> = raws.iter().map(|r| loc.locate(r)).collect();
    assert_thread_invariant(|| loc.locate_batch(&raws));
    assert_eq!(loc.locate_batch(&raws), singles);
}

/// The comparable content of a suite: train records, bucket labels, and
/// per-trajectory fingerprints.
type SuiteBytes =
    (Vec<stone_dataset::Fingerprint>, Vec<String>, Vec<Vec<Vec<stone_dataset::Fingerprint>>>);

/// Every byte of a suite the frameworks consume. (`LongTermSuite` itself
/// holds the simulator, which has no `PartialEq`.)
fn suite_fingerprint(s: &LongTermSuite) -> SuiteBytes {
    (
        s.train.records().to_vec(),
        s.bucket_labels(),
        s.buckets
            .iter()
            .map(|b| b.trajectories.iter().map(|t| t.fingerprints.clone()).collect())
            .collect(),
    )
}

#[test]
fn sharded_suite_generation_is_bitwise_identical_across_thread_counts() {
    let _g = lock();
    // Property over both suite families and two seeds each: the sharded
    // generator (per-RP survey streams + per-bucket streams) must emit the
    // same bytes at STONE_THREADS ∈ {1, 2, 8}.
    type SuiteBuilder = Box<dyn Fn() -> LongTermSuite>;
    for seed in [7, 91] {
        let builders: [(&str, SuiteBuilder); 2] = [
            ("uji", Box::new(move || uji_suite(&SuiteConfig::tiny(seed)))),
            ("office", Box::new(move || office_suite(&SuiteConfig::tiny(seed)))),
        ];
        for (name, build) in builders {
            let baseline = with_threads(1, || suite_fingerprint(&build()));
            for nt in THREAD_COUNTS {
                assert_eq!(
                    with_threads(nt, || suite_fingerprint(&build())),
                    baseline,
                    "{name} seed {seed} diverged at {nt} threads"
                );
            }
        }
    }
}

#[test]
fn streamed_bucket_equals_materialized_twin_at_any_thread_count() {
    let _g = lock();
    let cfg = SuiteConfig::tiny(23);
    let plans: [(&str, SuitePlan); 3] =
        [("uji", uji_plan(&cfg)), ("office", office_plan(&cfg)), ("basement", basement_plan(&cfg))];
    for (name, plan) in plans {
        // Materialize in parallel; stream serially (and at 8 threads) —
        // every bucket must be byte-identical either way.
        let built = with_threads(8, || plan.build());
        for nt in THREAD_COUNTS {
            let streamed: Vec<_> = with_threads(nt, || plan.buckets_iter().collect());
            assert_eq!(streamed, built.buckets, "{name} streamed diverged at {nt} threads");
        }
        assert_eq!(
            with_threads(1, || plan.train().records().to_vec()),
            built.train.records(),
            "{name} survey diverged"
        );
    }
}

fn run_experiment(seed: u64) -> ExperimentReport {
    let suite = office_suite(&SuiteConfig::tiny(seed));
    let stone = tiny_stone();
    let knn = KnnBuilder::default();
    let lt = LtKnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&stone, &knn, &lt];
    Experiment::new(seed).run(&suite, &frameworks)
}

#[test]
fn parallel_experiment_run_is_byte_identical_across_thread_counts() {
    let _g = lock();
    let baseline = with_threads(1, || run_experiment(77));
    for nt in THREAD_COUNTS {
        let report = with_threads(nt, || run_experiment(77));
        assert_eq!(report, baseline, "report diverged at {nt} threads");
        assert_eq!(report.to_csv(), baseline.to_csv(), "CSV diverged at {nt} threads");
        assert_eq!(
            report.render_table(),
            baseline.render_table(),
            "table diverged at {nt} threads"
        );
    }
    // Series order is the input roster order, not completion order.
    let names: Vec<&str> = baseline.series.iter().map(|s| s.framework.as_str()).collect();
    assert_eq!(names, vec!["STONE", "KNN", "LT-KNN"]);
}
