//! Shared helpers for the figure-regeneration benches.
//!
//! Every bench honours two environment variables:
//!
//! * `STONE_SEED` — experiment seed (default 42);
//! * `STONE_FULL=1` — paper-scale sweeps/repeats instead of the quick
//!   defaults sized for single-core CI machines.

use stone::{StoneBuilder, StoneConfig, TrainerConfig};
use stone_baselines::{GiftBuilder, KnnBuilder, LtKnnBuilder, ScnnBuilder, SeleBuilder};
use stone_dataset::{Framework, LongTermSuite, SuiteConfig, SuiteKind};
use stone_eval::{Experiment, ExperimentReport};

/// Returns `true` when `STONE_FULL` requests paper-scale runs.
#[must_use]
pub fn is_full() -> bool {
    std::env::var("STONE_FULL").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The experiment seed (`STONE_SEED`, default 42).
#[must_use]
pub fn seed() -> u64 {
    std::env::var("STONE_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Suite configuration for figure benches: paper-scale paths, two walks per
/// bucket.
#[must_use]
pub fn suite_config() -> SuiteConfig {
    SuiteConfig::new(seed())
}

/// The STONE configuration used by the figure benches.
#[must_use]
pub fn stone_config() -> StoneConfig {
    let trainer = if is_full() { TrainerConfig::paper() } else { TrainerConfig::standard() };
    StoneConfig { trainer, ..StoneConfig::quick() }
}

/// A faster STONE configuration for high-repeat sweeps (Fig. 7).
#[must_use]
pub fn stone_config_sweep() -> StoneConfig {
    let trainer = if is_full() { TrainerConfig::standard() } else { TrainerConfig::quick() };
    StoneConfig { trainer, ..StoneConfig::quick() }
}

/// Per-floorplan STONE tuning, mirroring the paper's statement that the
/// embedding length "was empirically evaluated for each floorplan
/// independently" (Sec. IV.D). The UJI grid (4 m pitch, 2-D adjacency)
/// wants a wider embedding and selector σ than the 1-m corridors.
#[must_use]
pub fn stone_config_for(kind: SuiteKind) -> StoneConfig {
    let mut cfg = stone_config();
    if kind == SuiteKind::Uji {
        cfg.trainer.embed_dim = 10;
        cfg.trainer.selector_sigma_m = 6.0;
        cfg.trainer.enroll_augment = 3;
    }
    cfg
}

/// The five frameworks of the paper's comparison (Sec. V.A.3), in plot
/// order, with STONE tuned for the suite. Set `STONE_WITH_SELE=1` to
/// additionally evaluate the SELE contrastive baseline from the related work
/// (Sec. II, \[18\]).
#[must_use]
pub fn roster(kind: SuiteKind) -> Vec<Box<dyn Framework>> {
    let mut r: Vec<Box<dyn Framework>> = vec![
        Box::new(StoneBuilder::from_config(stone_config_for(kind))),
        Box::new(KnnBuilder::default()),
        Box::new(LtKnnBuilder::default()),
        Box::new(GiftBuilder::default()),
        Box::new(if is_full() { ScnnBuilder::default() } else { ScnnBuilder::quick() }),
    ];
    if std::env::var("STONE_WITH_SELE").is_ok_and(|v| !v.is_empty() && v != "0") {
        r.push(Box::new(SeleBuilder::default()));
    }
    r
}

/// Runs the five-framework comparison on a suite.
#[must_use]
pub fn run_comparison(suite: &LongTermSuite) -> ExperimentReport {
    let frameworks = roster(suite.kind);
    let refs: Vec<&dyn Framework> = frameworks.iter().map(AsRef::as_ref).collect();
    Experiment::new(seed()).run(suite, &refs)
}

/// Prints the standard bench header.
pub fn banner(fig: &str, what: &str) {
    println!("==============================================================");
    println!("{fig}: {what}");
    println!(
        "seed={} mode={}",
        seed(),
        if is_full() { "FULL (paper-scale)" } else { "quick (set STONE_FULL=1 for paper-scale)" }
    );
    println!("==============================================================");
}

/// Writes a CSV artifact next to the bench output and reports the path.
pub fn write_artifact(name: &str, contents: &str) {
    let dir = std::path::Path::new("target").join("stone-figures");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(name);
        if std::fs::write(&path, contents).is_ok() {
            println!("[artifact] {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_is_stable() {
        // Avoid mutating the environment: only assert the default path.
        if std::env::var("STONE_SEED").is_err() {
            assert_eq!(seed(), 42);
        }
    }

    #[test]
    fn roster_has_five_frameworks() {
        if std::env::var("STONE_WITH_SELE").is_err() {
            let r = roster(SuiteKind::Office);
            let names: Vec<&str> = r.iter().map(|f| f.name()).collect();
            assert_eq!(names, vec!["STONE", "KNN", "LT-KNN", "GIFT", "SCNN"]);
        }
    }

    #[test]
    fn uji_config_is_tuned_per_floorplan() {
        let uji = stone_config_for(SuiteKind::Uji);
        let office = stone_config_for(SuiteKind::Office);
        assert_eq!(uji.trainer.embed_dim, 10);
        assert_eq!(office.trainer.embed_dim, 8);
        assert!(uji.trainer.selector_sigma_m > office.trainer.selector_sigma_m);
    }
}
