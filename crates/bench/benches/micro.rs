//! Criterion micro-benchmarks for the on-device hot paths.
//!
//! The paper's motivation (Sec. I) includes running the whole pipeline on a
//! smartphone; these benches measure the per-scan inference cost of each
//! component on this machine: preprocessing, encoder forward pass, KNN
//! query, triplet selection and one full training step — plus two kinds
//! of pairs documented in `docs/PERFORMANCE.md`:
//!
//! * **serial-vs-parallel** (large matmul at 1 thread vs. the
//!   `STONE_THREADS` budget, batch-1 vs. batch-32 embedding, serial vs.
//!   sharded paper-scale UJI suite generation) — on a single-core machine
//!   these tie; the speedup appears with the core count;
//! * **scalar-vs-tiled** (the PR 3 blocked kernels vs. the register-tiled
//!   microkernels over encoder-shaped products: the serving-scale cube,
//!   tall-skinny, ragged-remainder and fused-transpose shapes) — the
//!   per-core speedup, visible even on one core. Set `STONE_NO_SIMD=1` to
//!   measure the portable fallback instead of AVX2;
//! * **uncoalesced-vs-coalesced serving** (`stone-serve` with `max_batch`
//!   1 vs. 64 under 4 closed-loop client threads) — what the batching
//!   server's adaptive coalescing buys end to end, channels included;
//! * **spawn-vs-pool dispatch** (one tiny fork-join region through the
//!   PR 6 worker pool vs. the scoped-spawn strategy it replaced) — the
//!   per-region overhead that sets every parallel-dispatch threshold;
//! * **FMA opt-in** (`matmul` on the `STONE_FMA=1` contracted kernel at
//!   the serving cube, next to the default AVX2 entry) — the per-core
//!   headroom the opt-in buys, where the CPU supports it.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use stone::{
    build_encoder, EmbeddingKnn, EncoderConfig, FloorplanAwareSelector, ImageCodec, KnnMode,
    StoneBuilder, StoneConfig, TrainIndex, TrainerConfig, TripletSelector,
};
use stone_dataset::{office_suite, uji_plan, Localizer, SuiteConfig};
use stone_radio::Point2;

fn quick_suite() -> stone_dataset::LongTermSuite {
    office_suite(&SuiteConfig::new(42))
}

fn bench_preprocess(c: &mut Criterion) {
    let suite = quick_suite();
    let codec = ImageCodec::new(suite.train.ap_count());
    let rssi = suite.train.records()[0].rssi.clone();
    c.bench_function("preprocess/encode_fingerprint", |b| {
        b.iter(|| black_box(codec.encode(black_box(&rssi))))
    });
}

fn bench_encoder_forward(c: &mut Criterion) {
    let suite = quick_suite();
    let codec = ImageCodec::new(suite.train.ap_count());
    let mut rng = StdRng::seed_from_u64(0);
    let net = build_encoder(&EncoderConfig::paper(codec.side(), 8), &mut rng);
    let x = codec.encode_batch(&[suite.train.records()[0].rssi.as_slice()]);
    c.bench_function("encoder/forward_single_scan", |b| {
        b.iter(|| black_box(net.predict(black_box(&x))))
    });
}

fn bench_locate(c: &mut Criterion) {
    let suite = quick_suite();
    let cfg = StoneConfig {
        trainer: TrainerConfig {
            epochs: 1,
            triplets_per_epoch: 32,
            batch_size: 32,
            ..TrainerConfig::quick()
        },
        ..StoneConfig::quick()
    };
    let loc = StoneBuilder::from_config(cfg).fit(&suite.train, 1);
    let rssi = suite.buckets[0].trajectories[0].fingerprints[0].rssi.clone();
    c.bench_function("stone/locate_single_scan", |b| {
        b.iter(|| black_box(loc.locate(black_box(&rssi))))
    });
}

fn bench_matmul_serial_vs_parallel(c: &mut Criterion) {
    use stone_tensor::{matmul, rng::uniform_tensor};
    let mut rng = StdRng::seed_from_u64(5);
    // 256³ = 16.8M MACs: far above the parallel threshold, the shape of a
    // batched encoder dense layer at serving scale.
    let a = uniform_tensor(&mut rng, vec![256, 256], -1.0, 1.0);
    let b = uniform_tensor(&mut rng, vec![256, 256], -1.0, 1.0);
    c.bench_function("matmul/256x256x256_serial_1thread", |bch| {
        bch.iter(|| stone_par::with_threads(1, || black_box(matmul(black_box(&a), black_box(&b)))))
    });
    c.bench_function("matmul/256x256x256_parallel_max_threads", |bch| {
        bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
}

fn bench_matmul_scalar_vs_tiled(c: &mut Criterion) {
    use stone_tensor::{
        matmul, matmul_a_bt, matmul_a_bt_scalar, matmul_at_b, matmul_at_b_scalar, matmul_scalar,
        rng::uniform_tensor, Tensor,
    };
    let mut rng = StdRng::seed_from_u64(6);
    let mut mk = |m: usize, k: usize| uniform_tensor(&mut rng, vec![m, k], -1.0, 1.0);

    // Scalar-vs-tiled pairs over encoder-shaped products, so the per-core
    // microkernel speedup (not just thread scaling) is visible in bench
    // output. `*_scalar` is the PR 3 blocked serial kernel kept as the
    // reference baseline; both entries run serial to isolate the kernels.
    type Pair = (&'static str, fn(&Tensor, &Tensor) -> Tensor, fn(&Tensor, &Tensor) -> Tensor);
    let pairs: [(Pair, Tensor, Tensor); 5] = [
        // The serving-scale cube of the serial-vs-parallel pair above.
        (("matmul/256x256x256", matmul_scalar, matmul), mk(256, 256), mk(256, 256)),
        // Tall-skinny: a batched embedding head (batch 1024, fc 32 → dim 8).
        (("matmul/1024x32x8_tall_skinny", matmul_scalar, matmul), mk(1024, 32), mk(32, 8)),
        // Ragged at every tile edge: no dimension is a multiple of 8.
        (("matmul/129x67x250_remainder", matmul_scalar, matmul), mk(129, 67), mk(67, 250)),
        // The two fused-transpose gradient products at the same cube.
        (("matmul_at_b/256x256x256", matmul_at_b_scalar, matmul_at_b), mk(256, 256), mk(256, 256)),
        (("matmul_a_bt/256x256x256", matmul_a_bt_scalar, matmul_a_bt), mk(256, 256), mk(256, 256)),
    ];
    for ((name, scalar, tiled), a, b) in pairs {
        c.bench_function(&format!("{name}_scalar"), |bch| {
            bch.iter(|| {
                stone_par::with_threads(1, || black_box(scalar(black_box(&a), black_box(&b))))
            })
        });
        c.bench_function(&format!("{name}_tiled"), |bch| {
            bch.iter(|| {
                stone_par::with_threads(1, || black_box(tiled(black_box(&a), black_box(&b))))
            })
        });
    }
}

fn bench_dispatch_spawn_vs_pool(c: &mut Criterion) {
    // The PR 6 tentpole measured directly: the cost of one tiny two-arm
    // fork-join region through the long-lived worker pool vs. the
    // spawn-per-region strategy it replaced (reproduced inline with raw
    // `thread::scope`, the way `par_chunks` used to run). The gap between
    // these entries is what justified dropping PAR_MIN_MACS 2²⁰ → 2¹⁸ and
    // the KNN thresholds with it — see docs/PERFORMANCE.md ("Knobs").
    let mut buf = vec![0.0f32; 16];
    // Warm the pool so the pool entry measures steady-state dispatch, not
    // the one-time lazy worker spawn.
    stone_par::with_threads(2, || stone_par::par_chunks(&mut buf, 8, |_, _| {}));
    c.bench_function("dispatch/forkjoin_region_pool_2threads", |b| {
        b.iter(|| {
            stone_par::with_threads(2, || {
                stone_par::par_chunks(black_box(&mut buf), 8, |_, block| {
                    for v in block.iter_mut() {
                        *v += 1.0;
                    }
                });
            })
        })
    });
    c.bench_function("dispatch/forkjoin_region_scoped_spawn_2threads", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                let (lo, hi) = buf.split_at_mut(8);
                s.spawn(|| {
                    for v in hi.iter_mut() {
                        *v += 1.0;
                    }
                });
                for v in lo.iter_mut() {
                    *v += 1.0;
                }
            });
        })
    });
    black_box(&buf);
}

fn bench_matmul_fma(c: &mut Criterion) {
    use stone_tensor::{fma_available, matmul, rng::uniform_tensor, with_backend, MatmulBackend};
    if !fma_available() {
        return; // entry only exists where the opt-in backend can run
    }
    let mut rng = StdRng::seed_from_u64(9);
    let a = uniform_tensor(&mut rng, vec![256, 256], -1.0, 1.0);
    let b = uniform_tensor(&mut rng, vec![256, 256], -1.0, 1.0);
    // The STONE_FMA=1 row for docs/PERFORMANCE.md, next to the default
    // AVX2 entry at the same serving-scale cube; serial to isolate the
    // kernel (thread scaling is the serial-vs-parallel pair's job).
    c.bench_function("matmul/256x256x256_fma_serial_1thread", |bch| {
        bch.iter(|| {
            stone_par::with_threads(1, || {
                with_backend(MatmulBackend::Fma, || black_box(matmul(black_box(&a), black_box(&b))))
            })
        })
    });
}

fn bench_embed_batch(c: &mut Criterion) {
    let suite = quick_suite();
    let codec = ImageCodec::new(suite.train.ap_count());
    let mut rng = StdRng::seed_from_u64(0);
    let net = build_encoder(&EncoderConfig::paper(codec.side(), 8), &mut rng);
    let raws: Vec<&[f32]> = suite.train.records()[..32].iter().map(|r| r.rssi.as_slice()).collect();
    let singles: Vec<_> = raws.iter().map(|r| codec.encode_batch(&[r])).collect();
    let batch = codec.encode_batch(&raws);
    // 32 batch-1 forward passes vs. one batch-32 pass: the gap is the
    // per-pass overhead `embed_batch`/`locate_batch` amortize.
    c.bench_function("encoder/forward_32_scans_batch1", |b| {
        b.iter(|| {
            for x in &singles {
                black_box(net.predict(black_box(x)));
            }
        })
    });
    c.bench_function("encoder/forward_32_scans_batch32", |b| {
        b.iter(|| black_box(net.predict(black_box(&batch))))
    });
}

fn bench_knn_query(c: &mut Criterion) {
    // 4096 references × 16 dims, k = 8 — an enrolled paper-scale reference
    // set. `nearest` quickselects the top k (O(N) + O(k log k)) instead of
    // fully sorting all N distances; this entry tracks that win.
    let mut rng = StdRng::seed_from_u64(13);
    let mut knn = EmbeddingKnn::new(8, KnnMode::Classify);
    use rand::Rng as _;
    for i in 0..4096u32 {
        let e: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        knn.insert(e, stone_dataset::RpId(i % 64), Point2::new(f64::from(i % 8), 0.0));
    }
    let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    c.bench_function("knn/classify_4096refs_dim16_k8", |b| {
        b.iter(|| black_box(knn.classify(black_box(&q))))
    });
}

fn bench_suite_generation(c: &mut Criterion) {
    // Paper-scale UJI generation (49 RPs × 9 FPR survey + 15 buckets × 2
    // walks): the serial-vs-sharded pair documented in
    // `docs/PERFORMANCE.md`. Each survey RP and each bucket draws from its
    // own seed-derived RNG stream, so the sharded entry is bitwise-equal to
    // the serial one — the gap is pure thread scaling.
    let cfg = SuiteConfig::new(42);
    c.bench_function("suite/uji_generation_serial_1thread", |b| {
        b.iter(|| stone_par::with_threads(1, || black_box(uji_plan(black_box(&cfg)).build())))
    });
    c.bench_function("suite/uji_generation_sharded_max_threads", |b| {
        b.iter(|| black_box(uji_plan(black_box(&cfg)).build()))
    });
}

fn bench_serve_batching(c: &mut Criterion) {
    use std::sync::Arc;
    use stone_serve::{LocalizationServer, ModelRegistry, ServerConfig};

    // The serving pair documented in docs/PERFORMANCE.md: 4 closed-loop
    // client threads fire 64 single-scan queries at the server, once with
    // batching disabled and once with adaptive coalescing (the default).
    // Both entries include the client threads and channel traffic — this
    // measures the served path end to end, not just the kernels.
    let suite = quick_suite();
    let cfg = StoneConfig {
        trainer: TrainerConfig {
            epochs: 1,
            triplets_per_epoch: 32,
            batch_size: 32,
            ..TrainerConfig::quick()
        },
        ..StoneConfig::quick()
    };
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("office", StoneBuilder::from_config(cfg).fit(&suite.train, 1));
    let scans: Vec<Vec<f32>> = suite.buckets.iter().flat_map(|b| b.raw_scans()).take(64).collect();

    for (name, max_batch) in
        [("serve/64scans_4clients_uncoalesced", 1), ("serve/64scans_4clients_coalesced", 64)]
    {
        let mut server = LocalizationServer::start(
            Arc::clone(&registry),
            ServerConfig { max_batch, ..ServerConfig::default() },
        );
        c.bench_function(name, |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for client in 0..4 {
                        let handle = server.handle();
                        let scans = &scans;
                        s.spawn(move || {
                            for scan in scans.iter().skip(client * 16).take(16) {
                                black_box(handle.locate("office", scan).expect("answered"));
                            }
                        });
                    }
                });
            })
        });
        server.shutdown();
    }

    // The fixed cost a plain submit pays on every request to reach its
    // venue's stats block — the `RwLock`-read + hash lookup + `Arc` clone
    // that `ServerHandle::venue_handle` hoists to once per handle (the wire
    // reader caches one handle per connection for exactly this reason).
    // Constructing the handle is a slight overestimate of the per-request
    // cost (it also clones the venue `String` and the `ServerHandle`), so
    // the number read here bounds the per-request saving from above; the
    // before/after story is in docs/PERFORMANCE.md.
    let mut server = LocalizationServer::start(Arc::clone(&registry), ServerConfig::default());
    let handle = server.handle();
    c.bench_function("serve/venue_stats_lookup", |b| {
        b.iter(|| black_box(handle.venue_handle(black_box("office"))))
    });
    server.shutdown();
}

fn bench_triplet_selection(c: &mut Criterion) {
    let suite = quick_suite();
    let index = TrainIndex::new(&suite.train);
    let sel = FloorplanAwareSelector::default();
    c.bench_function("trainer/floorplan_aware_select", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| black_box(sel.select(&index, &mut rng)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_training_step(c: &mut Criterion) {
    let suite = quick_suite();
    let codec = ImageCodec::new(suite.train.ap_count());
    let mut rng = StdRng::seed_from_u64(0);
    let net = build_encoder(&EncoderConfig::paper(codec.side(), 8), &mut rng);
    let raws: Vec<&[f32]> = suite.train.records()[..16].iter().map(|r| r.rssi.as_slice()).collect();
    let x = codec.encode_batch(&raws);
    c.bench_function("trainer/forward_backward_batch16", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| {
                let (y, caches) = net.forward_train(black_box(&x), &mut rng);
                let g = stone_tensor::Tensor::ones(y.shape().to_vec());
                black_box(net.backward(&caches, &g))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_preprocess,
        bench_encoder_forward,
        bench_dispatch_spawn_vs_pool,
        bench_matmul_serial_vs_parallel,
        bench_matmul_scalar_vs_tiled,
        bench_matmul_fma,
        bench_embed_batch,
        bench_locate,
        bench_knn_query,
        bench_serve_batching,
        bench_suite_generation,
        bench_triplet_selection,
        bench_training_step
);
criterion_main!(micro);
