//! Fig. 5 — Mean localization error over months 1–15 of the UJI suite for
//! STONE, KNN, LT-KNN, GIFT and SCNN.
//!
//! Expected shape (paper Sec. V.B): KNN/SCNN/LT-KNN jump between months 1–2
//! while STONE stays ≈1 m; GIFT is the least temporally resilient overall;
//! KNN and SCNN degrade severely after the month-11 AP removal; STONE
//! matches or beats LT-KNN throughout (up to ~30% better around month 9,
//! ≈0.3 m better on average) *without any re-training*.
//!
//! Run: `cargo bench -p stone-bench --bench fig5_uji`

use stone_bench::{banner, run_comparison, suite_config, write_artifact};
use stone_dataset::uji_suite;

fn main() {
    banner("Fig. 5", "UJI path, months 1-15, five frameworks");
    let cfg = suite_config();
    let suite = uji_suite(&cfg);
    println!(
        "suite: {} RPs, {} APs, {} train fingerprints",
        suite.train.rps().len(),
        suite.train.ap_count(),
        suite.train.len()
    );

    let t0 = std::time::Instant::now();
    let report = run_comparison(&suite);
    println!("\nelapsed {:.1}s\n", t0.elapsed().as_secs_f64());
    println!("{}", report.render_table());

    if let (Some(stone), Some(lt)) = (report.series_for("STONE"), report.series_for("LT-KNN")) {
        println!(
            "STONE vs LT-KNN: mean improvement {:+.2} m (paper: ~0.3 m), \
             best bucket {:+.1}% (paper: up to 30% @ month 9)",
            report.mean_improvement_m("STONE", "LT-KNN"),
            report.max_improvement_pct("STONE", "LT-KNN"),
        );
        println!(
            "STONE overall {:.2} m without re-training | LT-KNN overall {:.2} m re-trained monthly",
            stone.overall_mean_m(),
            lt.overall_mean_m()
        );
    }
    for name in ["KNN", "SCNN"] {
        if let Some(s) = report.series_for(name) {
            let pre: f64 = s.mean_errors_m[..10].iter().sum::<f64>() / 10.0;
            let post: f64 =
                s.mean_errors_m[10..].iter().sum::<f64>() / (s.mean_errors_m.len() - 10) as f64;
            println!(
                "{name}: pre-removal (M1-10) {pre:.2} m -> post-removal (M11-15) {post:.2} m \
                 (paper: severe degradation at month 11)"
            );
        }
    }
    write_artifact("fig5_uji.csv", &report.to_csv());
}
