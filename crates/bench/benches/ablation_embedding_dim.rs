//! Ablation — embedding dimension (Sec. IV.D).
//!
//! The paper chooses the encoder's embedding length empirically per
//! floorplan, in the range 3–10. This ablation sweeps `d` on the Office
//! suite.
//!
//! Run: `cargo bench -p stone-bench --bench ablation_embedding_dim`

use stone::{StoneBuilder, StoneConfig};
use stone_bench::{banner, seed, stone_config_sweep, suite_config};
use stone_dataset::{office_suite, Framework};
use stone_eval::Experiment;

fn main() {
    banner("Ablation", "embedding dimension d (Office suite)");
    let suite = office_suite(&suite_config());

    println!("\n{:>6} {:>12} {:>12}", "d", "mean", "worst");
    for d in [2usize, 3, 5, 8, 10, 16] {
        let mut cfg: StoneConfig = stone_config_sweep();
        cfg.trainer.embed_dim = d;
        let builder = StoneBuilder::from_config(cfg);
        let frameworks: Vec<&dyn Framework> = vec![&builder];
        let report = Experiment::new(seed()).run(&suite, &frameworks);
        let s = &report.series[0];
        println!("{d:>6} {:>10.2} m {:>10.2} m", s.overall_mean_m(), s.worst_m());
    }
    println!(
        "\nExpected: very small d underfits; returns diminish within the \
         paper's 3-10 range."
    );
}
