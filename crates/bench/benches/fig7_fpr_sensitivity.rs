//! Fig. 7 — Sensitivity of STONE to the number of fingerprints per RP
//! (FPR), shown as a heatmap (rows = FPR, columns = timescale, cells = mean
//! localization error) for the UJI, Basement and Office paths.
//!
//! Expected shape (paper Sec. V.D): FPR = 1 performs worst; increasing FPR
//! beyond 4 brings no notable improvement. The paper repeats the experiment
//! 10 times with shuffled fingerprints; quick mode uses fewer repeats and a
//! subsampled FPR axis (`STONE_FULL=1` restores the full sweep).
//!
//! Run: `cargo bench -p stone-bench --bench fig7_fpr_sensitivity`

use stone::StoneBuilder;
use stone_bench::{banner, is_full, seed, stone_config_sweep, write_artifact};
use stone_dataset::{
    basement_suite, office_suite, uji_suite, Framework, LongTermSuite, SuiteConfig,
};
use stone_eval::{Experiment, Heatmap};

fn fpr_axis() -> Vec<usize> {
    if is_full() {
        (1..=9).collect()
    } else {
        vec![1, 2, 4, 9]
    }
}

fn repeats() -> usize {
    if is_full() {
        10
    } else {
        2
    }
}

/// Groups bucket errors into the coarse timescale columns of Fig. 7.
fn timescale_columns(suite: &LongTermSuite, errors: &[f64]) -> Vec<f64> {
    // UJI: months 1-5 / 6-10 / 11-15. Office/Basement: hours (CI0-2),
    // days (CI3-8), months (CI9-15).
    let groups: Vec<(usize, usize)> = if suite.buckets.len() == 15 {
        vec![(0, 5), (5, 10), (10, 15)]
    } else {
        vec![(0, 3), (3, 9), (9, 16)]
    };
    groups
        .into_iter()
        .map(|(a, b)| {
            let slice = &errors[a..b.min(errors.len())];
            slice.iter().sum::<f64>() / slice.len().max(1) as f64
        })
        .collect()
}

fn column_labels(suite: &LongTermSuite) -> Vec<String> {
    if suite.buckets.len() == 15 {
        vec!["M1-5".into(), "M6-10".into(), "M11-15".into()]
    } else {
        vec!["hours".into(), "days".into(), "months".into()]
    }
}

fn sweep(name: &str, build: impl Fn(&SuiteConfig) -> LongTermSuite) {
    let axis = fpr_axis();
    let reps = repeats();
    let mut rows = Vec::new();
    for &fpr in &axis {
        let mut acc: Vec<f64> = Vec::new();
        for rep in 0..reps {
            // Re-seeding per repeat shuffles which FPR fingerprints are kept
            // (the paper's "shuffled fingerprints" repetitions).
            let cfg = SuiteConfig::new(seed() + rep as u64).with_train_fpr(fpr);
            let suite = build(&cfg);
            let stone = StoneBuilder::from_config(stone_config_sweep());
            let frameworks: Vec<&dyn Framework> = vec![&stone];
            let report = Experiment::new(seed() + rep as u64).run(&suite, &frameworks);
            let cols = timescale_columns(&suite, &report.series[0].mean_errors_m);
            if acc.is_empty() {
                acc = cols;
            } else {
                for (a, c) in acc.iter_mut().zip(cols) {
                    *a += c;
                }
            }
        }
        for a in &mut acc {
            *a /= reps as f64;
        }
        rows.push(acc);
        println!("  fpr={fpr}: done ({reps} repeats)");
    }

    let cfg = SuiteConfig::new(seed());
    let suite = build(&cfg);
    let heat = Heatmap::new(
        format!("STONE mean error (m) vs FPR — {name}"),
        axis.iter().map(|f| format!("FPR={f}")).collect(),
        column_labels(&suite),
        rows,
    )
    .with_row_means();
    println!("\n{}", heat.render());
    write_artifact(&format!("fig7_{}.csv", name.to_lowercase()), &heat.to_csv());

    // The paper's two takeaways, checked numerically.
    let first_mean = *heat.values.first().and_then(|r| r.last()).unwrap_or(&f64::NAN);
    let last_mean = *heat.values.last().and_then(|r| r.last()).unwrap_or(&f64::NAN);
    println!(
        "FPR=1 mean {first_mean:.2} m vs FPR={} mean {last_mean:.2} m \
         (paper: FPR=1 worst; >=4 saturates)\n",
        axis.last().unwrap()
    );
}

fn main() {
    banner("Fig. 7", "STONE sensitivity to fingerprints per RP (heatmaps)");
    sweep("UJI", uji_suite);
    sweep("Basement", basement_suite);
    sweep("Office", office_suite);
}
