//! Ablation — floorplan-aware triplet selection (Sec. IV.E).
//!
//! The paper argues the floorplan-aware hard-negative sampler is "crucial to
//! the fast convergence and efficacy" of the encoder. This ablation trains
//! STONE with three selectors on the Office suite under the same budget and
//! compares convergence (final triplet loss / active fraction) and
//! localization error.
//!
//! Run: `cargo bench -p stone-bench --bench ablation_triplet_selection`

use stone::{SelectorKind, SiameseTrainer, StoneBuilder, StoneConfig};
use stone_bench::{banner, seed, stone_config_sweep, suite_config};
use stone_dataset::{office_suite, Framework};
use stone_eval::Experiment;

fn main() {
    banner("Ablation", "triplet selection strategy (Office suite)");
    let suite = office_suite(&suite_config());

    for selector in [SelectorKind::FloorplanAware, SelectorKind::Uniform, SelectorKind::RssiHard] {
        let mut cfg: StoneConfig = stone_config_sweep();
        cfg.trainer.selector = selector;

        // Convergence diagnostics from a bare training run.
        let enc = SiameseTrainer::new(cfg.trainer).train(&suite.train, seed());
        let hist = enc.history();
        let first = hist.first().expect("non-empty history");
        let last = hist.last().expect("non-empty history");

        // End-task error via the standard experiment loop.
        let builder = StoneBuilder::from_config(cfg);
        let frameworks: Vec<&dyn Framework> = vec![&builder];
        let report = Experiment::new(seed()).run(&suite, &frameworks);
        let series = &report.series[0];

        println!(
            "\nselector={selector:<16} loss {:.3} -> {:.3} | active triplets {:.0}% -> {:.0}% | \
             mean error {:.2} m | worst {:.2} m",
            first.loss,
            last.loss,
            first.active_fraction * 100.0,
            last.active_fraction * 100.0,
            series.overall_mean_m(),
            series.worst_m(),
        );
    }
    println!(
        "\nExpected: the floorplan-aware sampler keeps more triplets active \
         (harder negatives) and yields the lowest long-term error."
    );
}
