//! Ablation — long-term fingerprint augmentation (Sec. IV.C, Eq. 4).
//!
//! STONE's robustness to AP removal comes from training-time AP turn-off
//! with `p_turn_off ~ U(0, p_upper)`. This ablation sweeps `p_upper` on the
//! UJI suite and splits the error into pre-removal (months 1–10) and
//! post-removal (months 11–15) halves: augmentation should pay off most
//! after the month-11 mass AP removal.
//!
//! Run: `cargo bench -p stone-bench --bench ablation_augmentation`

use stone::{StoneBuilder, StoneConfig};
use stone_bench::{banner, seed, stone_config_sweep, suite_config};
use stone_dataset::{uji_suite, Framework};
use stone_eval::Experiment;

fn main() {
    banner("Ablation", "AP turn-off augmentation p_upper (UJI suite)");
    let suite = uji_suite(&suite_config());

    println!("\n{:>8} {:>14} {:>15} {:>12}", "p_upper", "pre (M1-10)", "post (M11-15)", "overall");
    for p_upper in [0.0f32, 0.3, 0.6, 0.9] {
        let mut cfg: StoneConfig = stone_config_sweep();
        cfg.trainer.p_upper = p_upper;
        // Enrollment augmentation shares p_upper with training; disable it
        // here so the sweep isolates the *training-time* augmentation.
        cfg.trainer.enroll_augment = if p_upper == 0.0 { 0 } else { cfg.trainer.enroll_augment };
        let builder = StoneBuilder::from_config(cfg);
        let frameworks: Vec<&dyn Framework> = vec![&builder];
        let report = Experiment::new(seed()).run(&suite, &frameworks);
        let e = &report.series[0].mean_errors_m;
        let pre: f64 = e[..10].iter().sum::<f64>() / 10.0;
        let post: f64 = e[10..].iter().sum::<f64>() / (e.len() - 10) as f64;
        println!(
            "{p_upper:>8.1} {pre:>12.2} m {post:>13.2} m {:>10.2} m",
            report.series[0].overall_mean_m()
        );
    }
    println!(
        "\nExpected: higher p_upper costs little before the AP removal and \
         substantially reduces error after it (paper default: 0.9)."
    );
}
