//! Fig. 4 — Ephemerality of WiFi APs across collection instances for the
//! Basement and Office paths.
//!
//! A `#` marks an AP (column) that was NOT observed at the CI (row), exactly
//! like the black marks of the paper's figure. Expected shape: stable
//! visibility up to CI 11, then ~20% of APs disappear (and ~50% at month 11
//! for UJI, printed as a summary).
//!
//! Run: `cargo bench -p stone-bench --bench fig4_ephemerality`

use stone_bench::{banner, suite_config, write_artifact};
use stone_dataset::{basement_suite, office_suite, uji_suite, LongTermSuite};

fn matrix(suite: &LongTermSuite) {
    println!("\n--- {} : AP visibility by collection instance ---", suite.name);
    println!("(rows = CI, columns = AP index; '#' = AP not observed)");
    let vis = suite.visibility_matrix();
    let ap_count = suite.train.ap_count();
    // Column ruler every 10 APs.
    print!("      ");
    for a in 0..ap_count {
        print!("{}", if a % 10 == 0 { ((a / 10) % 10).to_string() } else { " ".into() });
    }
    println!();
    let mut csv = String::from("ci,ap,visible\n");
    for (ci, row) in vis.iter().enumerate() {
        print!("{:>5} ", suite.buckets[ci].label);
        for (a, &v) in row.iter().enumerate() {
            print!("{}", if v { '.' } else { '#' });
            csv.push_str(&format!("{ci},{a},{}\n", u8::from(v)));
        }
        let missing = row.iter().filter(|&&v| !v).count();
        println!("  missing {missing:>3} ({:.0}%)", missing as f64 / ap_count as f64 * 100.0);
    }
    write_artifact(&format!("fig4_{}.csv", suite.name.to_lowercase()), &csv);
}

fn main() {
    banner("Fig. 4", "AP ephemerality matrices (Basement, Office) + UJI summary");
    let cfg = suite_config();
    matrix(&basement_suite(&cfg));
    matrix(&office_suite(&cfg));

    // The paper notes UJI loses ~50% of visible APs around month 11.
    let uji = uji_suite(&cfg);
    let vis = uji.visibility_matrix();
    let count = |row: &Vec<bool>| row.iter().filter(|&&v| v).count();
    println!("\n--- UJI summary ---");
    for (i, row) in vis.iter().enumerate() {
        println!("{}: {} visible APs", uji.buckets[i].label, count(row));
    }
    let before = count(&vis[9]) as f64;
    let after = count(&vis[11]) as f64;
    println!(
        "visible-AP drop M10 -> M12: {:.0}% (paper: ~50% around month 11)",
        (1.0 - after / before) * 100.0
    );
}
