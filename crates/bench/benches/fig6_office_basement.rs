//! Fig. 6 — Localization errors of all frameworks over collection instances
//! CI 0–15 for the Basement (a) and Office (b) indoor paths.
//!
//! Expected shape (paper Sec. V.C): most frameworks spike between CI 0 and
//! CI 1 (only 6 hours apart!); GIFT and SCNN are the worst at month scale
//! (CI 9–15); KNN/LT-KNN stay at 1–2 m on Basement; STONE shows the smallest
//! CI0→CI1 increase, outperforms LT-KNN on most CIs, and needs no
//! re-training.
//!
//! Run: `cargo bench -p stone-bench --bench fig6_office_basement`

use stone_bench::{banner, run_comparison, suite_config, write_artifact};
use stone_dataset::{basement_suite, office_suite};

fn main() {
    banner("Fig. 6", "Basement & Office paths, CI 0-15, five frameworks");
    let cfg = suite_config();

    for (tag, suite) in [("(a) Basement", basement_suite(&cfg)), ("(b) Office", office_suite(&cfg))]
    {
        let t0 = std::time::Instant::now();
        let report = run_comparison(&suite);
        println!("\nFig. 6 {tag} — elapsed {:.1}s", t0.elapsed().as_secs_f64());
        println!("{}", report.render_table());
        if let (Some(stone), Some(lt)) = (report.series_for("STONE"), report.series_for("LT-KNN")) {
            println!(
                "STONE vs LT-KNN: mean improvement {:+.2} m, best bucket {:+.1}%  \
                 (paper: ~0.15 m Basement / ~0.25 m Office, up to 40%)",
                report.mean_improvement_m("STONE", "LT-KNN"),
                report.max_improvement_pct("STONE", "LT-KNN"),
            );
            println!(
                "STONE overall {:.2} m (no re-training) | LT-KNN overall {:.2} m (re-trained every CI)",
                stone.overall_mean_m(),
                lt.overall_mean_m()
            );
        }
        // §V.C claim: conventional frameworks degrade from sub-meter to
        // several meters over the 8-month span.
        if let Some(scnn) = report.series_for("SCNN") {
            println!(
                "SCNN degradation: CI0 {:.2} m -> worst {:.2} m (paper: 0.25 m -> ~6 m)",
                scnn.mean_errors_m[0],
                scnn.worst_m()
            );
        }
        let name = if tag.contains("Basement") { "fig6a_basement.csv" } else { "fig6b_office.csv" };
        write_artifact(name, &report.to_csv());
    }
}
