//! Fig. 3 — The three evaluation floorplans/paths with their AP and RP
//! counts and temporal scales.
//!
//! The paper's figure is a drawing; this bench prints the same annotations
//! for the simulated venues: path lengths, RP counts, visible-AP counts
//! along the paths, and the collection timeline of each suite.
//!
//! Run: `cargo bench -p stone-bench --bench fig3_suites`

use stone_bench::{banner, suite_config};
use stone_dataset::{basement_suite, office_suite, uji_suite, LongTermSuite};
use stone_radio::render_floorplan_ascii;

fn describe(suite: &LongTermSuite) {
    let plan = suite.env.floorplan();
    let b = plan.bounds();
    let rps = suite.train.rps();
    let path_len: f64 = rps.windows(2).map(|w| w[0].pos.distance(w[1].pos)).sum();
    // APs actually observable along the path at deployment time (Fig. 3
    // annotates "visible WiFi APs along the paths").
    let visible = suite.train.ap_visibility().iter().filter(|&&v| v).count();

    println!("\n--- {} ({}) ---", suite.name, plan.name());
    println!("bounds            : {:.0} x {:.0} m", b.width(), b.height());
    println!("walls             : {}", plan.walls().len());
    println!("path length       : {path_len:.0} m");
    println!("reference points  : {}", rps.len());
    println!("AP universe       : {}", suite.train.ap_count());
    println!("visible APs (t=0) : {visible}");
    println!(
        "train fingerprints: {} ({} per RP)",
        suite.train.len(),
        suite.train.len() / rps.len().max(1)
    );
    println!("mean visible APs/fingerprint: {:.1}", suite.train.mean_visible_aps());
    let labels = suite.bucket_labels();
    println!(
        "timeline          : {} buckets [{} ... {}], span {:.1} months",
        labels.len(),
        labels.first().map(String::as_str).unwrap_or("-"),
        labels.last().map(String::as_str).unwrap_or("-"),
        suite.buckets.last().map(|bk| bk.time.months()).unwrap_or(0.0),
    );
    let rp_points: Vec<_> = rps.iter().map(|rp| rp.pos).collect();
    println!("{}", render_floorplan_ascii(plan, suite.env.aps(), &rp_points, 96));
}

fn main() {
    banner("Fig. 3", "evaluation venues: UJI hall, Office path, Basement path");
    let cfg = suite_config();
    describe(&uji_suite(&cfg));
    describe(&office_suite(&cfg));
    describe(&basement_suite(&cfg));
    println!(
        "\nPaper reference: UJI = open library floor (grid RPs, 15 monthly buckets);\n\
         Office = 48 m corridor; Basement = 61 m corridor; RPs 1 m apart;\n\
         CI 0-2 same day (8 AM/3 PM/9 PM), CI 3-8 daily, CI 9-15 monthly."
    );
}
