//! FMA accuracy delta — the figure-bench half of the `STONE_FMA=1`
//! opt-in story (PR 6).
//!
//! Trains one STONE model, then localizes every evaluation scan of the
//! office suite twice through the batched path: once on the default
//! backend and once with the contracted FMA microkernel pinned. Reports,
//! per bucket and overall, how many *predictions* change, the largest
//! position delta in meters, and the mean-error delta — the evidence
//! behind PERFORMANCE.md's claim that the kernel-level rounding change
//! (bounded by the proptest envelope in `crates/tensor`) does not move
//! localization results.
//!
//! Single-scan `locate` uses the narrow (never-contracting) kernels, so
//! FMA cannot change it at all; the batched path is where the tiled
//! kernel — and therefore the contraction — actually runs.
//!
//! Run: `cargo bench -p stone-bench --bench fma_accuracy`

use stone::{StoneBuilder, StoneConfig, TrainerConfig};
use stone_bench::{banner, seed, write_artifact};
use stone_dataset::{office_suite, SuiteConfig};
use stone_tensor::{fma_available, with_backend, MatmulBackend};

fn main() {
    banner("FMA delta", "office suite, batched localization, default vs STONE_FMA=1");
    if !fma_available() {
        println!("CPU lacks AVX2+FMA: STONE_FMA is a no-op here, nothing to compare.");
        return;
    }

    let suite = office_suite(&SuiteConfig::tiny(seed()));
    let loc = StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig { embed_dim: 4, ..TrainerConfig::quick() },
        ..StoneConfig::quick()
    })
    .fit(&suite.train, seed());

    // A "changed" prediction is one that moves by more than a millimeter —
    // weighted regression emits continuous coordinates, so the contracted
    // rounding shifts them by sub-micrometer amounts that no floorplan
    // resolution can observe; the threshold separates that numeric dust
    // from an actual different answer (e.g. a different nearest-RP vote).
    const MEANINGFUL_M: f64 = 1e-3;
    let mut csv = String::from(
        "bucket,scans,changed_predictions,max_delta_m,\
                                mean_err_default_m,mean_err_fma_m\n",
    );
    let (mut total, mut changed_total) = (0usize, 0usize);
    let mut max_delta = 0.0f64;
    for (bi, bucket) in suite.buckets.iter().enumerate() {
        let scans: Vec<&[f32]> = bucket
            .trajectories
            .iter()
            .flat_map(|t| t.fingerprints.iter().map(|f| f.rssi.as_slice()))
            .collect();
        let truth: Vec<_> =
            bucket.trajectories.iter().flat_map(|t| t.fingerprints.iter().map(|f| f.pos)).collect();
        let default = loc.locate_batch(&scans);
        let fma = with_backend(MatmulBackend::Fma, || loc.locate_batch(&scans));

        let mut changed = 0usize;
        let mut bucket_max = 0.0f64;
        let (mut err_d, mut err_f) = (0.0f64, 0.0f64);
        for ((d, f), t) in default.iter().zip(&fma).zip(&truth) {
            let delta = d.distance(*f);
            if delta > MEANINGFUL_M {
                changed += 1;
            }
            bucket_max = bucket_max.max(delta);
            err_d += d.distance(*t);
            err_f += f.distance(*t);
        }
        let n = scans.len();
        total += n;
        changed_total += changed;
        max_delta = max_delta.max(bucket_max);
        csv.push_str(&format!(
            "{bi},{n},{changed},{bucket_max:.6},{:.4},{:.4}\n",
            err_d / n as f64,
            err_f / n as f64
        ));
    }
    println!(
        "{total} scans: {changed_total} predictions moved > {MEANINGFUL_M} m under FMA, \
         max position delta {max_delta:.2e} m"
    );
    if changed_total == 0 {
        println!("localization predictions unchanged — the opt-in is accuracy-neutral here");
    }
    write_artifact("fma_accuracy.csv", &csv);
}
