//! # stone-eval
//!
//! Experiment runner and report rendering for the STONE reproduction.
//!
//! [`Experiment`] evaluates any set of [`stone_dataset::Framework`]s over a
//! [`stone_dataset::LongTermSuite`], producing per-bucket mean localization
//! errors (the series plotted in the paper's Figs. 5 and 6). Reports render
//! as ASCII tables, CSV, and shaded heatmaps (Fig. 7).
//!
//! **Retraining policy**: after a bucket is evaluated, each localizer is
//! offered that bucket's unlabeled scans via [`stone_dataset::Localizer::adapt`].
//! Frameworks that re-train post-deployment (LT-KNN) use them to refit
//! before the *next* bucket — i.e. bucket `t` is always evaluated with
//! knowledge from buckets `< t` only, mirroring the paper's monthly
//! recalibration workflow without evaluating on the adaptation data itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
mod heatmap;
mod metrics;

pub use experiment::{Experiment, ExperimentReport, SeriesResult};
pub use heatmap::Heatmap;
pub use metrics::{mean_error_m, median_error_m, percentile_error_m};
