//! ASCII heatmap rendering (the paper's Fig. 7).

use std::fmt::Write as _;

/// A labelled 2-D grid of values rendered as a shaded ASCII heatmap with the
/// numeric value in every cell, like the paper's FPR-sensitivity figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Title printed above the grid.
    pub title: String,
    /// Row labels (the paper's FPR axis).
    pub row_labels: Vec<String>,
    /// Column labels (the paper's timescale axis).
    pub col_labels: Vec<String>,
    /// Values in row-major order; `values[r][c]` belongs to row `r`.
    pub values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Creates a heatmap.
    ///
    /// # Panics
    ///
    /// Panics when the value grid does not match the label counts.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        row_labels: Vec<String>,
        col_labels: Vec<String>,
        values: Vec<Vec<f64>>,
    ) -> Self {
        assert_eq!(values.len(), row_labels.len(), "row count mismatch");
        for row in &values {
            assert_eq!(row.len(), col_labels.len(), "column count mismatch");
        }
        Self { title: title.into(), row_labels, col_labels, values }
    }

    /// Appends a trailing "mean" column computed per row (the paper's final
    /// Fig. 7 column).
    #[must_use]
    pub fn with_row_means(mut self) -> Self {
        self.col_labels.push("mean".into());
        for row in &mut self.values {
            let mean = row.iter().sum::<f64>() / row.len().max(1) as f64;
            row.push(mean);
        }
        self
    }

    fn shade(v: f64, lo: f64, hi: f64) -> char {
        if !v.is_finite() || hi <= lo {
            return ' ';
        }
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        match (t * 4.0) as usize {
            0 => ' ',
            1 => '░',
            2 => '▒',
            3 => '▓',
            _ => '█',
        }
    }

    /// Renders the heatmap: each cell shows a shade character plus the
    /// value, darker = larger error.
    #[must_use]
    pub fn render(&self) -> String {
        let lo = self.values.iter().flatten().copied().fold(f64::INFINITY, f64::min);
        let hi = self.values.iter().flatten().copied().fold(f64::NEG_INFINITY, f64::max);
        let row_w = self.row_labels.iter().map(String::len).max().unwrap_or(4).max(4);
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "{:<row_w$}", "");
        for c in &self.col_labels {
            let _ = write!(out, "{c:>8}");
        }
        out.push('\n');
        for (r, row) in self.values.iter().enumerate() {
            let _ = write!(out, "{:<row_w$}", self.row_labels[r]);
            for &v in row {
                let _ = write!(out, " {}{v:>6.2}", Self::shade(v, lo, hi));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes as CSV (`row,col,value`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("row,col,value\n");
        for (r, row) in self.values.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                let _ = writeln!(out, "{},{},{:.4}", self.row_labels[r], self.col_labels[c], v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> Heatmap {
        Heatmap::new(
            "demo",
            vec!["fpr=1".into(), "fpr=4".into()],
            vec!["t0".into(), "t1".into()],
            vec![vec![4.0, 6.0], vec![1.0, 2.0]],
        )
    }

    #[test]
    fn render_contains_labels_and_values() {
        let s = map().render();
        assert!(s.contains("fpr=1") && s.contains("t1"));
        assert!(s.contains("4.00") && s.contains("2.00"));
    }

    #[test]
    fn row_means_append_column() {
        let h = map().with_row_means();
        assert_eq!(h.col_labels.last().unwrap(), "mean");
        assert_eq!(h.values[0][2], 5.0);
        assert_eq!(h.values[1][2], 1.5);
    }

    #[test]
    fn csv_has_all_cells() {
        let csv = map().to_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
    }

    #[test]
    fn shading_monotone() {
        assert_eq!(Heatmap::shade(0.0, 0.0, 1.0), ' ');
        assert_eq!(Heatmap::shade(1.0, 0.0, 1.0), '█');
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_grid() {
        let _ =
            Heatmap::new("bad", vec!["a".into()], vec!["x".into(), "y".into()], vec![vec![1.0]]);
    }
}
