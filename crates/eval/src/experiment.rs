//! The long-term evaluation loop.

use std::fmt::Write as _;
use std::path::Path;

use stone_dataset::{
    EvalBucket, FingerprintDataset, Framework, Localizer, LongTermSuite, SuitePlan,
};
use stone_radio::Point2;

use crate::metrics::mean_error_m;

/// One framework's error series over a suite's buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesResult {
    /// Framework name.
    pub framework: String,
    /// Mean localization error per bucket, in meters.
    pub mean_errors_m: Vec<f64>,
    /// Whether the framework used post-deployment re-training.
    pub requires_retraining: bool,
}

impl SeriesResult {
    /// Mean error across all buckets.
    #[must_use]
    pub fn overall_mean_m(&self) -> f64 {
        if self.mean_errors_m.is_empty() {
            return f64::NAN;
        }
        self.mean_errors_m.iter().sum::<f64>() / self.mean_errors_m.len() as f64
    }

    /// Worst bucket error.
    #[must_use]
    pub fn worst_m(&self) -> f64 {
        self.mean_errors_m.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Evaluates frameworks over long-term suites.
///
/// # Example
///
/// ```no_run
/// use stone_baselines::KnnBuilder;
/// use stone_dataset::{office_suite, Framework, SuiteConfig};
/// use stone_eval::Experiment;
///
/// let suite = office_suite(&SuiteConfig::tiny(1));
/// let knn = KnnBuilder::default();
/// let frameworks: Vec<&dyn Framework> = vec![&knn];
/// let report = Experiment::new(1).run(&suite, &frameworks);
/// println!("{}", report.render_table());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    seed: u64,
}

impl Experiment {
    /// Creates an experiment with the given training/evaluation seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Trains every framework on the suite's offline set, then walks the
    /// bucket timeline (see the crate docs for the retraining policy).
    ///
    /// Frameworks are independent tasks and are evaluated **concurrently**
    /// (up to `STONE_THREADS` at a time). Each task's randomness derives
    /// only from the experiment seed and the framework itself — never from
    /// scheduling — and the result series is ordered by input position, so
    /// a parallel run is byte-identical to a serial (`STONE_THREADS=1`)
    /// one. Buckets within a task stay sequential: bucket `t` must be
    /// evaluated before the localizer may adapt on bucket `t`'s scans.
    ///
    /// For paper-scale suites that should not be held resident, see
    /// [`Experiment::run_streamed`], which produces an identical report
    /// from a [`SuitePlan`] while materializing one bucket at a time.
    ///
    /// # Panics
    ///
    /// Panics when the suite has no buckets or a bucket has no trajectories.
    #[must_use]
    pub fn run(&self, suite: &LongTermSuite, frameworks: &[&dyn Framework]) -> ExperimentReport {
        assert!(!suite.buckets.is_empty(), "suite has no evaluation buckets");
        let series = stone_par::par_map(frameworks, |_, fw| self.evaluate_one(suite, *fw));
        ExperimentReport { suite: suite.name.clone(), bucket_labels: suite.bucket_labels(), series }
    }

    /// Walks every framework through the suite's bucket timeline without
    /// ever holding more than one bucket resident: buckets are materialized
    /// on demand from the plan's per-bucket RNG streams and dropped as soon
    /// as every framework has been evaluated (and offered adaptation data)
    /// on them.
    ///
    /// The report is **identical** to [`Experiment::run`] on the
    /// materialized suite (`plan.build()`): bucket bytes are the same
    /// (sharded generation is scheduling-independent), training uses the
    /// same `fit(train, seed)` calls, and buckets are visited in the same
    /// chronological order. The trade is concurrency shape, not results:
    /// the streamed walk evaluates frameworks bucket-by-bucket on one
    /// thread (inner paths — batched embedding, the KNN sweep — still
    /// parallelize), where `run` parallelizes across frameworks but needs
    /// the full timeline in memory.
    ///
    /// # Panics
    ///
    /// Panics when the plan has no buckets or a bucket has no trajectories.
    #[must_use]
    pub fn run_streamed(
        &self,
        plan: &SuitePlan,
        frameworks: &[&dyn Framework],
    ) -> ExperimentReport {
        assert!(plan.bucket_count() > 0, "suite plan has no evaluation buckets");
        self.walk_timeline(
            plan.name().to_string(),
            plan.train(),
            plan.buckets_iter().map(Ok),
            frameworks,
        )
        .expect("in-memory bucket stream cannot fail")
    }

    /// Like [`Experiment::run_streamed`], but the evaluation buckets are
    /// read back from the CSV files that [`SuitePlan::spill_buckets`] wrote
    /// to `dir` — the disk-backed half of the streaming story: generate (or
    /// receive) the timeline once, then run any number of experiments
    /// against it without regenerating a single bucket. Only the offline
    /// training set is materialized from the plan; at most one bucket is
    /// resident at a time.
    ///
    /// Files are visited in sorted filename order, which is chronological
    /// for spilled buckets (their labels are zero-padded: `CI00…CI15`,
    /// `M01…M15`). The report is **identical** to [`Experiment::run_streamed`]
    /// on the same plan — the bucket CSV codec is lossless, so the walk sees
    /// bit-identical scans (pinned by the experiment-runner tests).
    ///
    /// # Errors
    ///
    /// Any I/O error reading `dir`, [`std::io::ErrorKind::InvalidInput`]
    /// when it holds no `.csv` file, and
    /// [`std::io::ErrorKind::InvalidData`] when a file does not parse as a
    /// spilled bucket.
    ///
    /// # Panics
    ///
    /// Panics when a bucket has no trajectories (as [`Experiment::run`]).
    pub fn run_streamed_from_dir(
        &self,
        plan: &SuitePlan,
        dir: &Path,
        frameworks: &[&dyn Framework],
    ) -> std::io::Result<ExperimentReport> {
        let mut paths: Vec<std::path::PathBuf> =
            std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
        paths.retain(|p| p.extension().is_some_and(|x| x == "csv"));
        paths.sort();
        if paths.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("no bucket CSV files in {}", dir.display()),
            ));
        }
        let buckets = paths.iter().map(|p| {
            let text = std::fs::read_to_string(p)?;
            stone_dataset::io::bucket_from_csv(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: {e}", p.display()),
                )
            })
        });
        self.walk_timeline(plan.name().to_string(), plan.train(), buckets, frameworks)
    }

    /// The shared streamed walk: train every framework once, then visit the
    /// buckets chronologically, evaluating before offering adaptation data
    /// — wherever the buckets come from (plan RNG streams or spilled CSVs).
    fn walk_timeline(
        &self,
        suite: String,
        train: FingerprintDataset,
        buckets: impl Iterator<Item = std::io::Result<EvalBucket>>,
        frameworks: &[&dyn Framework],
    ) -> std::io::Result<ExperimentReport> {
        let mut locs: Vec<Box<dyn Localizer>> =
            frameworks.iter().map(|fw| fw.fit(&train, self.seed)).collect();
        drop(train);
        let mut errors: Vec<Vec<f64>> = vec![Vec::new(); frameworks.len()];
        let mut bucket_labels = Vec::new();
        for bucket in buckets {
            let bucket = bucket?;
            bucket_labels.push(bucket.label.clone());
            let scans = bucket.raw_scans();
            for (loc, errs) in locs.iter_mut().zip(&mut errors) {
                errs.push(Self::evaluate_bucket(loc.as_mut(), &bucket));
                // Offer this bucket's unlabeled scans for refitting before
                // the next bucket (LT-KNN's monthly recalibration).
                loc.adapt(&scans);
            }
        }
        let series = frameworks
            .iter()
            .zip(locs)
            .zip(errors)
            .map(|((fw, loc), mean_errors_m)| SeriesResult {
                framework: fw.name().to_string(),
                mean_errors_m,
                requires_retraining: loc.requires_retraining(),
            })
            .collect();
        Ok(ExperimentReport { suite, bucket_labels, series })
    }

    /// Localizes every scan of one bucket and returns the mean error.
    ///
    /// # Panics
    ///
    /// Panics when the bucket has no test points.
    fn evaluate_bucket(loc: &mut dyn Localizer, bucket: &EvalBucket) -> f64 {
        let mut preds: Vec<Point2> = Vec::new();
        let mut truths: Vec<Point2> = Vec::new();
        for traj in &bucket.trajectories {
            preds.extend(loc.locate_trajectory(traj));
            truths.extend(traj.fingerprints.iter().map(|f| f.pos));
        }
        assert!(!preds.is_empty(), "bucket {} has no test points", bucket.label);
        mean_error_m(&preds, &truths)
    }

    /// Trains one framework and walks it through the bucket timeline — the
    /// body of one parallel evaluation task.
    fn evaluate_one(&self, suite: &LongTermSuite, fw: &dyn Framework) -> SeriesResult {
        let mut loc = fw.fit(&suite.train, self.seed);
        let mut errors = Vec::with_capacity(suite.buckets.len());
        for bucket in &suite.buckets {
            errors.push(Self::evaluate_bucket(loc.as_mut(), bucket));
            // Offer this bucket's unlabeled scans for refitting before
            // the next bucket (LT-KNN's monthly recalibration).
            loc.adapt(&bucket.raw_scans());
        }
        SeriesResult {
            framework: fw.name().to_string(),
            mean_errors_m: errors,
            requires_retraining: loc.requires_retraining(),
        }
    }
}

/// Results of one [`Experiment::run`]: the data behind Figs. 5 and 6.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Suite name.
    pub suite: String,
    /// Bucket labels (x-axis).
    pub bucket_labels: Vec<String>,
    /// One series per framework.
    pub series: Vec<SeriesResult>,
}

impl ExperimentReport {
    /// Looks up a framework's series by name.
    #[must_use]
    pub fn series_for(&self, framework: &str) -> Option<&SeriesResult> {
        self.series.iter().find(|s| s.framework == framework)
    }

    /// Mean improvement of `ours` over `theirs` across buckets, in meters
    /// (positive = `ours` is better).
    ///
    /// # Panics
    ///
    /// Panics when either framework is missing from the report.
    #[must_use]
    pub fn mean_improvement_m(&self, ours: &str, theirs: &str) -> f64 {
        let a = self.series_for(ours).expect("framework in report");
        let b = self.series_for(theirs).expect("framework in report");
        b.overall_mean_m() - a.overall_mean_m()
    }

    /// Largest per-bucket relative improvement of `ours` over `theirs`, in
    /// percent (the paper's "up to X% better" statements).
    ///
    /// # Panics
    ///
    /// Panics when either framework is missing from the report.
    #[must_use]
    pub fn max_improvement_pct(&self, ours: &str, theirs: &str) -> f64 {
        let a = self.series_for(ours).expect("framework in report");
        let b = self.series_for(theirs).expect("framework in report");
        a.mean_errors_m
            .iter()
            .zip(&b.mean_errors_m)
            .map(|(&ea, &eb)| if eb > 0.0 { (eb - ea) / eb * 100.0 } else { 0.0 })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The series in canonical render order: sorted by framework name
    /// (stable, so duplicates keep their relative input order).
    ///
    /// Rendering through this view makes every textual artifact a function
    /// of the report's *contents* only — independent of roster order and,
    /// in particular, of the completion order of the parallel runner — so
    /// outputs from repeated runs diff cleanly.
    fn canonical_series(&self) -> Vec<&SeriesResult> {
        let mut view: Vec<&SeriesResult> = self.series.iter().collect();
        view.sort_by(|a, b| a.framework.cmp(&b.framework));
        view
    }

    /// Renders the report as a fixed-width ASCII table (frameworks × buckets,
    /// plus overall means), the textual equivalent of Figs. 5/6. Rows are in
    /// canonical (framework-name) order.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Mean localization error (m) — suite: {}", self.suite);
        let name_w = self
            .series
            .iter()
            .map(|s| s.framework.len() + 2)
            .chain(std::iter::once(10))
            .max()
            .unwrap_or(10);
        let _ = write!(out, "{:<name_w$}", "framework");
        for l in &self.bucket_labels {
            let _ = write!(out, "{l:>7}");
        }
        let _ = writeln!(out, "{:>8}{:>9}", "mean", "retrain?");
        for s in self.canonical_series() {
            let _ = write!(out, "{:<name_w$}", s.framework);
            for e in &s.mean_errors_m {
                let _ = write!(out, "{e:>7.2}");
            }
            let _ = writeln!(
                out,
                "{:>8.2}{:>9}",
                s.overall_mean_m(),
                if s.requires_retraining { "yes" } else { "no" }
            );
        }
        out
    }

    /// Serializes the report as CSV (`framework,bucket,label,error_m`).
    /// Rows are in canonical (framework-name, bucket) order.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("framework,bucket,label,error_m\n");
        for s in self.canonical_series() {
            for (i, (l, e)) in self.bucket_labels.iter().zip(&s.mean_errors_m).enumerate() {
                let _ = writeln!(out, "{},{},{},{:.4}", s.framework, i, l, e);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExperimentReport {
        ExperimentReport {
            suite: "demo".into(),
            bucket_labels: vec!["B0".into(), "B1".into()],
            series: vec![
                SeriesResult {
                    framework: "A".into(),
                    mean_errors_m: vec![1.0, 2.0],
                    requires_retraining: false,
                },
                SeriesResult {
                    framework: "B".into(),
                    mean_errors_m: vec![2.0, 4.0],
                    requires_retraining: true,
                },
            ],
        }
    }

    #[test]
    fn overall_and_worst() {
        let r = report();
        assert_eq!(r.series[0].overall_mean_m(), 1.5);
        assert_eq!(r.series[1].worst_m(), 4.0);
    }

    #[test]
    fn improvements() {
        let r = report();
        assert_eq!(r.mean_improvement_m("A", "B"), 1.5);
        assert_eq!(r.max_improvement_pct("A", "B"), 50.0);
    }

    #[test]
    fn table_contains_all_frameworks_and_buckets() {
        let r = report();
        let t = r.render_table();
        assert!(t.contains("A") && t.contains("B"));
        assert!(t.contains("B0") && t.contains("B1"));
        assert!(t.contains("yes") && t.contains("no"));
    }

    #[test]
    fn csv_row_count() {
        let r = report();
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 1 + 2 * 2);
        assert!(csv.starts_with("framework,bucket,label,error_m"));
    }

    #[test]
    fn rendering_is_independent_of_series_order() {
        // The parallel runner guarantees input order, but the textual
        // artifacts must not even depend on that: scrambling the series
        // vector must not change the table or the CSV.
        let r = report();
        let mut scrambled = r.clone();
        scrambled.series.reverse();
        assert_eq!(r.render_table(), scrambled.render_table());
        assert_eq!(r.to_csv(), scrambled.to_csv());
    }

    #[test]
    fn series_lookup() {
        let r = report();
        assert!(r.series_for("A").is_some());
        assert!(r.series_for("Z").is_none());
    }
}
