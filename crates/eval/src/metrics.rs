//! Localization-error metrics.

use stone_radio::Point2;

/// Mean Euclidean error between predictions and ground truth, in meters.
///
/// # Panics
///
/// Panics when the slices differ in length or are empty.
#[must_use]
pub fn mean_error_m(preds: &[Point2], truths: &[Point2]) -> f64 {
    assert_eq!(preds.len(), truths.len(), "prediction/truth count mismatch");
    assert!(!preds.is_empty(), "error over empty set is undefined");
    preds.iter().zip(truths).map(|(p, t)| p.distance(*t)).sum::<f64>() / preds.len() as f64
}

/// Median Euclidean error, in meters.
///
/// # Panics
///
/// Panics when the slices differ in length or are empty.
#[must_use]
pub fn median_error_m(preds: &[Point2], truths: &[Point2]) -> f64 {
    percentile_error_m(preds, truths, 50.0)
}

/// Error percentile (nearest-rank), in meters. `pct` in `[0, 100]`.
///
/// # Panics
///
/// Panics when the slices differ in length or are empty, or `pct` is out of
/// range.
#[must_use]
pub fn percentile_error_m(preds: &[Point2], truths: &[Point2], pct: f64) -> f64 {
    assert_eq!(preds.len(), truths.len(), "prediction/truth count mismatch");
    assert!(!preds.is_empty(), "error over empty set is undefined");
    assert!((0.0..=100.0).contains(&pct), "percentile must be in [0, 100]");
    let mut errs: Vec<f64> = preds.iter().zip(truths).map(|(p, t)| p.distance(*t)).collect();
    errs.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let rank = ((pct / 100.0) * (errs.len() as f64 - 1.0)).round() as usize;
    errs[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(xs: &[f64]) -> Vec<Point2> {
        xs.iter().map(|&x| Point2::new(x, 0.0)).collect()
    }

    #[test]
    fn mean_error_basic() {
        let preds = pts(&[0.0, 1.0, 2.0]);
        let truths = pts(&[0.0, 0.0, 0.0]);
        assert_eq!(mean_error_m(&preds, &truths), 1.0);
    }

    #[test]
    fn median_is_robust_to_outlier() {
        let preds = pts(&[0.0, 0.1, 100.0]);
        let truths = pts(&[0.0, 0.0, 0.0]);
        assert!(median_error_m(&preds, &truths) < 0.2);
        assert!(mean_error_m(&preds, &truths) > 30.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let preds = pts(&[0.0, 1.0, 2.0, 3.0, 10.0]);
        let truths = pts(&[0.0, 0.0, 0.0, 0.0, 0.0]);
        let p25 = percentile_error_m(&preds, &truths, 25.0);
        let p75 = percentile_error_m(&preds, &truths, 75.0);
        let p100 = percentile_error_m(&preds, &truths, 100.0);
        assert!(p25 <= p75 && p75 <= p100);
        assert_eq!(p100, 10.0);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_errors_panic() {
        let _ = mean_error_m(&[], &[]);
    }
}
