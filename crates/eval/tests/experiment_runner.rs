//! Integration tests for the experiment runner against real suites and
//! frameworks.

use stone_baselines::{KnnBuilder, LtKnnBuilder};
use stone_dataset::{office_plan, office_suite, Framework, SuiteConfig};
use stone_eval::Experiment;

#[test]
fn runner_produces_one_series_per_framework() {
    let suite = office_suite(&SuiteConfig::tiny(50));
    let knn = KnnBuilder::default();
    let lt = LtKnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&knn, &lt];
    let report = Experiment::new(50).run(&suite, &frameworks);
    assert_eq!(report.series.len(), 2);
    assert_eq!(report.suite, "Office");
    for s in &report.series {
        assert_eq!(s.mean_errors_m.len(), suite.buckets.len());
    }
}

#[test]
fn adaptation_happens_after_evaluation_not_before() {
    // LT-KNN and KNN share the same radio map at CI0 (no adaptation has
    // happened yet), so their CI0 errors must be identical; afterwards the
    // two series may diverge.
    let suite = office_suite(&SuiteConfig::tiny(51));
    let knn = KnnBuilder::default();
    let lt = LtKnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&knn, &lt];
    let report = Experiment::new(51).run(&suite, &frameworks);
    let a = &report.series_for("KNN").unwrap().mean_errors_m;
    let b = &report.series_for("LT-KNN").unwrap().mean_errors_m;
    assert!(
        (a[0] - b[0]).abs() < 1e-9,
        "CI0 must be evaluated before any adaptation: {} vs {}",
        a[0],
        b[0]
    );
}

#[test]
fn streamed_run_equals_materialized_run() {
    // The streaming path (one bucket resident at a time) must produce a
    // report identical to the materialized path — same bucket bytes, same
    // fit calls, same adaptation order. Includes an adapting framework so
    // the bucket-by-bucket adapt interleaving is exercised.
    let cfg = SuiteConfig::tiny(54);
    let knn = KnnBuilder::default();
    let lt = LtKnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&knn, &lt];
    let materialized = Experiment::new(54).run(&office_plan(&cfg).build(), &frameworks);
    let streamed = Experiment::new(54).run_streamed(&office_plan(&cfg), &frameworks);
    assert_eq!(streamed, materialized);
    assert_eq!(streamed.to_csv(), materialized.to_csv());
}

#[test]
fn disk_backed_run_equals_in_memory_runs() {
    // The PR 3 follow-up: spill the timeline to CSV once, then evaluate
    // straight from disk. The report must be *identical* to both in-memory
    // paths — the bucket codec is lossless and the walk order matches.
    let cfg = SuiteConfig::tiny(55);
    let plan = office_plan(&cfg);
    let dir = std::env::temp_dir().join(format!("stone-eval-spill-{}", std::process::id()));
    plan.spill_buckets(&dir).expect("spill writes");

    let knn = KnnBuilder::default();
    let lt = LtKnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&knn, &lt];
    let from_disk = Experiment::new(55)
        .run_streamed_from_dir(&plan, &dir, &frameworks)
        .expect("disk-backed run");
    let streamed = Experiment::new(55).run_streamed(&plan, &frameworks);
    let materialized = Experiment::new(55).run(&plan.build(), &frameworks);
    assert_eq!(from_disk, streamed);
    assert_eq!(from_disk, materialized);
    assert_eq!(from_disk.to_csv(), materialized.to_csv());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn disk_backed_run_reports_missing_and_malformed_files() {
    let cfg = SuiteConfig::tiny(56);
    let plan = office_plan(&cfg);
    let knn = KnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&knn];
    let dir = std::env::temp_dir().join(format!("stone-eval-empty-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    // An empty directory is InvalidInput, not a silent empty report.
    let err = Experiment::new(56).run_streamed_from_dir(&plan, &dir, &frameworks).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // A malformed CSV is InvalidData and names the offending file.
    std::fs::write(dir.join("broken.csv"), "not,a,bucket\n").expect("write");
    let err = Experiment::new(56).run_streamed_from_dir(&plan, &dir, &frameworks).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("broken.csv"), "error must name the file: {err}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn retraining_flag_reported_per_framework() {
    let suite = office_suite(&SuiteConfig::tiny(52));
    let knn = KnnBuilder::default();
    let lt = LtKnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&knn, &lt];
    let report = Experiment::new(52).run(&suite, &frameworks);
    assert!(!report.series_for("KNN").unwrap().requires_retraining);
    assert!(report.series_for("LT-KNN").unwrap().requires_retraining);
}

#[test]
fn improvement_metrics_are_consistent() {
    let suite = office_suite(&SuiteConfig::tiny(53));
    let knn = KnnBuilder::new(1);
    let knn3 = KnnBuilder::default();
    // Two KNN variants give a deterministic pair to compare.
    struct Named<'a>(&'a KnnBuilder, &'static str);
    impl Framework for Named<'_> {
        fn name(&self) -> &str {
            self.1
        }
        fn fit(
            &self,
            train: &stone_dataset::FingerprintDataset,
            seed: u64,
        ) -> Box<dyn stone_dataset::Localizer> {
            self.0.fit(train, seed)
        }
    }
    let a = Named(&knn, "KNN-1");
    let b = Named(&knn3, "KNN-3");
    let frameworks: Vec<&dyn Framework> = vec![&a, &b];
    let report = Experiment::new(53).run(&suite, &frameworks);
    let imp_ab = report.mean_improvement_m("KNN-1", "KNN-3");
    let imp_ba = report.mean_improvement_m("KNN-3", "KNN-1");
    assert!((imp_ab + imp_ba).abs() < 1e-9, "improvement must be antisymmetric");
}
