//! Property-based tests for the radio simulator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_radio::{presets, shadowing, Point2, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scans_always_in_valid_range(
        seed in 0u64..50,
        x in 0.0f64..48.0,
        y in -5.0f64..7.0,
        hours in 0.0f64..6000.0,
    ) {
        let env = presets::office_environment(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let scan = env.scan(Point2::new(x, y), SimTime::from_hours(hours), &mut rng);
        prop_assert_eq!(scan.len(), env.ap_count());
        for v in scan.into_iter().flatten() {
            prop_assert!((-100.0..=0.0).contains(&v), "rssi {} out of range", v);
        }
    }

    #[test]
    fn channel_is_pure_function_of_inputs(
        seed in 0u64..20,
        x in 0.0f64..36.0,
        y in 0.0f64..30.0,
        hours in 0.0f64..3000.0,
    ) {
        let env = presets::uji_hall_environment(seed);
        let t = SimTime::from_hours(hours);
        let p = Point2::new(x, y);
        let a = env.scan(p, t, &mut StdRng::seed_from_u64(9));
        let b = env.scan(p, t, &mut StdRng::seed_from_u64(9));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn value_noise_bounded_everywhere(
        seed in any::<u64>(),
        salt in any::<u64>(),
        x in -1e4f64..1e4,
        y in -1e4f64..1e4,
    ) {
        let v = shadowing::value_noise_2d(seed, salt, x, y, 4.0);
        prop_assert!((-1.0..=1.0).contains(&v));
        let w = shadowing::value_noise_3d(seed, salt, x, y, x.abs(), 4.0, 8.0);
        prop_assert!((-1.0..=1.0).contains(&w));
    }

    #[test]
    fn nearby_positions_have_similar_channels(
        seed in 0u64..20,
        x in 1.0f64..46.0,
    ) {
        // Spatial coherence: moving 5 cm must not change the mean channel
        // by more than a couple of dB for any visible AP — unless the step
        // crosses a wall, which legitimately jumps by the wall attenuation.
        let env = presets::office_environment(seed);
        let t = SimTime::from_hours(10.0);
        let pa = Point2::new(x, 1.0);
        let pb = Point2::new(x + 0.05, 1.0);
        for (idx, ap) in env.aps().iter().enumerate() {
            if env.floorplan().walls_crossed(ap.pos, pa)
                != env.floorplan().walls_crossed(ap.pos, pb)
            {
                continue;
            }
            let a = env.channel_rssi_dbm(idx, pa, t, &mut StdRng::seed_from_u64(1));
            let b = env.channel_rssi_dbm(idx, pb, t, &mut StdRng::seed_from_u64(1));
            if let (Some(a), Some(b)) = (a, b) {
                // Fast fading uses identical rng streams, so the difference
                // is purely spatial. The warp can shift the *apparent* AP
                // position across a wall relative to the survey, so allow a
                // one-wall margin on top of smooth-field variation.
                prop_assert!((a - b).abs() < 10.0, "AP {} jumped {} dB over 5 cm", idx, (a - b).abs());
            }
        }
    }
}
