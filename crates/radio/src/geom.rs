//! Minimal 2-D geometry: points, segments, rectangles.

/// A point (or vector) in the floorplan plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point2 {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from coordinates in meters.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    #[must_use]
    pub fn distance(&self, other: Point2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[must_use]
    pub fn sq_distance(&self, other: Point2) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// Linear interpolation from `self` toward `other` (`t = 0` → self,
    /// `t = 1` → other).
    #[must_use]
    pub fn lerp(&self, other: Point2, t: f64) -> Point2 {
        Point2::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }
}

impl std::fmt::Display for Point2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// First endpoint.
    pub a: Point2,
    /// Second endpoint.
    pub b: Point2,
}

impl Segment {
    /// Creates a segment from two endpoints.
    #[must_use]
    pub fn new(a: Point2, b: Point2) -> Self {
        Self { a, b }
    }

    /// Segment length in meters.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Returns `true` when `self` and `other` intersect (including touching
    /// at endpoints or collinear overlap).
    #[must_use]
    pub fn intersects(&self, other: &Segment) -> bool {
        fn orient(p: Point2, q: Point2, r: Point2) -> f64 {
            (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)
        }
        fn on_segment(p: Point2, q: Point2, r: Point2) -> bool {
            r.x <= p.x.max(q.x) + 1e-12
                && r.x >= p.x.min(q.x) - 1e-12
                && r.y <= p.y.max(q.y) + 1e-12
                && r.y >= p.y.min(q.y) - 1e-12
        }
        let (p1, q1, p2, q2) = (self.a, self.b, other.a, other.b);
        let d1 = orient(p1, q1, p2);
        let d2 = orient(p1, q1, q2);
        let d3 = orient(p2, q2, p1);
        let d4 = orient(p2, q2, q1);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1.abs() < 1e-12 && on_segment(p1, q1, p2))
            || (d2.abs() < 1e-12 && on_segment(p1, q1, q2))
            || (d3.abs() < 1e-12 && on_segment(p2, q2, p1))
            || (d4.abs() < 1e-12 && on_segment(p2, q2, q1))
    }
}

/// An axis-aligned rectangle, used for floorplan bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// Minimum corner.
    pub min: Point2,
    /// Maximum corner.
    pub max: Point2,
}

impl Rect {
    /// Creates a rectangle from its min/max corners.
    ///
    /// # Panics
    ///
    /// Panics when `min` is not component-wise ≤ `max`.
    #[must_use]
    pub fn new(min: Point2, max: Point2) -> Self {
        assert!(min.x <= max.x && min.y <= max.y, "rect min must be <= max");
        Self { min, max }
    }

    /// Rectangle width (x extent) in meters.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Rectangle height (y extent) in meters.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.sq_distance(b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(1.0, 2.0));
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = Segment::new(Point2::new(0.0, 0.0), Point2::new(2.0, 2.0));
        let s2 = Segment::new(Point2::new(0.0, 2.0), Point2::new(2.0, 0.0));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = Segment::new(Point2::new(0.0, 0.0), Point2::new(2.0, 0.0));
        let s2 = Segment::new(Point2::new(0.0, 1.0), Point2::new(2.0, 1.0));
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn touching_at_endpoint_counts() {
        let s1 = Segment::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        let s2 = Segment::new(Point2::new(1.0, 0.0), Point2::new(1.0, 1.0));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn disjoint_collinear_segments_do_not_intersect() {
        let s1 = Segment::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        let s2 = Segment::new(Point2::new(2.0, 0.0), Point2::new(3.0, 0.0));
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn rect_contains() {
        let r = Rect::new(Point2::new(0.0, 0.0), Point2::new(10.0, 5.0));
        assert!(r.contains(Point2::new(5.0, 2.5)));
        assert!(r.contains(Point2::new(0.0, 0.0)));
        assert!(!r.contains(Point2::new(11.0, 2.0)));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 5.0);
    }

    #[test]
    #[should_panic(expected = "rect min")]
    fn rect_rejects_inverted() {
        let _ = Rect::new(Point2::new(1.0, 0.0), Point2::new(0.0, 1.0));
    }
}
