//! The composed radio environment: propagation + temporal + lifecycle +
//! device models over a floorplan.

use rand::rngs::StdRng;

use crate::ap::{AccessPoint, ApId};
use crate::device::DeviceModel;
use crate::floorplan::Floorplan;
use crate::geom::Point2;
use crate::lifecycle::ApSchedule;
use crate::shadowing::value_noise_2d;
use crate::temporal::TemporalModel;
use crate::time::SimTime;

/// Large-scale propagation parameters (log-distance + multi-wall +
/// correlated shadowing).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PropagationModel {
    /// Path-loss exponent `n` (free space ≈ 2.0; cluttered indoor 2.5–4).
    pub path_loss_exponent: f64,
    /// Standard scale of the correlated shadow-fading field, in dB.
    pub shadow_db: f64,
    /// Correlation length of the shadowing field, in meters.
    pub shadow_cell_m: f64,
}

impl PropagationModel {
    /// Typical open-indoor parameters.
    #[must_use]
    pub fn open_indoor() -> Self {
        Self { path_loss_exponent: 2.4, shadow_db: 3.0, shadow_cell_m: 5.0 }
    }

    /// Cluttered/metallic environment (the Basement path).
    #[must_use]
    pub fn cluttered() -> Self {
        Self { path_loss_exponent: 2.9, shadow_db: 4.5, shadow_cell_m: 3.5 }
    }

    /// Mean path loss over `distance_m` meters, in dB (distances below 1 m
    /// are clamped to the 1 m reference).
    #[must_use]
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        10.0 * self.path_loss_exponent * distance_m.max(1.0).log10()
    }
}

/// A complete simulated radio environment for one floorplan.
///
/// All spatial/temporal noise structure is a pure function of
/// `(seed, AP salt, position, time)`, so scans are reproducible; only the
/// fast per-measurement fading consumes the caller's RNG.
#[derive(Debug, Clone)]
pub struct RadioEnvironment {
    floorplan: Floorplan,
    aps: Vec<AccessPoint>,
    propagation: PropagationModel,
    temporal: TemporalModel,
    schedule: ApSchedule,
    device: DeviceModel,
    seed: u64,
}

impl RadioEnvironment {
    /// Assembles an environment.
    ///
    /// # Panics
    ///
    /// Panics when `aps` is empty.
    #[must_use]
    pub fn new(
        floorplan: Floorplan,
        aps: Vec<AccessPoint>,
        propagation: PropagationModel,
        temporal: TemporalModel,
        schedule: ApSchedule,
        device: DeviceModel,
        seed: u64,
    ) -> Self {
        assert!(!aps.is_empty(), "environment needs at least one access point");
        Self { floorplan, aps, propagation, temporal, schedule, device, seed }
    }

    /// The floorplan.
    #[must_use]
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// All access points (including ones scheduled for removal).
    #[must_use]
    pub fn aps(&self) -> &[AccessPoint] {
        &self.aps
    }

    /// Number of access points in the universe.
    #[must_use]
    pub fn ap_count(&self) -> usize {
        self.aps.len()
    }

    /// The AP lifecycle schedule.
    #[must_use]
    pub fn schedule(&self) -> &ApSchedule {
        &self.schedule
    }

    /// Replaces the lifecycle schedule (used by suite builders that decide
    /// removal times after AP placement).
    pub fn set_schedule(&mut self, schedule: ApSchedule) {
        self.schedule = schedule;
    }

    /// The environment seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True channel RSSI (before the device model) from AP index `idx` at
    /// `pos`/`t`, or `None` when the AP is removed.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    #[must_use]
    pub fn channel_rssi_dbm(
        &self,
        idx: usize,
        pos: Point2,
        t: SimTime,
        rng: &mut StdRng,
    ) -> Option<f64> {
        let ap = &self.aps[idx];
        if !self.schedule.is_active(ap.id, t) {
            return None;
        }
        let (salt, tx_delta) = self.schedule.effective_unit(ap.id, ap.salt, t);
        // Apparent AP position: multipath changes over time shift each AP's
        // signal pattern as if the AP itself wandered (see TemporalModel).
        let (wx, wy) = self.temporal.warp_offset_m(self.seed, salt, t);
        let apparent = Point2::new(ap.pos.x + wx, ap.pos.y + wy);
        let d = apparent.distance(pos);
        let mut rssi = ap.tx_power_dbm + tx_delta;
        rssi -= self.propagation.path_loss_db(d);
        rssi -= self.floorplan.wall_loss_db(apparent, pos);
        rssi += self.propagation.shadow_db
            * value_noise_2d(
                self.seed,
                salt,
                pos.x - wx,
                pos.y - wy,
                self.propagation.shadow_cell_m,
            );
        rssi += TemporalModel::hardware_offset_db(self.seed, salt);
        rssi += self.temporal.drift_offset_db(self.seed, salt, t);
        rssi += self.temporal.churn_offset_db(self.seed, salt, pos, t);
        rssi -= self.temporal.diurnal_attenuation_db(self.seed, salt, t);
        rssi += self.temporal.fast_fading_db(rng);
        Some(rssi)
    }

    /// Performs one WiFi scan: the device-observed RSSI per AP (in AP
    /// order), `None` for APs that are removed or below the detection
    /// threshold.
    #[must_use]
    pub fn scan(&self, pos: Point2, t: SimTime, rng: &mut StdRng) -> Vec<Option<f64>> {
        (0..self.aps.len())
            .map(|i| self.channel_rssi_dbm(i, pos, t, rng).and_then(|v| self.device.observe(v)))
            .collect()
    }

    /// Ids of APs visible (observed at least once) across `n_probes` scans
    /// at `pos`/`t` — used to annotate floorplans like the paper's Fig. 3.
    #[must_use]
    pub fn visible_aps(
        &self,
        pos: Point2,
        t: SimTime,
        rng: &mut StdRng,
        n_probes: usize,
    ) -> Vec<ApId> {
        let mut seen = vec![false; self.aps.len()];
        for _ in 0..n_probes.max(1) {
            for (i, v) in self.scan(pos, t, rng).into_iter().enumerate() {
                if v.is_some() {
                    seen[i] = true;
                }
            }
        }
        self.aps.iter().zip(seen).filter_map(|(ap, s)| s.then_some(ap.id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Wall;
    use crate::geom::{Rect, Segment};
    use rand::SeedableRng;

    fn quiet_env(seed: u64) -> RadioEnvironment {
        let plan = Floorplan::new(
            "test",
            Rect::new(Point2::new(0.0, 0.0), Point2::new(40.0, 10.0)),
            vec![Wall::new(Segment::new(Point2::new(20.0, 0.0), Point2::new(20.0, 10.0)), 8.0)],
        );
        let aps = vec![
            AccessPoint::new(ApId(0), Point2::new(2.0, 5.0), -40.0),
            AccessPoint::new(ApId(1), Point2::new(38.0, 5.0), -40.0),
        ];
        RadioEnvironment::new(
            plan,
            aps,
            PropagationModel { shadow_db: 0.0, ..PropagationModel::open_indoor() },
            TemporalModel::quiet(),
            ApSchedule::none(),
            DeviceModel::ideal(),
            seed,
        )
    }

    #[test]
    fn rssi_decays_with_distance() {
        let env = quiet_env(1);
        let mut rng = StdRng::seed_from_u64(0);
        let t = SimTime::start();
        let near = env.channel_rssi_dbm(0, Point2::new(4.0, 5.0), t, &mut rng).unwrap();
        let far = env.channel_rssi_dbm(0, Point2::new(15.0, 5.0), t, &mut rng).unwrap();
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn wall_attenuates_by_configured_amount() {
        let env = quiet_env(1);
        let mut rng = StdRng::seed_from_u64(0);
        let t = SimTime::start();
        // Points equidistant from AP0 (at x = 2): x = 18 (no wall) vs the
        // mirrored geometry for AP1 (at x = 38): x = 22 -> also 16 m but no
        // wall; x = 18 from AP1 crosses the wall at 20.
        let no_wall = env.channel_rssi_dbm(1, Point2::new(22.0, 5.0), t, &mut rng).unwrap();
        let with_wall = env.channel_rssi_dbm(1, Point2::new(18.0, 5.0), t, &mut rng).unwrap();
        // 16 m vs 20 m plus an 8 dB wall: difference must exceed the pure
        // distance effect by roughly the wall loss.
        let pure_distance = env.propagation.path_loss_db(20.0) - env.propagation.path_loss_db(16.0);
        assert!(
            (no_wall - with_wall) > pure_distance + 7.0,
            "wall not applied: {no_wall} vs {with_wall}"
        );
    }

    #[test]
    fn removed_ap_disappears() {
        let mut env = quiet_env(1);
        let mut rng = StdRng::seed_from_u64(0);
        env.set_schedule(ApSchedule::from_events(vec![crate::ApEvent::Removed {
            ap: ApId(0),
            at: SimTime::from_months(2.0),
        }]));
        let before =
            env.channel_rssi_dbm(0, Point2::new(4.0, 5.0), SimTime::from_months(1.0), &mut rng);
        let after =
            env.channel_rssi_dbm(0, Point2::new(4.0, 5.0), SimTime::from_months(3.0), &mut rng);
        assert!(before.is_some());
        assert!(after.is_none());
    }

    #[test]
    fn scan_is_deterministic_given_rng_state() {
        let env = quiet_env(7);
        let t = SimTime::from_days(3.0);
        let p = Point2::new(10.0, 5.0);
        let a = env.scan(p, t, &mut StdRng::seed_from_u64(5));
        let b = env.scan(p, t, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn scan_values_in_valid_range() {
        let env = quiet_env(3);
        let mut rng = StdRng::seed_from_u64(9);
        let scan = env.scan(Point2::new(6.0, 2.0), SimTime::start(), &mut rng);
        for v in scan.into_iter().flatten() {
            assert!((-100.0..=0.0).contains(&v), "rssi {v}");
        }
    }

    #[test]
    fn visible_aps_lists_observed_ids() {
        let env = quiet_env(3);
        let mut rng = StdRng::seed_from_u64(9);
        let ids = env.visible_aps(Point2::new(6.0, 5.0), SimTime::start(), &mut rng, 3);
        assert!(ids.contains(&ApId(0)));
    }

    #[test]
    fn replacement_changes_channel() {
        let mut env = quiet_env(11);
        let mut rng = StdRng::seed_from_u64(0);
        env.set_schedule(ApSchedule::from_events(vec![crate::ApEvent::Replaced {
            ap: ApId(0),
            at: SimTime::from_months(1.0),
            new_salt: 0xDEAD_BEEF,
            tx_delta_db: 0.0,
        }]));
        let p = Point2::new(10.0, 5.0);
        let before = env.channel_rssi_dbm(0, p, SimTime::from_days(1.0), &mut rng).unwrap();
        let after = env.channel_rssi_dbm(0, p, SimTime::from_months(2.0), &mut rng).unwrap();
        // Same distance/time-of-day, quiet temporal model: any difference
        // comes from the replacement unit's new noise fields.
        assert!((before - after).abs() > 0.01, "replacement had no effect");
    }
}
