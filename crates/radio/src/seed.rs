//! Seed-stream derivation for sharded deterministic generation.
//!
//! Parallel generation stays bitwise-reproducible only if no RNG state is
//! threaded *between* work items: each item must draw from its own stream,
//! derived purely from `(master seed, stream tag)`. This module provides
//! that derivation, built on the same SplitMix64 mixer as the value-noise
//! fields — two mixing rounds so that related tags (consecutive bucket
//! indices, consecutive RP ids) land on statistically independent streams.

use crate::shadowing::splitmix64;

/// Derives the seed of an independent RNG stream from a master seed and a
/// stream tag.
///
/// The derivation is a pure function of its inputs, so any work item tagged
/// by its *identity* (bucket index, reference-point id, venue) can be
/// generated on any thread, in any order, and produce identical bytes —
/// the foundation of the sharded suite builders in `stone-dataset`.
///
/// Two SplitMix64 rounds separate the master and the tag before mixing, so
/// low-entropy tag patterns (0, 1, 2, ...) cannot collide across nearby
/// master seeds.
///
/// # Example
///
/// ```
/// let a = stone_radio::derive_stream_seed(42, 0);
/// let b = stone_radio::derive_stream_seed(42, 1);
/// assert_ne!(a, b); // distinct tags -> distinct streams
/// assert_eq!(a, stone_radio::derive_stream_seed(42, 0)); // pure function
/// ```
#[must_use]
pub fn derive_stream_seed(master: u64, stream: u64) -> u64 {
    splitmix64(splitmix64(master).wrapping_add(splitmix64(stream ^ 0x5EED_57EE_A11D_0C5D)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_function_of_inputs() {
        assert_eq!(derive_stream_seed(7, 3), derive_stream_seed(7, 3));
    }

    #[test]
    fn nearby_tags_decorrelate() {
        // Consecutive tags under the same master must differ in many bits.
        for tag in 0..64u64 {
            let a = derive_stream_seed(1, tag);
            let b = derive_stream_seed(1, tag + 1);
            assert!((a ^ b).count_ones() > 10, "tags {tag}/{} too close", tag + 1);
        }
    }

    #[test]
    fn nearby_masters_decorrelate() {
        for m in 0..64u64 {
            let a = derive_stream_seed(m, 5);
            let b = derive_stream_seed(m + 1, 5);
            assert!((a ^ b).count_ones() > 10, "masters {m}/{} too close", m + 1);
        }
    }

    #[test]
    fn no_collisions_over_a_paper_scale_grid() {
        // 64 masters x 256 tags: all 16384 derived seeds distinct.
        let mut seen = std::collections::HashSet::new();
        for m in 0..64u64 {
            for t in 0..256u64 {
                assert!(seen.insert(derive_stream_seed(m, t)), "collision at ({m}, {t})");
            }
        }
    }
}
