//! Ready-made environments mirroring the paper's three evaluation venues
//! (Sec. V.A, Fig. 3).
//!
//! | Preset | Paper venue | Character |
//! |---|---|---|
//! | [`uji_hall_environment`] | UJI library floor 3 | wide-open hall, RP grid |
//! | [`office_environment`] | Office path (48 m) | new faculty offices, drywall |
//! | [`basement_environment`] | Basement path (61 m) | labs with heavy metallic equipment |
//!
//! The presets deliberately differ in wall materials, path-loss exponent and
//! noise magnitudes so the relative difficulty ordering of the paper's paths
//! (Basement noisier than Office; UJI open-space) is preserved. Lifecycle
//! schedules (AP removal) are *not* baked in here — the suite builders in
//! `stone-dataset` attach them because removal times are part of each
//! experiment's timeline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ap::{AccessPoint, ApId};
use crate::device::DeviceModel;
use crate::environment::{PropagationModel, RadioEnvironment};
use crate::floorplan::{Floorplan, Wall};
use crate::geom::{Point2, Rect, Segment};
use crate::lifecycle::ApSchedule;
use crate::temporal::TemporalModel;

/// Places `count` APs on a jittered grid over `bounds`, with transmit powers
/// spread around -40 dBm (expected RSSI at 1 m).
fn place_aps(bounds: Rect, count: usize, rng: &mut StdRng) -> Vec<AccessPoint> {
    assert!(count > 0, "need at least one AP");
    let cols = (count as f64).sqrt().ceil() as usize;
    let rows = count.div_ceil(cols);
    let dx = bounds.width() / cols as f64;
    let dy = bounds.height() / rows as f64;
    let mut aps = Vec::with_capacity(count);
    'outer: for r in 0..rows {
        for c in 0..cols {
            if aps.len() >= count {
                break 'outer;
            }
            let jx = rng.gen_range(-0.35..0.35) * dx;
            let jy = rng.gen_range(-0.35..0.35) * dy;
            let pos = Point2::new(
                bounds.min.x + (c as f64 + 0.5) * dx + jx,
                bounds.min.y + (r as f64 + 0.5) * dy + jy,
            );
            let tx = rng.gen_range(-44.0..-36.0);
            aps.push(AccessPoint::new(ApId(aps.len() as u32), pos, tx));
        }
    }
    aps
}

/// Evenly spaced interior partition walls perpendicular to a corridor.
fn corridor_partitions(
    length_m: f64,
    corridor_y: (f64, f64),
    depth_m: f64,
    spacing_m: f64,
    attenuation_db: f64,
) -> Vec<Wall> {
    let mut walls = Vec::new();
    // Corridor side walls.
    walls.push(Wall::new(
        Segment::new(Point2::new(0.0, corridor_y.0), Point2::new(length_m, corridor_y.0)),
        attenuation_db,
    ));
    walls.push(Wall::new(
        Segment::new(Point2::new(0.0, corridor_y.1), Point2::new(length_m, corridor_y.1)),
        attenuation_db,
    ));
    // Room partitions above and below the corridor.
    let mut x = spacing_m;
    while x < length_m {
        walls.push(Wall::new(
            Segment::new(Point2::new(x, corridor_y.1), Point2::new(x, corridor_y.1 + depth_m)),
            attenuation_db,
        ));
        walls.push(Wall::new(
            Segment::new(Point2::new(x, corridor_y.0 - depth_m), Point2::new(x, corridor_y.0)),
            attenuation_db,
        ));
        x += spacing_m;
    }
    walls
}

/// The UJI-like library hall: a 36 × 30 m open space with a few bookshelf
/// rows, ~96 APs (the real dataset sees hundreds of APs; we keep the image
/// side at 10 for single-core training speed — see `DESIGN.md`).
#[must_use]
pub fn uji_hall_environment(seed: u64) -> RadioEnvironment {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0011);
    let bounds = Rect::new(Point2::new(0.0, 0.0), Point2::new(36.0, 30.0));
    // Light bookshelf rows: low attenuation, mostly open space.
    let mut walls = Vec::new();
    for k in 0..3 {
        let y = 7.0 + k as f64 * 8.0;
        walls.push(Wall::new(Segment::new(Point2::new(6.0, y), Point2::new(30.0, y)), 1.5));
    }
    let plan = Floorplan::new("uji-hall", bounds, walls);
    let aps = place_aps(bounds, 96, &mut rng);
    RadioEnvironment::new(
        plan,
        aps,
        PropagationModel::open_indoor(),
        TemporalModel {
            drift_db: 5.5,
            drift_period_days: 60.0,
            diurnal_db: 2.0,
            fast_fading_db: 1.6,
            churn_slow_db: 4.5,
            churn_fast_db: 1.5,
            churn_cell_m: 4.0,
            warp_slow_m: 2.5,
            warp_fast_m: 0.4,
        },
        ApSchedule::none(),
        DeviceModel::lg_v20(),
        seed,
    )
}

/// The Office-like path: a 48 m corridor flanked by newly-built faculty
/// offices (drywall partitions), ~72 APs.
#[must_use]
pub fn office_environment(seed: u64) -> RadioEnvironment {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0FF1);
    let bounds = Rect::new(Point2::new(0.0, -6.0), Point2::new(48.0, 8.0));
    let walls = corridor_partitions(48.0, (0.0, 2.0), 5.0, 4.0, 3.5);
    let plan = Floorplan::new("office", bounds, walls);
    let aps = place_aps(bounds, 72, &mut rng);
    RadioEnvironment::new(
        plan,
        aps,
        PropagationModel { path_loss_exponent: 2.6, shadow_db: 3.0, shadow_cell_m: 4.0 },
        TemporalModel {
            drift_db: 4.5,
            drift_period_days: 40.0,
            diurnal_db: 3.0,
            fast_fading_db: 1.8,
            churn_slow_db: 4.0,
            churn_fast_db: 2.0,
            churn_cell_m: 3.0,
            warp_slow_m: 2.0,
            warp_fast_m: 0.6,
        },
        ApSchedule::none(),
        DeviceModel::lg_v20(),
        seed,
    )
}

/// The Basement-like path: a 61 m corridor surrounded by labs with heavy
/// metallic equipment — thicker walls, higher path-loss exponent, stronger
/// shadowing and fast fading, ~72 APs.
#[must_use]
pub fn basement_environment(seed: u64) -> RadioEnvironment {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA5E);
    let bounds = Rect::new(Point2::new(0.0, -7.0), Point2::new(61.0, 9.0));
    let walls = corridor_partitions(61.0, (0.0, 2.2), 6.0, 6.0, 8.0);
    let plan = Floorplan::new("basement", bounds, walls);
    let aps = place_aps(bounds, 72, &mut rng);
    RadioEnvironment::new(
        plan,
        aps,
        PropagationModel::cluttered(),
        TemporalModel {
            drift_db: 6.0,
            drift_period_days: 35.0,
            diurnal_db: 3.5,
            fast_fading_db: 2.4,
            churn_slow_db: 5.0,
            churn_fast_db: 2.5,
            churn_cell_m: 2.5,
            warp_slow_m: 2.5,
            warp_fast_m: 0.8,
        },
        ApSchedule::none(),
        DeviceModel::lg_v20(),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn presets_have_expected_ap_counts() {
        assert_eq!(uji_hall_environment(1).ap_count(), 96);
        assert_eq!(office_environment(1).ap_count(), 72);
        assert_eq!(basement_environment(1).ap_count(), 72);
    }

    #[test]
    fn aps_lie_within_bounds() {
        for env in [uji_hall_environment(2), office_environment(2), basement_environment(2)] {
            let b = env.floorplan().bounds();
            // Jitter is bounded by the cell size, so allow a half-cell slack.
            for ap in env.aps() {
                assert!(
                    ap.pos.x > b.min.x - 3.0
                        && ap.pos.x < b.max.x + 3.0
                        && ap.pos.y > b.min.y - 3.0
                        && ap.pos.y < b.max.y + 3.0,
                    "AP {} out of bounds at {}",
                    ap.id,
                    ap.pos
                );
            }
        }
    }

    #[test]
    fn scans_see_a_reasonable_ap_subset() {
        let env = office_environment(3);
        let mut rng = StdRng::seed_from_u64(1);
        let scan = env.scan(Point2::new(24.0, 1.0), SimTime::from_hours(8.0), &mut rng);
        let visible = scan.iter().flatten().count();
        assert!(
            visible >= 10 && visible < env.ap_count(),
            "visible {visible} of {}",
            env.ap_count()
        );
    }

    #[test]
    fn basement_is_noisier_than_office() {
        // Variance of repeated scans of the same AP should be larger in the
        // basement (higher fast fading).
        let sample_var = |env: &RadioEnvironment, pos: Point2| {
            let mut rng = StdRng::seed_from_u64(4);
            let idx = (0..env.ap_count())
                .find(|&i| env.channel_rssi_dbm(i, pos, SimTime::start(), &mut rng).is_some())
                .unwrap();
            let xs: Vec<f64> = (0..200)
                .filter_map(|_| env.channel_rssi_dbm(idx, pos, SimTime::start(), &mut rng))
                .collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / xs.len() as f64
        };
        let office = sample_var(&office_environment(5), Point2::new(10.0, 1.0));
        let basement = sample_var(&basement_environment(5), Point2::new(10.0, 1.0));
        assert!(basement > office, "basement {basement} vs office {office}");
    }

    #[test]
    fn different_seeds_shuffle_ap_layout() {
        let a = office_environment(1);
        let b = office_environment(2);
        assert_ne!(a.aps()[0].pos, b.aps()[0].pos);
    }
}
