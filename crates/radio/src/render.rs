//! ASCII floorplan rendering (the visual half of the paper's Fig. 3).

use crate::ap::AccessPoint;
use crate::floorplan::Floorplan;
use crate::geom::Point2;

/// Renders a floorplan with its APs and reference points as ASCII art:
/// `#` walls, `A` access points, `.` reference points.
///
/// `cols` is the raster width in characters; the aspect ratio is preserved
/// using a 2:1 character cell.
///
/// # Panics
///
/// Panics when `cols < 8`.
///
/// # Example
///
/// ```
/// use stone_radio::{presets, render_floorplan_ascii};
///
/// let env = presets::office_environment(1);
/// let art = render_floorplan_ascii(env.floorplan(), env.aps(), &[], 60);
/// assert!(art.contains('A'));
/// ```
#[must_use]
pub fn render_floorplan_ascii(
    plan: &Floorplan,
    aps: &[AccessPoint],
    rps: &[Point2],
    cols: usize,
) -> String {
    assert!(cols >= 8, "raster must be at least 8 columns");
    let b = plan.bounds();
    let sx = (cols - 1) as f64 / b.width().max(1e-9);
    // Terminal characters are ~2x taller than wide.
    let rows = ((b.height() * sx / 2.0).ceil() as usize).max(3);
    let sy = (rows - 1) as f64 / b.height().max(1e-9);

    let mut grid = vec![vec![' '; cols]; rows];
    let put = |p: Point2, ch: char, grid: &mut Vec<Vec<char>>| {
        let c = ((p.x - b.min.x) * sx).round() as isize;
        let r = ((p.y - b.min.y) * sy).round() as isize;
        if r >= 0 && (r as usize) < rows && c >= 0 && (c as usize) < cols {
            let cell = &mut grid[r as usize][c as usize];
            // Priority: APs > RPs > walls.
            let rank = |ch: char| match ch {
                'A' => 3,
                '.' => 2,
                '#' => 1,
                _ => 0,
            };
            if rank(ch) >= rank(*cell) {
                *cell = ch;
            }
        }
    };

    // Walls: sample each segment densely.
    for wall in plan.walls() {
        let len = wall.segment.length();
        let steps = ((len * sx) as usize).max(1);
        for k in 0..=steps {
            let t = k as f64 / steps as f64;
            put(wall.segment.a.lerp(wall.segment.b, t), '#', &mut grid);
        }
    }
    for &rp in rps {
        put(rp, '.', &mut grid);
    }
    for ap in aps {
        put(ap.pos, 'A', &mut grid);
    }

    let mut out = String::with_capacity((cols + 3) * (rows + 2));
    out.push('+');
    out.extend(std::iter::repeat_n('-', cols));
    out.push_str("+\n");
    // Render with y increasing upward, like the floorplan coordinates.
    for row in grid.iter().rev() {
        out.push('|');
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', cols));
    out.push_str("+\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn renders_all_feature_kinds() {
        let env = presets::basement_environment(1);
        let rps = vec![Point2::new(10.0, 1.0), Point2::new(20.0, 1.0)];
        let art = render_floorplan_ascii(env.floorplan(), env.aps(), &rps, 80);
        assert!(art.contains('A'), "missing APs");
        assert!(art.contains('#'), "missing walls");
        assert!(art.contains('.'), "missing RPs");
        assert!(art.starts_with('+'));
    }

    #[test]
    fn raster_width_is_respected() {
        let env = presets::office_environment(2);
        let art = render_floorplan_ascii(env.floorplan(), env.aps(), &[], 40);
        for line in art.lines() {
            assert_eq!(line.chars().count(), 42, "line: {line}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn rejects_tiny_raster() {
        let env = presets::office_environment(3);
        let _ = render_floorplan_ascii(env.floorplan(), env.aps(), &[], 4);
    }
}
