//! WiFi access points.

use crate::geom::Point2;

/// Stable identifier of a simulated access point within an environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ApId(pub u32);

impl std::fmt::Display for ApId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AP{:03}", self.0)
    }
}

/// A WiFi access point: position, transmit power and a per-AP salt that
/// decorrelates its shadowing/drift noise fields from other APs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccessPoint {
    /// Stable identifier.
    pub id: ApId,
    /// Position on the floorplan, in meters.
    pub pos: Point2,
    /// Effective transmit power expressed as the expected RSSI at 1 m, in
    /// dBm (typical hardware lands around -35 to -45 dBm).
    pub tx_power_dbm: f64,
    /// Noise-field salt; replacement hardware gets a fresh salt so its
    /// channel statistics change even at the same mount point.
    pub salt: u64,
}

impl AccessPoint {
    /// Creates an access point with a salt derived from its id.
    #[must_use]
    pub fn new(id: ApId, pos: Point2, tx_power_dbm: f64) -> Self {
        Self { id, pos, tx_power_dbm, salt: u64::from(id.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_pads_id() {
        assert_eq!(ApId(7).to_string(), "AP007");
        assert_eq!(ApId(123).to_string(), "AP123");
    }

    #[test]
    fn salts_differ_between_aps() {
        let a = AccessPoint::new(ApId(1), Point2::new(0.0, 0.0), -40.0);
        let b = AccessPoint::new(ApId(2), Point2::new(0.0, 0.0), -40.0);
        assert_ne!(a.salt, b.salt);
    }
}
