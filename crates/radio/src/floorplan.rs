//! Floorplans: bounds plus attenuating walls.

use crate::geom::{Point2, Rect, Segment};

/// A wall segment with a per-crossing attenuation, in dB.
///
/// Drywall partitions cost a few dB; the concrete/metal walls of the
/// paper's Basement path cost substantially more.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Wall {
    /// Wall geometry.
    pub segment: Segment,
    /// Signal attenuation per crossing, in dB (non-negative).
    pub attenuation_db: f64,
}

impl Wall {
    /// Creates a wall.
    ///
    /// # Panics
    ///
    /// Panics when `attenuation_db` is negative.
    #[must_use]
    pub fn new(segment: Segment, attenuation_db: f64) -> Self {
        assert!(attenuation_db >= 0.0, "wall attenuation must be non-negative");
        Self { segment, attenuation_db }
    }
}

/// A single-floor floorplan: named bounds and a set of attenuating walls.
///
/// # Example
///
/// ```
/// use stone_radio::{Floorplan, Point2, Rect, Segment, Wall};
///
/// let plan = Floorplan::new(
///     "demo",
///     Rect::new(Point2::new(0.0, 0.0), Point2::new(10.0, 10.0)),
///     vec![Wall::new(
///         Segment::new(Point2::new(5.0, 0.0), Point2::new(5.0, 10.0)),
///         6.0,
///     )],
/// );
/// let loss = plan.wall_loss_db(Point2::new(1.0, 5.0), Point2::new(9.0, 5.0));
/// assert_eq!(loss, 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Floorplan {
    name: String,
    bounds: Rect,
    walls: Vec<Wall>,
}

impl Floorplan {
    /// Creates a floorplan.
    #[must_use]
    pub fn new(name: impl Into<String>, bounds: Rect, walls: Vec<Wall>) -> Self {
        Self { name: name.into(), bounds, walls }
    }

    /// Human-readable floorplan name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Floorplan bounds.
    #[must_use]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The walls.
    #[must_use]
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Total wall attenuation along the line-of-sight from `tx` to `rx`, in
    /// dB (the multi-wall propagation term).
    #[must_use]
    pub fn wall_loss_db(&self, tx: Point2, rx: Point2) -> f64 {
        let los = Segment::new(tx, rx);
        self.walls.iter().filter(|w| w.segment.intersects(&los)).map(|w| w.attenuation_db).sum()
    }

    /// Number of walls crossed by the line-of-sight from `tx` to `rx`.
    #[must_use]
    pub fn walls_crossed(&self, tx: Point2, rx: Point2) -> usize {
        let los = Segment::new(tx, rx);
        self.walls.iter().filter(|w| w.segment.intersects(&los)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_with_two_walls() -> Floorplan {
        Floorplan::new(
            "t",
            Rect::new(Point2::new(0.0, 0.0), Point2::new(20.0, 10.0)),
            vec![
                Wall::new(Segment::new(Point2::new(5.0, 0.0), Point2::new(5.0, 10.0)), 3.0),
                Wall::new(Segment::new(Point2::new(10.0, 0.0), Point2::new(10.0, 10.0)), 7.0),
            ],
        )
    }

    #[test]
    fn no_walls_no_loss() {
        let plan = plan_with_two_walls();
        assert_eq!(plan.wall_loss_db(Point2::new(1.0, 1.0), Point2::new(4.0, 9.0)), 0.0);
    }

    #[test]
    fn crossing_both_walls_sums_losses() {
        let plan = plan_with_two_walls();
        let loss = plan.wall_loss_db(Point2::new(1.0, 5.0), Point2::new(19.0, 5.0));
        assert_eq!(loss, 10.0);
        assert_eq!(plan.walls_crossed(Point2::new(1.0, 5.0), Point2::new(19.0, 5.0)), 2);
    }

    #[test]
    fn crossing_one_wall() {
        let plan = plan_with_two_walls();
        let loss = plan.wall_loss_db(Point2::new(1.0, 5.0), Point2::new(7.0, 5.0));
        assert_eq!(loss, 3.0);
    }

    #[test]
    fn parallel_path_misses_walls() {
        let plan = plan_with_two_walls();
        // Path along y = const but between x = 5 and x = 10 walls.
        let loss = plan.wall_loss_db(Point2::new(6.0, 1.0), Point2::new(9.0, 9.0));
        assert_eq!(loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_attenuation_rejected() {
        let _ = Wall::new(Segment::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)), -1.0);
    }
}
