//! Temporal variation of the radio channel.
//!
//! The paper's central observation (Sec. I, V.B) is that RSSI fingerprints
//! drift at *every* temporal granularity: hours (human activity), days, and
//! months (environmental/infrastructure change). This module models:
//!
//! * **slow drift** — a smooth per-AP process over weeks/months built from
//!   1-D value noise (deterministic per seed);
//! * **diurnal attenuation** — a human-activity curve peaking mid-day
//!   scaled by a per-AP sensitivity, so 8 AM / 3 PM / 9 PM scans differ the
//!   way the paper's CI 0–2 do;
//! * **fast fading** — i.i.d. Gaussian measurement noise drawn from the
//!   caller's RNG.

use rand::rngs::StdRng;

use crate::geom::Point2;
use crate::shadowing::{lattice_value, splitmix64, value_noise_1d, value_noise_3d};
use crate::time::SimTime;

/// Parameters of the temporal channel model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TemporalModel {
    /// Standard scale of the slow per-AP drift, in dB (peak amplitude).
    pub drift_db: f64,
    /// Correlation length of the slow drift, in days.
    pub drift_period_days: f64,
    /// Peak extra attenuation from mid-day human activity, in dB.
    pub diurnal_db: f64,
    /// Standard deviation of fast per-measurement fading, in dB.
    pub fast_fading_db: f64,
    /// Amplitude of slow *environment churn*, in dB: the shadowing field
    /// itself changing over weeks/months (furniture, equipment, materials —
    /// the paper's Sec. I list). Spatially local, unlike `drift_db`.
    pub churn_slow_db: f64,
    /// Amplitude of fast environment churn, in dB: hour-scale local changes
    /// (people, doors). Drives the paper's CI0→CI1 degradation.
    pub churn_fast_db: f64,
    /// Spatial correlation length of the churn fields, in meters.
    pub churn_cell_m: f64,
    /// Amplitude of the slow *apparent-position warp*, in meters: as
    /// multipath conditions change over weeks/months, the spatial pattern of
    /// each AP's signal shifts as if the AP had moved. This is the mechanism
    /// that actually relocates nearest-neighbour matches (and hence causes
    /// the month-scale accuracy loss the paper documents).
    pub warp_slow_m: f64,
    /// Amplitude of the fast (hour-scale) apparent-position warp, in meters
    /// — doors, crowds; drives the paper's CI0→CI1 jump.
    pub warp_fast_m: f64,
}

impl TemporalModel {
    /// Correlation time of the slow churn field, in hours (≈2 weeks).
    pub const SLOW_CHURN_HOURS: f64 = 14.0 * 24.0;
    /// Correlation time of the fast churn field, in hours.
    pub const FAST_CHURN_HOURS: f64 = 7.0;

    /// A model with typical office-building magnitudes.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            drift_db: 5.0,
            drift_period_days: 45.0,
            diurnal_db: 3.0,
            fast_fading_db: 1.8,
            churn_slow_db: 4.0,
            churn_fast_db: 2.0,
            churn_cell_m: 3.0,
            warp_slow_m: 2.0,
            warp_fast_m: 0.5,
        }
    }

    /// A quiet environment (little drift; useful for unit tests).
    #[must_use]
    pub fn quiet() -> Self {
        Self {
            drift_db: 0.0,
            drift_period_days: 45.0,
            diurnal_db: 0.0,
            fast_fading_db: 0.0,
            churn_slow_db: 0.0,
            churn_fast_db: 0.0,
            churn_cell_m: 3.0,
            warp_slow_m: 0.0,
            warp_fast_m: 0.0,
        }
    }

    /// Apparent-position offset of an AP at time `t`, in meters.
    ///
    /// Deterministic in `(seed, ap_salt, t)`; zero at `t = 0` is *not*
    /// guaranteed (the reference survey simply samples the field at its own
    /// time), but the *difference* between survey time and query time is
    /// what displaces fingerprint matches.
    #[must_use]
    pub fn warp_offset_m(&self, seed: u64, ap_salt: u64, t: SimTime) -> (f64, f64) {
        let mut wx = 0.0;
        let mut wy = 0.0;
        if self.warp_slow_m != 0.0 {
            let days = t.days();
            wx += self.warp_slow_m
                * value_noise_1d(seed ^ 0x3A12, ap_salt, days, self.drift_period_days);
            wy += self.warp_slow_m
                * value_noise_1d(seed ^ 0x3A13, ap_salt, days, self.drift_period_days);
        }
        if self.warp_fast_m != 0.0 {
            let hours = t.hours();
            wx += self.warp_fast_m
                * value_noise_1d(seed ^ 0x3A14, ap_salt, hours, Self::FAST_CHURN_HOURS);
            wy += self.warp_fast_m
                * value_noise_1d(seed ^ 0x3A15, ap_salt, hours, Self::FAST_CHURN_HOURS);
        }
        (wx, wy)
    }

    /// Spatially-local churn offset of the channel between an AP and a
    /// receiver position, in dB. Deterministic in
    /// `(seed, ap_salt, pos, t)`; evolves over hours (fast field) and weeks
    /// (slow field).
    #[must_use]
    pub fn churn_offset_db(&self, seed: u64, ap_salt: u64, pos: Point2, t: SimTime) -> f64 {
        let mut v = 0.0;
        if self.churn_slow_db != 0.0 {
            v += self.churn_slow_db
                * value_noise_3d(
                    seed ^ 0x51_0C,
                    ap_salt,
                    pos.x,
                    pos.y,
                    t.hours(),
                    self.churn_cell_m,
                    Self::SLOW_CHURN_HOURS,
                );
        }
        if self.churn_fast_db != 0.0 {
            v += self.churn_fast_db
                * value_noise_3d(
                    seed ^ 0xFA_57,
                    ap_salt,
                    pos.x,
                    pos.y,
                    t.hours(),
                    self.churn_cell_m,
                    Self::FAST_CHURN_HOURS,
                );
        }
        v
    }

    /// Human-activity factor in `[0, 1]` for a given hour of day: near zero
    /// at night, peaking in the early afternoon.
    #[must_use]
    pub fn activity_factor(hour_of_day: f64) -> f64 {
        // Smooth bump centered at 14:00 with ~12 h support.
        let x = (hour_of_day - 14.0) / 6.0;
        (-x * x).exp()
    }

    /// Slow drift offset for an AP at time `t`, in dB. Deterministic in
    /// `(seed, ap_salt, t)`.
    #[must_use]
    pub fn drift_offset_db(&self, seed: u64, ap_salt: u64, t: SimTime) -> f64 {
        if self.drift_db == 0.0 {
            return 0.0;
        }
        // Two octaves of 1-D value noise for a less sinusoidal trajectory.
        let days = t.days();
        let base = value_noise_1d(seed ^ 0xD1F7, ap_salt, days, self.drift_period_days);
        let fine = value_noise_1d(seed ^ 0x5EED, ap_salt, days, self.drift_period_days / 3.0);
        self.drift_db * (0.75 * base + 0.25 * fine)
    }

    /// Diurnal attenuation for an AP at time `t`, in dB (non-positive
    /// contribution to RSSI). Each AP has a hash-derived sensitivity in
    /// `[0.3, 1.0]` — APs in busy corridors suffer more than ones in closets.
    #[must_use]
    pub fn diurnal_attenuation_db(&self, seed: u64, ap_salt: u64, t: SimTime) -> f64 {
        if self.diurnal_db == 0.0 {
            return 0.0;
        }
        let sensitivity = 0.3
            + 0.7 * ((splitmix64(seed ^ ap_salt ^ 0xD1A1_0C01) >> 11) as f64 / (1u64 << 53) as f64);
        self.diurnal_db * sensitivity * Self::activity_factor(t.hour_of_day())
    }

    /// Fast per-measurement fading sample, in dB.
    #[must_use]
    pub fn fast_fading_db(&self, rng: &mut StdRng) -> f64 {
        if self.fast_fading_db == 0.0 {
            return 0.0;
        }
        f64::from(stone_sample_normal(rng)) * self.fast_fading_db
    }

    /// Extra lattice-derived static offset distinguishing one AP's average
    /// behaviour from another's (hardware spread), in dB.
    #[must_use]
    pub fn hardware_offset_db(seed: u64, ap_salt: u64) -> f64 {
        2.0 * lattice_value(seed ^ 0x4A5D_0FF5, ap_salt, 1, 1)
    }
}

/// One standard-normal sample via Box-Muller on the caller's RNG.
fn stone_sample_normal(rng: &mut StdRng) -> f32 {
    use rand::Rng;
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn activity_peaks_midday() {
        let morning = TemporalModel::activity_factor(8.0);
        let midday = TemporalModel::activity_factor(14.0);
        let night = TemporalModel::activity_factor(2.0);
        assert!(midday > morning && morning > night);
        assert!((midday - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quiet_model_is_silent() {
        let m = TemporalModel::quiet();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.drift_offset_db(1, 2, SimTime::from_months(3.0)), 0.0);
        assert_eq!(m.diurnal_attenuation_db(1, 2, SimTime::from_hours(14.0)), 0.0);
        assert_eq!(m.fast_fading_db(&mut rng), 0.0);
    }

    #[test]
    fn drift_is_smooth_and_bounded() {
        let m = TemporalModel::typical();
        let mut prev = m.drift_offset_db(7, 1, SimTime::start());
        for k in 1..2000 {
            let t = SimTime::from_hours(k as f64 * 6.0);
            let v = m.drift_offset_db(7, 1, t);
            assert!(v.abs() <= m.drift_db + 1e-9);
            assert!((v - prev).abs() < 0.6, "drift jumped at {t}");
            prev = v;
        }
    }

    #[test]
    fn drift_changes_over_months() {
        let m = TemporalModel::typical();
        let v0 = m.drift_offset_db(7, 1, SimTime::start());
        let deltas: f64 = (1..=8)
            .map(|mo| (m.drift_offset_db(7, 1, SimTime::from_months(mo as f64)) - v0).abs())
            .sum();
        assert!(deltas > 1.0, "drift too small over 8 months: {deltas}");
    }

    #[test]
    fn drift_differs_across_aps() {
        let m = TemporalModel::typical();
        let t = SimTime::from_months(2.0);
        assert_ne!(m.drift_offset_db(7, 1, t), m.drift_offset_db(7, 2, t));
    }

    #[test]
    fn diurnal_attenuation_nonnegative_and_peaked() {
        let m = TemporalModel::typical();
        let am = m.diurnal_attenuation_db(3, 5, SimTime::from_hours(8.0));
        let noonish = m.diurnal_attenuation_db(3, 5, SimTime::from_hours(15.0));
        let night = m.diurnal_attenuation_db(3, 5, SimTime::from_hours(21.0 - 24.0 + 24.0));
        assert!(am >= 0.0 && noonish >= 0.0 && night >= 0.0);
        assert!(noonish > am && am > night);
    }

    #[test]
    fn churn_changes_fingerprints_over_hours() {
        let m = TemporalModel::typical();
        let p = Point2::new(5.0, 1.0);
        let a = m.churn_offset_db(1, 2, p, SimTime::from_hours(8.0));
        let b = m.churn_offset_db(1, 2, p, SimTime::from_hours(15.0));
        // 7 hours later the fast field has largely decorrelated.
        assert_ne!(a, b);
        // And it is deterministic.
        assert_eq!(a, m.churn_offset_db(1, 2, p, SimTime::from_hours(8.0)));
    }

    #[test]
    fn churn_is_spatially_local() {
        let m = TemporalModel::typical();
        let t = SimTime::from_hours(8.0);
        let near = (m.churn_offset_db(1, 2, Point2::new(5.0, 1.0), t)
            - m.churn_offset_db(1, 2, Point2::new(5.2, 1.0), t))
        .abs();
        // Nearby points move together; the field must not be i.i.d. noise.
        assert!(near < 1.5, "churn not spatially correlated: {near}");
    }

    #[test]
    fn quiet_model_has_no_churn() {
        let m = TemporalModel::quiet();
        assert_eq!(m.churn_offset_db(1, 2, Point2::new(3.0, 3.0), SimTime::from_months(2.0)), 0.0);
    }

    #[test]
    fn fast_fading_has_configured_scale() {
        let m = TemporalModel::typical();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.fast_fading_db(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05);
        assert!((var.sqrt() - 1.8).abs() < 0.1);
    }
}
