//! Mobile-device measurement model.

/// Measurement characteristics of the scanning device (the paper used an LG
/// V20 smartphone): detection threshold, a constant chipset offset, and
/// integer-dBm quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceModel {
    /// RSSI below this threshold is not reported at all (the AP is missing
    /// from the scan), in dBm.
    pub detection_threshold_dbm: f64,
    /// Constant chipset gain offset added to every reading, in dB.
    pub offset_db: f64,
    /// Quantize readings to whole dBm (real WiFi chipsets report integers).
    pub quantize: bool,
}

impl DeviceModel {
    /// An LG-V20-like smartphone model.
    #[must_use]
    pub fn lg_v20() -> Self {
        Self { detection_threshold_dbm: -94.0, offset_db: 0.0, quantize: true }
    }

    /// An ideal measurement device: no threshold, offset or quantization
    /// (useful for unit-testing the propagation core).
    #[must_use]
    pub fn ideal() -> Self {
        Self { detection_threshold_dbm: -1000.0, offset_db: 0.0, quantize: false }
    }

    /// Applies the device model to a true channel RSSI.
    ///
    /// Returns `None` when the signal falls below the detection threshold;
    /// otherwise the reported value clamped into `[-100, 0]` dBm.
    #[must_use]
    pub fn observe(&self, true_rssi_dbm: f64) -> Option<f64> {
        let mut v = true_rssi_dbm + self.offset_db;
        if v < self.detection_threshold_dbm {
            return None;
        }
        if self.quantize {
            v = v.round();
        }
        Some(v.clamp(-100.0, 0.0))
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        Self::lg_v20()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_is_missing() {
        let d = DeviceModel::lg_v20();
        assert_eq!(d.observe(-95.0), None);
        assert!(d.observe(-93.0).is_some());
    }

    #[test]
    fn quantizes_to_integer_dbm() {
        let d = DeviceModel::lg_v20();
        assert_eq!(d.observe(-60.4), Some(-60.0));
        assert_eq!(d.observe(-60.6), Some(-61.0));
    }

    #[test]
    fn offset_shifts_reading() {
        let d = DeviceModel { offset_db: -3.0, ..DeviceModel::lg_v20() };
        assert_eq!(d.observe(-60.0), Some(-63.0));
    }

    #[test]
    fn clamps_to_valid_range() {
        let d = DeviceModel::ideal();
        assert_eq!(d.observe(5.0), Some(0.0));
        assert_eq!(d.observe(-150.0), Some(-100.0));
    }
}
