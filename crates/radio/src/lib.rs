//! # stone-radio
//!
//! An indoor WiFi radio-propagation simulator that stands in for the
//! physical buildings and the public UJI dataset used by the STONE paper
//! (DATE 2022), which are not available to this reproduction (see the
//! substitution table in `DESIGN.md`).
//!
//! The simulator models exactly the mechanisms the paper's evaluation
//! depends on:
//!
//! * **log-distance path loss with multi-wall attenuation** —
//!   [`PropagationModel`] plus [`Floorplan`] wall crossings;
//! * **spatially-correlated shadow fading** — a deterministic value-noise
//!   field per access point ([`shadowing`]);
//! * **temporal variation** — per-AP slow drift across months, a diurnal
//!   human-activity curve, and fast per-measurement fading
//!   ([`TemporalModel`]);
//! * **AP ephemerality** — removal/replacement schedules ([`ApSchedule`]),
//!   the paper's Fig. 4 phenomenon;
//! * **device effects** — detection threshold, RSSI offset, and dBm
//!   quantization ([`DeviceModel`]), mimicking the LG V20 used by the
//!   authors.
//!
//! All stochastic spatial/temporal structure is a pure function of the
//! environment seed, so two scans at the same position and time (with
//! identical sampling RNG state) observe identical channels.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use stone_radio::{presets, Point2, SimTime};
//!
//! let env = presets::office_environment(42);
//! let mut rng = StdRng::seed_from_u64(1);
//! let scan = env.scan(Point2::new(5.0, 1.0), SimTime::from_hours(8.0), &mut rng);
//! assert_eq!(scan.len(), env.ap_count());
//! assert!(scan.iter().flatten().all(|&rssi| (-100.0..=0.0).contains(&rssi)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ap;
mod device;
mod environment;
mod floorplan;
mod geom;
mod lifecycle;
pub mod presets;
mod render;
mod seed;
pub mod shadowing;
mod temporal;
mod time;

pub use ap::{AccessPoint, ApId};
pub use device::DeviceModel;
pub use environment::{PropagationModel, RadioEnvironment};
pub use floorplan::{Floorplan, Wall};
pub use geom::{Point2, Rect, Segment};
pub use lifecycle::{ApEvent, ApSchedule};
pub use render::render_floorplan_ascii;
pub use seed::derive_stream_seed;
pub use temporal::TemporalModel;
pub use time::SimTime;
