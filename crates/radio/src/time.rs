//! Simulation time.

/// A point in simulated time, measured in hours since the start of the
/// deployment (the first fingerprint collection).
///
/// Months follow the paper's convention of ≈30-day spacing between the
/// monthly collection instances.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime {
    hours: f64,
}

impl SimTime {
    /// Hours per simulated day.
    pub const HOURS_PER_DAY: f64 = 24.0;
    /// Days per simulated month (paper: monthly CIs ≈30 days apart).
    pub const DAYS_PER_MONTH: f64 = 30.0;

    /// Time zero: the first offline collection.
    #[must_use]
    pub fn start() -> Self {
        Self { hours: 0.0 }
    }

    /// Creates a time from hours since deployment.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        assert!(hours.is_finite() && hours >= 0.0, "time must be finite and non-negative");
        Self { hours }
    }

    /// Creates a time from whole days since deployment.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Self::from_hours(days * Self::HOURS_PER_DAY)
    }

    /// Creates a time from months since deployment (30-day months).
    #[must_use]
    pub fn from_months(months: f64) -> Self {
        Self::from_days(months * Self::DAYS_PER_MONTH)
    }

    /// Hours since deployment.
    #[must_use]
    pub fn hours(&self) -> f64 {
        self.hours
    }

    /// Days since deployment.
    #[must_use]
    pub fn days(&self) -> f64 {
        self.hours / Self::HOURS_PER_DAY
    }

    /// Months since deployment (30-day months).
    #[must_use]
    pub fn months(&self) -> f64 {
        self.days() / Self::DAYS_PER_MONTH
    }

    /// Hour of the (24-hour) day in `[0, 24)`, for diurnal effects.
    #[must_use]
    pub fn hour_of_day(&self) -> f64 {
        self.hours.rem_euclid(Self::HOURS_PER_DAY)
    }

    /// Returns this time advanced by `hours`.
    #[must_use]
    pub fn plus_hours(&self, hours: f64) -> Self {
        Self::from_hours(self.hours + hours)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.hours < Self::HOURS_PER_DAY {
            write!(f, "{:.1} h", self.hours)
        } else if self.days() < Self::DAYS_PER_MONTH {
            write!(f, "{:.1} d", self.days())
        } else {
            write!(f, "{:.1} mo", self.months())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_months(2.0);
        assert_eq!(t.days(), 60.0);
        assert_eq!(t.hours(), 1440.0);
        assert_eq!(SimTime::from_days(1.5).hours(), 36.0);
    }

    #[test]
    fn hour_of_day_wraps() {
        assert_eq!(SimTime::from_hours(8.0).hour_of_day(), 8.0);
        assert_eq!(SimTime::from_hours(24.0 + 15.0).hour_of_day(), 15.0);
        assert_eq!(SimTime::from_days(45.0).hour_of_day(), 0.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_hours(6.0).to_string(), "6.0 h");
        assert_eq!(SimTime::from_days(3.0).to_string(), "3.0 d");
        assert_eq!(SimTime::from_months(8.0).to_string(), "8.0 mo");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_hours(-1.0);
    }
}
