//! Access-point lifecycle: removal and replacement over time.
//!
//! The paper highlights AP ephemerality as the dominant cause of
//! catastrophic long-term accuracy loss: ~20% of APs vanish after CI 11 on
//! the Office/Basement paths and ~50% around month 11 in the UJI dataset
//! (Sec. V.A, Fig. 4). [`ApSchedule`] reproduces both patterns.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::ap::ApId;
use crate::time::SimTime;

/// A lifecycle event for one access point.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ApEvent {
    /// The AP disappears permanently at the given time.
    Removed {
        /// Affected AP.
        ap: ApId,
        /// Removal time.
        at: SimTime,
    },
    /// The AP is swapped for new hardware at the same mount point: its
    /// channel statistics change (new noise salt, transmit-power delta).
    Replaced {
        /// Affected AP.
        ap: ApId,
        /// Replacement time.
        at: SimTime,
        /// New salt for the replacement unit's noise fields.
        new_salt: u64,
        /// Transmit-power change of the replacement unit, in dB.
        tx_delta_db: f64,
    },
}

impl ApEvent {
    /// The AP this event affects.
    #[must_use]
    pub fn ap(&self) -> ApId {
        match self {
            ApEvent::Removed { ap, .. } | ApEvent::Replaced { ap, .. } => *ap,
        }
    }

    /// The time at which the event takes effect.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            ApEvent::Removed { at, .. } | ApEvent::Replaced { at, .. } => *at,
        }
    }
}

/// A schedule of AP lifecycle events.
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use stone_radio::{ApId, ApSchedule, SimTime};
///
/// let aps: Vec<ApId> = (0..10).map(ApId).collect();
/// let mut rng = StdRng::seed_from_u64(0);
/// let sched = ApSchedule::mass_removal(&aps, 0.5, SimTime::from_months(11.0), &mut rng);
/// let survivors = aps
///     .iter()
///     .filter(|&&ap| sched.is_active(ap, SimTime::from_months(12.0)))
///     .count();
/// assert_eq!(survivors, 5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ApSchedule {
    events: Vec<ApEvent>,
}

impl ApSchedule {
    /// An empty schedule: every AP stays up forever.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Creates a schedule from explicit events.
    #[must_use]
    pub fn from_events(events: Vec<ApEvent>) -> Self {
        Self { events }
    }

    /// Removes a uniformly random `fraction` of `aps` at time `at`
    /// (rounded to the nearest AP count).
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn mass_removal<R: Rng>(aps: &[ApId], fraction: f64, at: SimTime, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        let k = (aps.len() as f64 * fraction).round() as usize;
        let mut pool: Vec<ApId> = aps.to_vec();
        pool.shuffle(rng);
        let events = pool.into_iter().take(k).map(|ap| ApEvent::Removed { ap, at }).collect();
        Self { events }
    }

    /// Adds scattered replacement events: each AP independently gets
    /// replaced with probability `per_ap_probability` at a uniformly random
    /// time in `[earliest, latest]`.
    ///
    /// # Panics
    ///
    /// Panics when the probability is outside `[0, 1]` or
    /// `earliest > latest`.
    pub fn add_scattered_replacements<R: Rng>(
        &mut self,
        aps: &[ApId],
        per_ap_probability: f64,
        earliest: SimTime,
        latest: SimTime,
        rng: &mut R,
    ) {
        assert!((0.0..=1.0).contains(&per_ap_probability), "probability must be in [0, 1]");
        assert!(earliest.hours() <= latest.hours(), "earliest must be <= latest");
        for &ap in aps {
            if rng.gen::<f64>() < per_ap_probability {
                let at = SimTime::from_hours(rng.gen_range(earliest.hours()..=latest.hours()));
                self.events.push(ApEvent::Replaced {
                    ap,
                    at,
                    new_salt: rng.gen(),
                    tx_delta_db: rng.gen_range(-4.0..4.0),
                });
            }
        }
    }

    /// All events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[ApEvent] {
        &self.events
    }

    /// Returns `true` when the AP is transmitting at time `t` (i.e. not yet
    /// removed).
    #[must_use]
    pub fn is_active(&self, ap: ApId, t: SimTime) -> bool {
        !self.events.iter().any(
            |e| matches!(e, ApEvent::Removed { ap: a, at } if *a == ap && at.hours() <= t.hours()),
        )
    }

    /// Effective (salt, tx-power delta) of the AP at time `t`, accounting
    /// for any replacement that has already happened.
    #[must_use]
    pub fn effective_unit(&self, ap: ApId, base_salt: u64, t: SimTime) -> (u64, f64) {
        let mut salt = base_salt;
        let mut delta = 0.0;
        let mut best: Option<SimTime> = None;
        for e in &self.events {
            if let ApEvent::Replaced { ap: a, at, new_salt, tx_delta_db } = e {
                if *a == ap
                    && at.hours() <= t.hours()
                    && best.is_none_or(|b| at.hours() > b.hours())
                {
                    best = Some(*at);
                    salt = *new_salt;
                    delta = *tx_delta_db;
                }
            }
        }
        (salt, delta)
    }

    /// Fraction of `aps` active at time `t`.
    #[must_use]
    pub fn active_fraction(&self, aps: &[ApId], t: SimTime) -> f64 {
        if aps.is_empty() {
            return 1.0;
        }
        let active = aps.iter().filter(|&&ap| self.is_active(ap, t)).count();
        active as f64 / aps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn aps(n: u32) -> Vec<ApId> {
        (0..n).map(ApId).collect()
    }

    #[test]
    fn empty_schedule_keeps_everything() {
        let s = ApSchedule::none();
        assert!(s.is_active(ApId(3), SimTime::from_months(100.0)));
        assert_eq!(s.active_fraction(&aps(5), SimTime::from_months(100.0)), 1.0);
    }

    #[test]
    fn removal_takes_effect_at_time() {
        let s = ApSchedule::from_events(vec![ApEvent::Removed {
            ap: ApId(1),
            at: SimTime::from_months(4.0),
        }]);
        assert!(s.is_active(ApId(1), SimTime::from_months(3.9)));
        assert!(!s.is_active(ApId(1), SimTime::from_months(4.0)));
        assert!(s.is_active(ApId(2), SimTime::from_months(5.0)));
    }

    #[test]
    fn mass_removal_removes_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(1);
        let all = aps(40);
        let s = ApSchedule::mass_removal(&all, 0.2, SimTime::from_months(4.0), &mut rng);
        let before = s.active_fraction(&all, SimTime::from_months(3.0));
        let after = s.active_fraction(&all, SimTime::from_months(4.5));
        assert_eq!(before, 1.0);
        assert!((after - 0.8).abs() < 1e-9);
    }

    #[test]
    fn replacement_changes_salt_after_event() {
        let s = ApSchedule::from_events(vec![ApEvent::Replaced {
            ap: ApId(0),
            at: SimTime::from_months(2.0),
            new_salt: 999,
            tx_delta_db: -2.0,
        }]);
        let (salt_before, d_before) = s.effective_unit(ApId(0), 5, SimTime::from_months(1.0));
        let (salt_after, d_after) = s.effective_unit(ApId(0), 5, SimTime::from_months(3.0));
        assert_eq!((salt_before, d_before), (5, 0.0));
        assert_eq!((salt_after, d_after), (999, -2.0));
        // Replacement does not deactivate the AP.
        assert!(s.is_active(ApId(0), SimTime::from_months(3.0)));
    }

    #[test]
    fn latest_replacement_wins() {
        let s = ApSchedule::from_events(vec![
            ApEvent::Replaced {
                ap: ApId(0),
                at: SimTime::from_months(1.0),
                new_salt: 111,
                tx_delta_db: 1.0,
            },
            ApEvent::Replaced {
                ap: ApId(0),
                at: SimTime::from_months(2.0),
                new_salt: 222,
                tx_delta_db: 2.0,
            },
        ]);
        let (salt, delta) = s.effective_unit(ApId(0), 5, SimTime::from_months(3.0));
        assert_eq!((salt, delta), (222, 2.0));
    }

    #[test]
    fn scattered_replacements_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let all = aps(500);
        let mut s = ApSchedule::none();
        s.add_scattered_replacements(
            &all,
            0.3,
            SimTime::from_months(1.0),
            SimTime::from_months(6.0),
            &mut rng,
        );
        let frac = s.events().len() as f64 / all.len() as f64;
        assert!((frac - 0.3).abs() < 0.06, "got {frac}");
        for e in s.events() {
            let at = e.at();
            assert!(at.months() >= 1.0 && at.months() <= 6.0);
        }
    }
}
