//! Deterministic value-noise fields.
//!
//! Shadow fading in indoor radio channels is *spatially correlated*: nearby
//! positions see similar obstructions. We model it as bilinear value noise —
//! a lattice of hash-derived uniform values, interpolated between lattice
//! points — which gives smooth, reproducible fields that are pure functions
//! of `(seed, salt, position)`. The same machinery (in one dimension)
//! produces the slow per-AP temporal drift.

/// SplitMix64 — a tiny, high-quality 64-bit mixer used to derive lattice
/// noise deterministically.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `[-1, 1]` derived from a seed and lattice coordinates.
#[must_use]
pub fn lattice_value(seed: u64, salt: u64, ix: i64, iy: i64) -> f64 {
    let h = splitmix64(
        seed ^ salt.rotate_left(17)
            ^ (ix as u64).wrapping_mul(0x8530_9B5B_4F2B_2511)
            ^ (iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    );
    // Map the top 53 bits to [0, 1), then to [-1, 1].
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Smooth 2-D value noise in `[-1, 1]` with correlation length `cell`
/// (meters): positions within a cell are strongly correlated, positions many
/// cells apart are independent.
///
/// # Panics
///
/// Panics when `cell` is not strictly positive.
///
/// # Example
///
/// ```
/// let a = stone_radio::shadowing::value_noise_2d(7, 1, 3.0, 4.0, 4.0);
/// let b = stone_radio::shadowing::value_noise_2d(7, 1, 3.0, 4.0, 4.0);
/// assert_eq!(a, b); // pure function of its arguments
/// ```
#[must_use]
pub fn value_noise_2d(seed: u64, salt: u64, x: f64, y: f64, cell: f64) -> f64 {
    assert!(cell > 0.0, "noise cell size must be positive");
    let gx = x / cell;
    let gy = y / cell;
    let ix = gx.floor() as i64;
    let iy = gy.floor() as i64;
    let fx = smoothstep(gx - ix as f64);
    let fy = smoothstep(gy - iy as f64);
    let v00 = lattice_value(seed, salt, ix, iy);
    let v10 = lattice_value(seed, salt, ix + 1, iy);
    let v01 = lattice_value(seed, salt, ix, iy + 1);
    let v11 = lattice_value(seed, salt, ix + 1, iy + 1);
    let top = v00 + (v10 - v00) * fx;
    let bot = v01 + (v11 - v01) * fx;
    top + (bot - top) * fy
}

/// Smooth 3-D value noise in `[-1, 1]`: two spatial axes with correlation
/// length `cell` (meters) and one temporal axis with correlation length
/// `t_cell` (hours). This models *environment churn*: the shadowing field
/// itself changing over time as people, furniture and doors move — the
/// paper's core source of fingerprint degradation.
///
/// # Panics
///
/// Panics when `cell` or `t_cell` is not strictly positive.
#[must_use]
pub fn value_noise_3d(seed: u64, salt: u64, x: f64, y: f64, t: f64, cell: f64, t_cell: f64) -> f64 {
    assert!(cell > 0.0, "noise cell size must be positive");
    assert!(t_cell > 0.0, "noise time-cell size must be positive");
    let gt = t / t_cell;
    let it = gt.floor() as i64;
    let ft = smoothstep(gt - it as f64);
    // Two 2-D slices at consecutive time cells, interpolated in time. The
    // time index is folded into the salt so slices are independent fields.
    let s0 = salt ^ (it as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    let s1 = salt ^ ((it + 1) as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    let v0 = value_noise_2d(seed, s0, x, y, cell);
    let v1 = value_noise_2d(seed, s1, x, y, cell);
    v0 + (v1 - v0) * ft
}

/// Smooth 1-D value noise in `[-1, 1]` with correlation length `cell` (in
/// the caller's time unit). Used for slow per-AP temporal drift.
///
/// # Panics
///
/// Panics when `cell` is not strictly positive.
#[must_use]
pub fn value_noise_1d(seed: u64, salt: u64, t: f64, cell: f64) -> f64 {
    assert!(cell > 0.0, "noise cell size must be positive");
    let g = t / cell;
    let i = g.floor() as i64;
    let f = smoothstep(g - i as f64);
    let v0 = lattice_value(seed, salt, i, 0);
    let v1 = lattice_value(seed, salt, i + 1, 0);
    v0 + (v1 - v0) * f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_values_bounded_and_deterministic() {
        for i in 0..100 {
            let v = lattice_value(1, 2, i, -i);
            assert!((-1.0..=1.0).contains(&v));
            assert_eq!(v, lattice_value(1, 2, i, -i));
        }
    }

    #[test]
    fn different_seeds_give_different_fields() {
        let a = value_noise_2d(1, 0, 2.5, 3.5, 4.0);
        let b = value_noise_2d(2, 0, 2.5, 3.5, 4.0);
        assert_ne!(a, b);
    }

    #[test]
    fn different_salts_give_different_fields() {
        let a = value_noise_2d(1, 10, 2.5, 3.5, 4.0);
        let b = value_noise_2d(1, 11, 2.5, 3.5, 4.0);
        assert_ne!(a, b);
    }

    #[test]
    fn noise_is_continuous() {
        // Adjacent samples 1 cm apart must differ by a tiny amount.
        let step = 0.01;
        let mut prev = value_noise_2d(5, 3, 0.0, 1.3, 4.0);
        for k in 1..500 {
            let v = value_noise_2d(5, 3, k as f64 * step, 1.3, 4.0);
            assert!((v - prev).abs() < 0.05, "jump at step {k}");
            prev = v;
        }
    }

    #[test]
    fn noise_decorrelates_across_cells() {
        // Sample many far-apart points; the field must actually vary.
        let vals: Vec<f64> =
            (0..50).map(|k| value_noise_2d(9, 1, k as f64 * 40.0, 0.0, 4.0)).collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.5, "field is too flat: [{min}, {max}]");
    }

    #[test]
    fn noise_1d_continuous_and_bounded() {
        let mut prev = value_noise_1d(3, 7, 0.0, 30.0);
        for k in 1..1000 {
            let v = value_noise_1d(3, 7, k as f64 * 0.5, 30.0);
            assert!((-1.0..=1.0).contains(&v));
            assert!((v - prev).abs() < 0.05);
            prev = v;
        }
    }

    #[test]
    fn noise_3d_continuous_in_time() {
        let mut prev = value_noise_3d(4, 9, 3.0, 2.0, 0.0, 3.0, 8.0);
        for k in 1..500 {
            let v = value_noise_3d(4, 9, 3.0, 2.0, k as f64 * 0.1, 3.0, 8.0);
            assert!((-1.0..=1.0).contains(&v));
            assert!((v - prev).abs() < 0.06, "time jump at {k}");
            prev = v;
        }
    }

    #[test]
    fn noise_3d_changes_across_time_cells() {
        let a = value_noise_3d(4, 9, 3.0, 2.0, 0.0, 3.0, 8.0);
        let deltas: f64 = (1..=20)
            .map(|k| (value_noise_3d(4, 9, 3.0, 2.0, k as f64 * 8.0, 3.0, 8.0) - a).abs())
            .sum();
        assert!(deltas > 1.0, "churn field too static: {deltas}");
    }

    #[test]
    fn noise_3d_spatially_correlated() {
        // 10 cm apart at the same instant: nearly identical.
        let a = value_noise_3d(4, 9, 3.0, 2.0, 5.0, 3.0, 8.0);
        let b = value_noise_3d(4, 9, 3.1, 2.0, 5.0, 3.0, 8.0);
        assert!((a - b).abs() < 0.1);
    }

    #[test]
    fn splitmix_spreads_bits() {
        // Consecutive inputs should produce wildly different outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert!(a != b && (a ^ b).count_ones() > 10);
    }
}
