//! Stress test for the shared worker pool (PR 6): many OS threads hammer
//! `par_map`/nested `par_join` through the *one* process-wide pool for
//! thousands of regions across varying `with_threads` budgets, asserting
//! every result stays bitwise-identical to an independent serial oracle
//! and that teardown ([`stone_par::shutdown_pool`]) neither deadlocks nor
//! drops queued work — including when it races active dispatchers
//! mid-test. Teardown at process exit is covered by every other test
//! binary in the workspace, which simply returns with live workers.
//!
//! `with_threads` installs a process-wide override, so the tests here
//! serialize through `STRESS_LOCK`, and the hammer threads themselves
//! never touch the override — the budget is installed once on the main
//! thread around the whole scope.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use stone_par::{par_join, par_map, pool_threads, shutdown_pool, with_threads};

static STRESS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    STRESS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One parallel region: a `par_map` whose every element runs a *nested*
/// `par_join` (which must run inline inside pool workers — budget 1).
fn region(seed: u64) -> Vec<u64> {
    let items: Vec<u64> = (0..61).map(|i| i ^ seed).collect();
    par_map(&items, |i, &x| {
        let (a, b) = par_join(
            || x.wrapping_mul(2654435761).wrapping_add(i as u64),
            || x.rotate_left((i % 63) as u32),
        );
        a ^ b
    })
}

/// The serial oracle: the same math as [`region`], with no `stone-par`
/// call anywhere — what "bitwise-identical to serial" is measured
/// against.
fn region_oracle(seed: u64) -> Vec<u64> {
    (0..61u64)
        .map(|i| {
            let x = i ^ seed;
            let a = x.wrapping_mul(2654435761).wrapping_add(i);
            let b = x.rotate_left((i % 63) as u32);
            a ^ b
        })
        .collect()
}

/// A top-level fork whose both arms are themselves parallel regions.
fn forked_regions(seed: u64) -> (Vec<u64>, Vec<u64>) {
    par_join(|| region(seed), || region(seed.wrapping_add(0x9e3779b9)))
}

/// Blocks until every pool worker has exited, or panics — a worker stuck
/// past this deadline after `shutdown_pool` *is* the teardown deadlock
/// this test exists to rule out.
fn await_pool_drained() {
    let deadline = Instant::now() + Duration::from_secs(10);
    while pool_threads() > 0 {
        assert!(Instant::now() < deadline, "pool workers failed to exit after shutdown");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn concurrent_hammer_is_bitwise_identical_to_serial_at_every_budget() {
    let _g = lock();
    const HAMMERS: usize = 4;
    const ITERS: u64 = 250;
    // Budget 1 exercises the fully-inline path; the larger budgets make
    // concurrent regions share (and grow) the pool. 4 hammer threads ×
    // 250 iterations × 4 budgets × 3 regions/iteration = 12 000 regions
    // through one pool.
    for budget in [1, 2, 4, 8] {
        with_threads(budget, || {
            std::thread::scope(|s| {
                for t in 0..HAMMERS as u64 {
                    s.spawn(move || {
                        for j in 0..ITERS {
                            let seed = t.wrapping_mul(0x1000) + j;
                            // One hammer thread also tears the pool down
                            // mid-flight every so often: shutdown must
                            // race active dispatchers without deadlock or
                            // lost results, and the next region re-inits.
                            if t == 0 && j % 50 == 25 {
                                shutdown_pool();
                            }
                            let (left, right) = forked_regions(seed);
                            assert_eq!(left, region_oracle(seed), "budget {budget} seed {seed}");
                            assert_eq!(
                                right,
                                region_oracle(seed.wrapping_add(0x9e3779b9)),
                                "budget {budget} seed {seed}"
                            );
                        }
                    });
                }
            });
        });
    }
    shutdown_pool();
    await_pool_drained();
    // A post-teardown region must lazily re-initialize a fresh pool.
    assert_eq!(with_threads(4, || region(99)), region_oracle(99));
}

#[test]
fn panicking_region_leaves_the_pool_usable() {
    let _g = lock();
    with_threads(4, || {
        for round in 0..20u64 {
            let items: Vec<u64> = (0..32).collect();
            let caught = std::panic::catch_unwind(|| {
                par_map(&items, |_, &x| {
                    assert!(x < 24, "deliberate stress panic");
                    x
                })
            });
            assert!(caught.is_err(), "round {round}: panic must propagate");
            // The very next region on the same pool must be unaffected.
            assert_eq!(region(round), region_oracle(round), "round {round}");
        }
    });
}

#[test]
fn repeated_shutdown_and_reinit_cycles_never_wedge() {
    let _g = lock();
    for cycle in 0..30u64 {
        assert_eq!(with_threads(3, || region(cycle)), region_oracle(cycle), "cycle {cycle}");
        shutdown_pool();
        // Double shutdown (already-empty pool) must be a no-op.
        shutdown_pool();
    }
    await_pool_drained();
}
