//! # stone-par
//!
//! Dependency-free data parallelism for the STONE reproduction.
//!
//! The workspace builds offline (crates.io is unreachable, see the `shims/`
//! vendoring policy), so instead of `rayon` this crate provides the three
//! fork-join primitives the hot paths actually need:
//!
//! * [`par_chunks`] — partition a mutable buffer into contiguous blocks and
//!   fill each block on its own worker (the matmul work-split);
//! * [`par_map`] — map a function over a slice, preserving input order;
//! * [`par_join`] — run two closures concurrently.
//!
//! Since PR 6 the primitives dispatch to a lazily-initialized, **long-lived
//! worker pool** (`pool.rs`: channel-fed per-worker queues, join-barrier
//! completion) instead of spawning scoped threads per region. A fork-join
//! region now costs ~3 µs instead of ~20–40 µs (`spawn_probe` example),
//! which is what let the dispatch thresholds above this crate
//! (`stone_tensor::PAR_MIN_MACS` & co.) drop far enough to parallelize
//! serve-time small batches. [`shutdown_pool`] tears the workers down (the
//! next call re-initializes); [`pool_threads`] observes the worker count.
//!
//! [`inline_scope`] additionally lets long-lived threads owned by *other*
//! subsystems (e.g. the serving layer's batch executors) borrow the same
//! "nested calls run inline" marking the primitives apply to their own
//! workers.
//!
//! # Determinism
//!
//! Every primitive assigns work by *input position*, never by completion
//! order or worker identity: `par_chunks` hands each arm a disjoint,
//! contiguous output block, and `par_map` stitches per-arm results back
//! together in input order. A caller that computes each output element
//! independently of the others therefore produces **bitwise-identical
//! results at any thread count, on any pool state** — the property the
//! workspace determinism tests (`tests/parallel_determinism.rs`) and the
//! pool stress test (`tests/pool_stress.rs`) pin down.
//!
//! # Thread-count resolution
//!
//! [`max_threads`] resolves, in priority order:
//!
//! 1. a scoped process-wide override installed by [`with_threads`]
//!    (tests/benches);
//! 2. the `STONE_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! The env var is read once per process (`max_threads` sits on per-call hot
//! paths). Inside a parallel region every arm — pool workers *and* the
//! calling thread while it executes its own share — reports a budget of 1,
//! so nested parallel calls run inline instead of oversubscribing the
//! machine (for example a parallel experiment runner whose workers call
//! parallel matmul). The budget caps threads *per region*; the pool itself
//! grows to the largest budget ever requested minus one and holds no
//! threads before the first dispatch.
//!
//! # Example
//!
//! ```
//! let squares = stone_par::par_map(&[1_i32, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

// `deny` rather than `forbid` since PR 6: the pool module carries the
// workspace's second audited `unsafe` exception (lifetime erasure behind
// a join barrier; see `pool`'s module docs), mirroring the AVX2 module in
// `stone-tensor`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::{pool_threads, shutdown_pool};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Process-wide thread-count override; 0 means "no override installed".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside worker closures so nested parallel calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as a parallel worker for the guard's lifetime,
/// restoring the previous state on drop. Applied both to spawned workers
/// and to the calling thread while it executes its own share of a parallel
/// region, so *every* arm of a region sees a budget of 1.
struct WorkerGuard(bool);

impl WorkerGuard {
    fn enter() -> Self {
        Self(IN_WORKER.with(|w| w.replace(true)))
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|w| w.set(self.0));
    }
}

/// `STONE_THREADS` (else available parallelism), resolved once per process:
/// `max_threads` sits on per-matmul/per-query hot paths, where a getenv
/// and parse per call would be measurable.
fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("STONE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, usize::from))
    })
}

/// The number of threads parallel primitives may use from the calling
/// thread.
///
/// Resolution order: [`with_threads`] override, then `STONE_THREADS`, then
/// [`std::thread::available_parallelism`] (the latter two are read once per
/// process and cached). Always at least 1, and exactly 1 when called from
/// inside another primitive's worker (nested parallelism runs inline).
///
/// # Example
///
/// ```
/// assert!(stone_par::max_threads() >= 1);
/// assert_eq!(stone_par::with_threads(3, stone_par::max_threads), 3);
/// ```
#[must_use]
pub fn max_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    configured_threads()
}

/// Runs `f` with the thread count pinned to `n`, restoring the previous
/// setting afterwards (also on panic).
///
/// The override is **process-wide** (it must reach worker threads spawned
/// while it is active), so concurrent callers would race each other's
/// setting; it exists for tests and benchmarks, which serialize their use.
///
/// # Panics
///
/// Panics when `n` is zero.
///
/// # Example
///
/// ```
/// use stone_par::{max_threads, with_threads};
///
/// let outside = max_threads();
/// with_threads(2, || assert_eq!(max_threads(), 2));
/// assert_eq!(max_threads(), outside);
/// ```
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "thread count must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(OVERRIDE.swap(n, Ordering::SeqCst));
    f()
}

/// Runs `f` with the current thread marked as a parallel worker, so every
/// nested `stone-par` call inside `f` sees a budget of 1 and runs inline.
///
/// The fork-join primitives apply this marking to their own workers
/// automatically; `inline_scope` exposes it for **long-lived threads owned
/// by other subsystems** that already provide their own parallelism. The
/// canonical user is the serving layer (`stone-serve`): when several batch
/// executor threads run concurrently, each executes its
/// `StoneLocalizer::locate_batch` inside an `inline_scope`, so the batched
/// kernels do not fork another `STONE_THREADS`-wide region per executor and
/// oversubscribe the machine. Results are unaffected — every parallel path
/// in the workspace is bitwise-identical at any thread count, including 1.
///
/// The marking is restored on exit (also on panic), and nesting is fine.
///
/// # Example
///
/// ```
/// // Inside the scope, parallel primitives run inline.
/// let budget = stone_par::inline_scope(stone_par::max_threads);
/// assert_eq!(budget, 1);
/// ```
pub fn inline_scope<R>(f: impl FnOnce() -> R) -> R {
    let _w = WorkerGuard::enter();
    f()
}

/// Runs two closures concurrently and returns both results.
///
/// Serial (in caller order `a` then `b`) when only one thread is available.
///
/// # Panics
///
/// Propagates a panic from either closure.
///
/// # Example
///
/// ```
/// let (a, b) = stone_par::par_join(|| 6 * 7, || "answer");
/// assert_eq!((a, b), (42, "answer"));
/// ```
pub fn par_join<A, B>(a: impl FnOnce() -> A + Send, b: impl FnOnce() -> B + Send) -> (A, B)
where
    A: Send,
    B: Send,
{
    if max_threads() <= 1 {
        return (a(), b());
    }
    let mut ra: Option<A> = None;
    let mut rb: Option<B> = None;
    // The calling thread is `a`'s worker (arm 0 runs on the caller); `b`
    // goes to a pool worker. Both arms run under the worker marking, so
    // nested parallel calls in either run inline while the other is live.
    pool::run_region(vec![Box::new(|| ra = Some(a())), Box::new(|| rb = Some(b()))]);
    (ra.expect("arm a completed"), rb.expect("arm b completed"))
}

/// Maps `f` over `items` on up to [`max_threads`] threads, preserving input
/// order.
///
/// `f` receives `(index, &item)` so callers can derive per-item state (seeds,
/// labels) from the item's *position* rather than from scheduling order —
/// the hook that keeps parallel runs byte-identical to serial ones.
///
/// # Panics
///
/// Propagates the first worker panic.
///
/// # Example
///
/// ```
/// let doubled = stone_par::par_map(&[10_u32, 20, 30], |i, &x| x + i as u32);
/// assert_eq!(doubled, vec![10, 21, 32]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let nt = max_threads().min(items.len());
    if nt <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(nt);
    // One result slot per block, indexed by block position: the stitch
    // order below depends only on the input split, never on which worker
    // (or the caller — arm 0 maps the first block itself) ran a block.
    let blocks: Vec<&[T]> = items.chunks(chunk).collect();
    let mut parts: Vec<Option<Vec<R>>> = (0..blocks.len()).map(|_| None).collect();
    let arms: Vec<pool::Task<'_>> = blocks
        .iter()
        .zip(parts.iter_mut())
        .enumerate()
        .map(|(bi, (block, slot))| {
            let f = &f;
            Box::new(move || {
                *slot = Some(block.iter().enumerate().map(|(j, t)| f(bi * chunk + j, t)).collect());
            }) as pool::Task<'_>
        })
        .collect();
    pool::run_region(arms);
    let mut out = Vec::with_capacity(items.len());
    for part in &mut parts {
        out.extend(part.take().expect("every region arm fills its slot"));
    }
    out
}

/// Splits `data` into contiguous blocks of whole `unit`-element records and
/// processes each block on its own thread.
///
/// `f` receives `(first_record_index, block)`; blocks are disjoint and cover
/// `data` exactly, so each record of the output is written by exactly one
/// worker — the row-partitioned matmul work-split.
///
/// # Panics
///
/// Panics when `unit` is zero or does not divide `data.len()`, and
/// propagates worker panics.
///
/// # Example
///
/// ```
/// let mut rows = vec![0_usize; 6];
/// // Two-element records: record r spans rows[2r..2r+2].
/// stone_par::par_chunks(&mut rows, 2, |first, block| {
///     for (i, v) in block.iter_mut().enumerate() {
///         *v = first + i / 2;
///     }
/// });
/// assert_eq!(rows, vec![0, 0, 1, 1, 2, 2]);
/// ```
pub fn par_chunks<T, F>(data: &mut [T], unit: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "record size must be positive");
    assert_eq!(data.len() % unit, 0, "buffer is not a whole number of records");
    let records = data.len() / unit;
    let nt = max_threads().min(records);
    if nt <= 1 {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    let per_block = records.div_ceil(nt);
    // Disjoint mutable blocks, each an arm; the caller processes block 0
    // itself while pool workers fill the rest. `run_region` joins every
    // arm and re-raises their panics.
    let arms: Vec<pool::Task<'_>> = data
        .chunks_mut(per_block * unit)
        .enumerate()
        .map(|(bi, block)| {
            let f = &f;
            Box::new(move || f(bi * per_block, block)) as pool::Task<'_>
        })
        .collect();
    pool::run_region(arms);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `with_threads` is process-wide; tests that install an override take
    /// this lock so cargo's parallel test harness cannot interleave them.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    /// Poison-tolerant lock: a panicking test (e.g. the deliberate one
    /// below) must not cascade into every later test.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let _g = lock();
        let items: Vec<usize> = (0..1000).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for nt in [1, 2, 3, 8, 64] {
            let got = with_threads(nt, || par_map(&items, |_, &x| x * 3 + 1));
            assert_eq!(got, expect, "thread count {nt}");
        }
    }

    #[test]
    fn par_map_passes_input_indices() {
        let _g = lock();
        let items = vec![(); 257];
        let got = with_threads(4, || par_map(&items, |i, ()| i));
        assert_eq!(got, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_every_record_once() {
        let _g = lock();
        for nt in [1, 2, 5, 16] {
            let mut buf = vec![0u32; 30];
            with_threads(nt, || {
                par_chunks(&mut buf, 3, |first, block| {
                    for (i, v) in block.iter_mut().enumerate() {
                        *v += (first + i / 3) as u32 + 1;
                    }
                });
            });
            let expect: Vec<u32> = (0..10).flat_map(|r| [r + 1; 3]).collect();
            assert_eq!(buf, expect, "thread count {nt}");
        }
    }

    #[test]
    fn par_join_returns_both() {
        let _g = lock();
        for nt in [1, 2] {
            let (a, b) = with_threads(nt, || par_join(|| 1 + 1, || "two".len()));
            assert_eq!((a, b), (2, 3));
        }
    }

    #[test]
    fn par_join_gives_both_arms_a_worker_budget() {
        let _g = lock();
        // The caller-side arm must also see budget 1 while the other arm is
        // live, or nested calls could oversubscribe.
        let (a, b) = with_threads(4, || par_join(max_threads, max_threads));
        assert_eq!((a, b), (1, 1));
    }

    #[test]
    fn nested_calls_run_inline() {
        let _g = lock();
        let inner_counts = with_threads(4, || par_map(&[(), (), ()], |_, ()| max_threads()));
        // Workers must see a single-thread budget regardless of the override.
        assert_eq!(inner_counts, vec![1, 1, 1]);
    }

    #[test]
    fn inline_scope_pins_budget_and_restores() {
        let _g = lock();
        with_threads(4, || {
            assert_eq!(inline_scope(max_threads), 1);
            // Nested scopes stay pinned and unwind correctly.
            assert_eq!(inline_scope(|| inline_scope(max_threads)), 1);
            assert_eq!(max_threads(), 4, "marking must not leak out of the scope");
        });
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let _g = lock();
        let before = max_threads();
        with_threads(7, || assert_eq!(max_threads(), 7));
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: [u8; 0] = [];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        let mut buf: [f32; 0] = [];
        par_chunks(&mut buf, 4, |_, _| unreachable!("no records to process"));
    }

    #[test]
    #[should_panic(expected = "whole number of records")]
    fn par_chunks_rejects_ragged_buffers() {
        let mut buf = vec![0u8; 7];
        par_chunks(&mut buf, 2, |_, _| {});
    }

    #[test]
    fn worker_panic_propagates() {
        let _g = lock();
        let result = std::panic::catch_unwind(|| {
            with_threads(2, || {
                par_map(&[0, 1, 2, 3], |_, &x| {
                    assert!(x < 2, "boom");
                    x
                })
            })
        });
        assert!(result.is_err());
    }
}
