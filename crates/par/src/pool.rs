//! The long-lived worker pool behind the fork-join primitives.
//!
//! Before PR 6 every parallel region spawned fresh scoped threads
//! (`std::thread::scope`), which cost ~20–40 µs per region on the
//! reference machine and forced the dispatch thresholds
//! (`stone_tensor::PAR_MIN_MACS` & co.) high enough to keep serve-time
//! work serial. This module replaces the per-call spawn with workers that
//! are spawned once, lazily, and then fed work through **channel-fed
//! per-worker queues**:
//!
//! * The pool is created on the first parallel dispatch and grows on
//!   demand up to the largest thread budget any region requests, minus
//!   one (the calling thread always executes the first arm itself).
//! * Each worker owns an `mpsc` receiver and blocks on it between jobs;
//!   dispatch is one `send` per remote arm — no thread creation, no
//!   stack setup, just a queue push and a wakeup.
//! * A region completes through a **join barrier**: the caller runs its
//!   own arm, then blocks until every remote arm has reported back on the
//!   region's completion channel. Worker panics are caught, carried
//!   across the channel, and re-raised on the caller — the same
//!   propagation the scoped implementation had.
//!
//! # Determinism
//!
//! The pool changes *where* an arm runs, never *what* it computes: arms
//! are constructed from input positions by the primitives in
//! [`crate`], and results land in per-arm slots indexed by position. The
//! chunk→result mapping is therefore independent of which worker executes
//! which arm, preserving the crate's bitwise-determinism contract
//! (`crates/par/tests/pool_stress.rs` hammers exactly this through one
//! shared pool).
//!
//! # The `unsafe` boundary
//!
//! Sending a borrowing closure to a long-lived thread is exactly what the
//! borrow checker cannot prove safe, so the jobs' lifetimes are erased
//! ([`erase`]) — the workspace's second audited `unsafe` exception (the
//! first is the AVX2 microkernel, see DESIGN.md). The safety argument is
//! the join barrier: [`run_region`] does not return (or unwind) until
//! every job it sent has been executed or provably dropped, so every
//! borrow captured by a job strictly outlives the job's execution. The
//! crate is `deny(unsafe_code)` with a module-local allow, mirroring
//! `stone-tensor`'s SIMD module.
//!
//! # Teardown
//!
//! Workers hold only their receiver; every sender lives in the pool's
//! queue table (plus transient dispatcher clones). [`shutdown_pool`]
//! drops the pool generation, which disconnects the queues once in-flight
//! regions finish, and each worker exits after draining its buffer — no
//! rendezvous, so teardown can never deadlock, and a later dispatch
//! simply builds a fresh generation. At process exit the blocked workers
//! are reaped with the process like any detached thread.
#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread;
use std::time::Instant;

use stone_obs::metrics::Counter;

use crate::WorkerGuard;

/// `STONE_PROF=1` dispatch counters, resolved once. `None` (one cached
/// bool load) when profiling is off, so the dispatch hot path pays
/// nothing by default.
struct PoolProf {
    /// Fork-join regions dispatched (including single-arm regions).
    regions: Counter,
    /// Arms sent to pool worker queues.
    pooled: Counter,
    /// Arms run on the calling thread: every region's first arm, plus
    /// any orphans reclaimed from a racing `shutdown_pool`.
    inline: Counter,
}

fn pool_prof() -> Option<&'static PoolProf> {
    if !stone_obs::prof_enabled() {
        return None;
    }
    static PROF: OnceLock<PoolProf> = OnceLock::new();
    Some(PROF.get_or_init(|| {
        let reg = stone_obs::global();
        PoolProf {
            regions: reg.counter("stone_pool_regions_total", &[]),
            pooled: reg.counter("stone_pool_tasks_total", &[("kind", "pooled")]),
            inline: reg.counter("stone_pool_tasks_total", &[("kind", "inline")]),
        }
    }))
}

/// A borrowing region arm, as built by the fork-join primitives.
pub(crate) type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

/// A lifetime-erased arm, as carried by a worker queue.
type StaticTask = Box<dyn FnOnce() + Send + 'static>;

/// One queued unit of work plus the channel its completion (or panic)
/// is reported on.
struct Job {
    task: StaticTask,
    done: Sender<thread::Result<()>>,
}

/// One pool generation: the queue table shared by dispatchers.
struct PoolShared {
    /// Send half of every live worker's job queue. Grows on demand within
    /// a generation; never shrinks (workers outlive idleness by design).
    queues: Mutex<Vec<Sender<Job>>>,
    /// Round-robin cursor so consecutive regions spread across workers.
    cursor: AtomicUsize,
}

/// The current pool generation. `None` until the first dispatch and after
/// [`shutdown_pool`]; an `Option` (not `OnceLock`) precisely so teardown
/// and lazy re-initialization are both possible mid-process.
static POOL: Mutex<Option<Arc<PoolShared>>> = Mutex::new(None);

/// Live worker threads across all generations (spawned minus exited).
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Monotonic id source for worker thread names.
static WORKER_ID: AtomicUsize = AtomicUsize::new(0);

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panic while holding either pool lock is a bug in this module, not
    // in the caller's closure (those run unlocked); poison tolerance keeps
    // one such failure from cascading through every later region.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The current generation, created lazily.
fn current_pool() -> Arc<PoolShared> {
    Arc::clone(lock(&POOL).get_or_insert_with(|| {
        Arc::new(PoolShared { queues: Mutex::new(Vec::new()), cursor: AtomicUsize::new(0) })
    }))
}

/// Erases a task's borrow lifetime so it can cross into a long-lived
/// worker.
///
/// # Safety
///
/// The caller must not return or unwind until the task has been executed
/// or dropped — [`run_region`]'s join barrier. Under that contract every
/// borrow the task captures outlives its use.
unsafe fn erase(task: Task<'_>) -> StaticTask {
    std::mem::transmute(task)
}

/// A worker: block on the queue, run one job, report, repeat. Exits when
/// the queue disconnects (its generation was torn down), after draining
/// any jobs still buffered — a sent job is therefore always retired.
fn worker_loop(rx: &Receiver<Job>, worker_id: usize) {
    // Workers permanently report a budget of 1 (nested calls run inline).
    let _w = WorkerGuard::enter();
    // Per-worker busy clock, resolved once per worker thread when
    // STONE_PROF=1 (the label is this worker's id).
    let busy: Option<Counter> = if stone_obs::prof_enabled() {
        let id = worker_id.to_string();
        Some(stone_obs::global().counter("stone_pool_worker_busy_us_total", &[("worker", &id)]))
    } else {
        None
    };
    while let Ok(job) = rx.recv() {
        let start = busy.as_ref().map(|_| Instant::now());
        let result = catch_unwind(AssertUnwindSafe(job.task));
        if let (Some(busy), Some(start)) = (&busy, start) {
            busy.add(start.elapsed().as_micros() as u64);
        }
        // A region whose caller already unwound (another arm panicked
        // first and the barrier drained without reading) is not an error.
        let _ = job.done.send(result);
    }
}

/// Spawns one worker and registers its queue.
fn spawn_worker(queues: &mut Vec<Sender<Job>>) {
    let (tx, rx) = channel::<Job>();
    let id = WORKER_ID.fetch_add(1, Ordering::Relaxed);
    LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
    let spawned = thread::Builder::new().name(format!("stone-par-{id}")).spawn(move || {
        /// Decrements the live count however the worker exits.
        struct Live;
        impl Drop for Live {
            fn drop(&mut self) {
                LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let _live = Live;
        worker_loop(&rx, id);
    });
    if let Err(e) = spawned {
        LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
        panic!("failed to spawn stone-par worker: {e}");
    }
    queues.push(tx);
}

impl PoolShared {
    /// Queues of `n` *distinct* workers, growing the pool if it has fewer.
    /// Distinctness keeps one region's arms from serializing behind each
    /// other; concurrent regions may still share workers, whose queues
    /// simply buffer — workers never wait on anything but their queue, so
    /// sharing delays work, never deadlocks it.
    fn assign(&self, n: usize) -> Vec<Sender<Job>> {
        let mut queues = lock(&self.queues);
        while queues.len() < n {
            spawn_worker(&mut queues);
        }
        let len = queues.len();
        let start = self.cursor.fetch_add(n, Ordering::Relaxed);
        (0..n).map(|i| queues[(start + i) % len].clone()).collect()
    }
}

/// Runs every arm of one parallel region: the first on the calling
/// thread (under the worker marking, so nested calls run inline), the
/// rest on pool workers. Returns — or re-raises the first panic — only
/// after **every** arm has retired; that barrier is what makes the
/// lifetime erasure sound.
pub(crate) fn run_region(arms: Vec<Task<'_>>) {
    let mut arms = arms.into_iter();
    let Some(first) = arms.next() else { return };
    let remote: Vec<Task<'_>> = arms.collect();
    if remote.is_empty() {
        if let Some(prof) = pool_prof() {
            prof.regions.inc();
            prof.inline.inc();
        }
        let _w = WorkerGuard::enter();
        first();
        return;
    }

    let pool = current_pool();
    let queues = pool.assign(remote.len());
    let (done_tx, done_rx) = channel::<thread::Result<()>>();
    let mut pending = 0usize;
    // Arms whose worker queue disconnected under a concurrent
    // `shutdown_pool` race run on the caller instead — never dropped.
    let mut orphaned: Vec<StaticTask> = Vec::new();
    for (task, queue) in remote.into_iter().zip(&queues) {
        // SAFETY: this function does not return or unwind past the
        // completion loop below, which waits until every sent job has been
        // executed or dropped; the borrows in `task` outlive its run.
        let task = unsafe { erase(task) };
        match queue.send(Job { task, done: done_tx.clone() }) {
            Ok(()) => pending += 1,
            Err(disconnected) => orphaned.push(disconnected.0.task),
        }
    }
    drop(done_tx); // completions now disconnect once all jobs retire

    if let Some(prof) = pool_prof() {
        prof.regions.inc();
        prof.pooled.add(pending as u64);
        prof.inline.add(1 + orphaned.len() as u64);
    }

    // The caller is its own worker for the first arm (and any orphans);
    // its panic is deferred so the barrier below always runs.
    let mut first_panic = catch_unwind(AssertUnwindSafe(|| {
        let _w = WorkerGuard::enter();
        first();
        for task in orphaned.drain(..) {
            task();
        }
    }))
    .err();

    // The join barrier: every sent job reports exactly once (workers
    // catch task panics), and a disconnect means the remaining jobs were
    // dropped un-run with their borrows released — either way no borrow
    // escapes this frame.
    while pending > 0 {
        match done_rx.recv() {
            Ok(Ok(())) => pending -= 1,
            Ok(Err(panic)) => {
                pending -= 1;
                if first_panic.is_none() {
                    first_panic = Some(panic);
                }
            }
            Err(_) => break,
        }
    }
    if let Some(panic) = first_panic {
        resume_unwind(panic);
    }
}

/// Tears down the current pool generation.
///
/// Worker queues disconnect once in-flight regions drop their handles, so
/// every worker drains whatever was already queued, then exits; nothing
/// blocks, nothing is dropped un-run, and teardown can race active
/// dispatchers freely (they either finish on the old generation or start
/// a fresh one). The next parallel call lazily re-initializes the pool.
///
/// Needed only by tests and by hosts that want a quiescent process (e.g.
/// before `fork`); normal programs just exit, which reaps the blocked
/// workers with the process.
///
/// # Example
///
/// ```
/// let doubled = stone_par::par_map(&[1, 2, 3], |_, &x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// stone_par::shutdown_pool(); // workers exit; the next call re-inits
/// let tripled = stone_par::par_map(&[1, 2, 3], |_, &x| x * 3);
/// assert_eq!(tripled, vec![3, 6, 9]);
/// ```
pub fn shutdown_pool() {
    drop(lock(&POOL).take());
}

/// Number of live pool worker threads (all generations; exiting workers
/// leave the count as they die). 0 before the first parallel dispatch —
/// the pool is lazy — and shortly after [`shutdown_pool`].
///
/// # Example
///
/// ```
/// // Probing the count is always safe, even before any dispatch.
/// let _ = stone_par::pool_threads();
/// ```
#[must_use]
pub fn pool_threads() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}
