//! Measures the cost of one `par_chunks` fork-join region at a 2-thread
//! budget against the inline path — the number that sets the matmul
//! dispatch threshold (`stone_tensor::PAR_MIN_MACS`; see the "Knobs"
//! table of `docs/PERFORMANCE.md`).
//!
//! Since PR 6 the fork-join arms are dispatched to the long-lived worker
//! pool, so the two-thread row measures **pool dispatch** (a channel send
//! plus a join-barrier receive), not thread spawn. The `scoped_spawn`
//! row reproduces the pre-pool per-region cost — two `thread::scope`
//! spawns — for the before/after comparison that justified re-deriving
//! the thresholds (`PAR_MIN_MACS`, `PAR_MIN_SWEEP_MACS`,
//! `PAR_MIN_BATCH_WORK`).
//!
//! ```sh
//! cargo run --release -p stone-par --example spawn_probe
//! ```

use std::time::Instant;

fn main() {
    let mut buf = vec![0.0f32; 16];
    let iters = 2000u32;

    // Warm the pool so the first measured region doesn't pay the one-time
    // lazy worker spawn.
    stone_par::with_threads(2, || {
        stone_par::par_chunks(&mut buf, 8, |_, block| {
            for v in block.iter_mut() {
                *v = 0.0;
            }
        });
    });

    for (label, nt) in [("inline_1thread", 1), ("pool_2threads", 2)] {
        let t0 = Instant::now();
        for _ in 0..iters {
            stone_par::with_threads(nt, || {
                stone_par::par_chunks(&mut buf, 8, |_, block| {
                    for v in block.iter_mut() {
                        *v += 1.0;
                    }
                });
            });
        }
        println!("{label}: {:?}/region", t0.elapsed() / iters);
    }
    assert!(buf.iter().all(|&v| v == 4000.0), "probe work was optimized away");

    // The pre-PR 6 baseline: spawn two scoped threads per region, the way
    // `par_chunks` used to. Kept here (not in the library) purely so the
    // spawn-vs-pool delta stays measurable on the current machine.
    let t0 = Instant::now();
    for _ in 0..iters {
        std::thread::scope(|s| {
            let (lo, hi) = buf.split_at_mut(8);
            s.spawn(|| {
                for v in hi.iter_mut() {
                    *v += 1.0;
                }
            });
            for v in lo.iter_mut() {
                *v += 1.0;
            }
        });
    }
    println!("scoped_spawn_2threads: {:?}/region", t0.elapsed() / iters);
    assert!(buf.iter().all(|&v| v == 6000.0), "probe work was optimized away");
    println!("pool workers live: {}", stone_par::pool_threads());
}
