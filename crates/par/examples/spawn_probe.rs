//! Measures the cost of one `par_chunks` fork-join region at a 2-thread
//! budget against the inline path — the number that sets the matmul
//! dispatch threshold (`stone_tensor::PAR_MIN_MACS`, re-derived in PR 4;
//! see the "Knobs" table of `docs/PERFORMANCE.md`).
//!
//! ```sh
//! cargo run --release -p stone-par --example spawn_probe
//! ```

use std::time::Instant;

fn main() {
    let mut buf = vec![0.0f32; 16];
    for (label, nt) in [("inline_1thread", 1), ("forkjoin_2threads", 2)] {
        let iters = 2000;
        let t0 = Instant::now();
        for _ in 0..iters {
            stone_par::with_threads(nt, || {
                stone_par::par_chunks(&mut buf, 8, |_, block| {
                    for v in block.iter_mut() {
                        *v += 1.0;
                    }
                });
            });
        }
        println!("{label}: {:?}/region", t0.elapsed() / iters);
    }
    assert!(buf.iter().all(|&v| v == 4000.0), "probe work was optimized away");
}
