//! Metrics registry and Prometheus-style text exposition.
//!
//! A [`Registry`] owns named metrics — [`Counter`], [`Gauge`],
//! [`Histogram`] — keyed by `(name, labels)`. Handles are cheap `Arc`
//! clones over atomics: callers resolve a handle once (registration
//! takes a mutex) and update it lock-free forever after, which is the
//! same discipline the serving stats use. [`Registry::render`] emits
//! the classic text format:
//!
//! ```text
//! # TYPE stone_pool_tasks_total counter
//! stone_pool_tasks_total{kind="pooled"} 128
//! ```
//!
//! [`parse_exposition`] is the strict inverse used by the round-trip
//! tests and the remote loadgen smoke: every non-comment line must parse
//! back into a `(name, labels, value)` sample.
//!
//! Histograms use the workspace's power-of-two microsecond buckets
//! (bucket *i* counts observations in `[2^i, 2^(i+1))` µs) rendered as
//! cumulative `_bucket{le="..."}` lines plus `_count` and `_sum`, so any
//! Prometheus-compatible reader can consume them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of power-of-two histogram buckets; bucket `i` counts
/// observations in `[2^i, 2^(i+1))` µs, with the top bucket clamping
/// everything at or above 2³⁹ µs (~6.4 days).
pub const HIST_BUCKETS: usize = 40;

/// Bucket index for a microsecond observation (0 maps to bucket 0).
pub fn pow2_bucket(us: u64) -> usize {
    ((63 - us.max(1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that moves both ways.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum_us: AtomicU64,
}

/// A power-of-two microsecond histogram.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Record one observation in microseconds.
    pub fn observe_us(&self, us: u64) {
        self.0.buckets[pow2_bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.0.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Snapshot of the raw bucket counts.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.0.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Sum of all observed values, in µs.
    pub fn sum_us(&self) -> u64 {
        self.0.sum_us.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

type MetricKey = (String, Vec<(String, String)>);

/// A registry of named metrics. Registration (the `counter` / `gauge` /
/// `histogram` get-or-create calls) takes a mutex; updates through the
/// returned handles are lock-free.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        (name.to_string(), labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<MetricKey, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter `name{labels}`.
    ///
    /// # Panics
    /// If the same `(name, labels)` was already registered as a
    /// different metric type — a programming error, not a runtime state.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut map = self.lock();
        let entry = map
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))));
        match entry {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the gauge `name{labels}` (same contract as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut map = self.lock();
        let entry = map
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))));
        match entry {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the histogram `name{labels}` (same contract as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut map = self.lock();
        let entry = map.entry(Self::key(name, labels)).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum_us: AtomicU64::new(0),
            })))
        });
        match entry {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Render every registered metric as exposition text, sorted by
    /// `(name, labels)` so output order is canonical.
    pub fn render(&self) -> String {
        let snapshot: Vec<(MetricKey, Metric)> = {
            let map = self.lock();
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out = String::new();
        let mut last_name: Option<(String, &'static str)> = None;
        for ((name, labels), metric) in snapshot {
            let owned: Vec<(&str, &str)> =
                labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            let needs_type = last_name.as_ref().map(|(n, _)| n != &name).unwrap_or(true);
            if needs_type {
                write_type(&mut out, &name, metric.kind());
                last_name = Some((name.clone(), metric.kind()));
            }
            match metric {
                Metric::Counter(c) => write_sample(&mut out, &name, &owned, c.get() as f64),
                Metric::Gauge(g) => write_sample(&mut out, &name, &owned, g.get() as f64),
                Metric::Histogram(h) => {
                    write_pow2_histogram(&mut out, &name, &owned, &h.buckets(), Some(h.sum_us()))
                }
            }
        }
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry that the kernel-profiling hooks feed.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_value(buf: &mut String, value: f64) {
    // Counters/gauges are integers in this workspace; render them
    // without a fractional part so the text round-trips exactly.
    if value.fract() == 0.0 && value.abs() < 9e15 {
        buf.push_str(&format!("{}", value as i64));
    } else {
        buf.push_str(&format!("{value}"));
    }
}

/// Append a `# TYPE name kind` header line.
pub fn write_type(buf: &mut String, name: &str, kind: &str) {
    buf.push_str("# TYPE ");
    buf.push_str(name);
    buf.push(' ');
    buf.push_str(kind);
    buf.push('\n');
}

/// Append one `name{labels} value` sample line. Exposed so other crates
/// can render their own snapshots (the serving stats, the wire ledger)
/// in the same format without double-registering.
pub fn write_sample(buf: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    buf.push_str(name);
    if !labels.is_empty() {
        buf.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push_str(k);
            buf.push_str("=\"");
            buf.push_str(&escape_label(v));
            buf.push('"');
        }
        buf.push('}');
    }
    buf.push(' ');
    fmt_value(buf, value);
    buf.push('\n');
}

/// Render a power-of-two microsecond histogram as cumulative
/// `name_bucket{le="..."}` lines plus `name_count` (and `name_sum` when
/// the sum was tracked). Empty buckets are skipped — only the cumulative
/// count at each populated upper edge plus the `+Inf` line are emitted,
/// which keeps 40-bucket histograms compact on the wire.
pub fn write_pow2_histogram(
    buf: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    buckets: &[u64; HIST_BUCKETS],
    sum_us: Option<u64>,
) {
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        cumulative += count;
        let le = format!("{}", 1u128 << (i + 1));
        let mut le_labels: Vec<(&str, &str)> = labels.to_vec();
        le_labels.push(("le", le.as_str()));
        write_sample(buf, &bucket_name, &le_labels, cumulative as f64);
    }
    let mut inf_labels: Vec<(&str, &str)> = labels.to_vec();
    inf_labels.push(("le", "+Inf"));
    write_sample(buf, &bucket_name, &inf_labels, cumulative as f64);
    if let Some(sum) = sum_us {
        write_sample(buf, &format!("{name}_sum"), labels, sum as f64);
    }
    write_sample(buf, &format!("{name}_count"), labels, cumulative as f64);
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Strictly parse exposition text: every non-empty, non-comment line
/// must be a valid `name{labels} value` sample. Returns the samples or
/// a description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<Sample, String> {
    let (ident, value_str) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unterminated label block")?;
            if close < brace {
                return Err("mismatched braces".into());
            }
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let sp = line.find(' ').ok_or("missing value")?;
            (&line[..sp], line[sp + 1..].trim())
        }
    };
    let (name, labels) = match ident.find('{') {
        Some(brace) => {
            let name = &ident[..brace];
            let inner = &ident[brace + 1..ident.len() - 1];
            (name, parse_labels(inner)?)
        }
        None => (ident, Vec::new()),
    };
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("invalid metric name {name:?}"));
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse::<f64>().map_err(|_| "invalid value")?,
    };
    Ok(Sample { name: name.to_string(), labels, value })
}

fn parse_labels(inner: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let eq = rest.find("=\"").ok_or("label missing =\"")?;
        let key = &rest[..eq];
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("invalid label name {key:?}"));
        }
        // Scan for the closing quote, honoring \" and \\ escapes.
        let mut value = String::new();
        let bytes = &rest[eq + 2..];
        let mut chars = bytes.char_indices();
        let mut closed_at = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    _ => return Err("bad escape in label value".into()),
                },
                '"' => {
                    closed_at = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let closed_at = closed_at.ok_or("unterminated label value")?;
        labels.push((key.to_string(), value));
        rest = &bytes[closed_at + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err("expected , between labels".into());
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_register_and_update() {
        let reg = Registry::new();
        let c = reg.counter("reqs_total", &[("venue", "office")]);
        c.inc();
        c.add(2);
        // Re-registration returns the same underlying atomic.
        assert_eq!(reg.counter("reqs_total", &[("venue", "office")]).get(), 3);
        let g = reg.gauge("depth", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        let h = reg.histogram("lat_us", &[]);
        h.observe_us(3);
        h.observe_us(300);
        assert_eq!(h.buckets().iter().sum::<u64>(), 2);
        assert_eq!(h.sum_us(), 303);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn render_parses_back_exactly() {
        let reg = Registry::new();
        reg.counter("a_total", &[("venue", "of\"fi\\ce")]).add(7);
        reg.gauge("b_depth", &[]).set(-4);
        let h = reg.histogram("c_us", &[("venue", "x")]);
        h.observe_us(1);
        h.observe_us(1_000_000);
        let text = reg.render();
        let samples = parse_exposition(&text).expect("render output parses");
        let find =
            |name: &str| -> Vec<&Sample> { samples.iter().filter(|s| s.name == name).collect() };
        assert_eq!(find("a_total")[0].value, 7.0);
        assert_eq!(find("a_total")[0].labels[0].1, "of\"fi\\ce");
        assert_eq!(find("b_depth")[0].value, -4.0);
        assert_eq!(find("c_us_count")[0].value, 2.0);
        assert_eq!(find("c_us_sum")[0].value, 1_000_001.0);
        // Cumulative +Inf bucket equals the count.
        let inf = find("c_us_bucket")
            .into_iter()
            .find(|s| s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf"))
            .expect("+Inf bucket present");
        assert_eq!(inf.value, 2.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "no_value",
            "name{unclosed 1",
            "name{k=\"v\" 1",
            "na me 1",
            "name{k=v} 1",
            "name 12abc",
        ] {
            assert!(parse_exposition(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn pow2_bucket_edges() {
        assert_eq!(pow2_bucket(0), 0);
        assert_eq!(pow2_bucket(1), 0);
        assert_eq!(pow2_bucket(2), 1);
        assert_eq!(pow2_bucket(3), 1);
        assert_eq!(pow2_bucket(4), 2);
        assert_eq!(pow2_bucket(u64::MAX), HIST_BUCKETS - 1);
    }
}
