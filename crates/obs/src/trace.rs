//! Per-request stage tracing: trace IDs, stage spans, and a fixed-size
//! lock-free span ring.
//!
//! The serving stack answers "how slow" with end-to-end latency
//! histograms; this module answers "why slow". Each request carries a
//! process-unique trace ID (minted at submit, or carried in from the
//! wire), and every pipeline stage it passes through — queue wait, batch
//! collect, registry snapshot, inference, write-back — records one
//! [`SpanRecord`] into a global ring buffer. Draining the ring
//! ([`span_snapshot`]) yields the raw material for per-stage latency
//! attribution: group by trace ID and the stage durations of one request
//! sum (to within timestamp quantization) to its end-to-end latency.
//!
//! # Cost model
//!
//! Tracing is **off by default**. Disabled, [`SpanTimer::start`] is one
//! relaxed atomic load and no clock read; enabling it
//! ([`set_tracing`]) allocates the ring once and arms the timers. The
//! ring is a seqlock over plain atomics — writers claim slots with one
//! `fetch_add` and never block, readers retry slots that change under
//! them. A reader racing a writer that laps the ring during the read
//! window can observe a stale-but-consistent record; it can never
//! observe UB (there is no `unsafe` anywhere in this crate).
//!
//! # Ledger
//!
//! Every armed timer increments `spans_opened` at start and
//! `spans_closed` when it records. A request that vanishes mid-pipeline
//! (a dropped reply, a leaked timer) leaves the ledger unbalanced —
//! [`span_ledger`] is the invariant CI asserts after a loadgen run:
//! spans opened == spans closed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of span slots in the global ring (a power of two). At five
/// spans per request this retains complete traces for the most recent
/// ~6500 requests.
pub const SPAN_RING_CAPACITY: usize = 1 << 15;

/// A pipeline stage a request passes through, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Submit accepted → popped from the sharded queue by an executor.
    QueueWait = 0,
    /// The executor's `collect` call that drained this request's batch.
    Collect = 1,
    /// Registry lookup + model snapshot for the batch.
    Snapshot = 2,
    /// The `locate_batch` model call (including breaker admission).
    Infer = 3,
    /// Reply delivery: callback/channel send back toward the client.
    WriteBack = 4,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] =
        [Stage::QueueWait, Stage::Collect, Stage::Snapshot, Stage::Infer, Stage::WriteBack];

    /// Stable snake_case name used in exposition text and trace dumps.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Collect => "collect",
            Stage::Snapshot => "snapshot",
            Stage::Infer => "infer",
            Stage::WriteBack => "write_back",
        }
    }

    /// Inverse of the `repr(u8)` discriminant; `None` for unknown bytes.
    pub fn from_u8(b: u8) -> Option<Stage> {
        match b {
            0 => Some(Stage::QueueWait),
            1 => Some(Stage::Collect),
            2 => Some(Stage::Snapshot),
            3 => Some(Stage::Infer),
            4 => Some(Stage::WriteBack),
            _ => None,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded stage span: a plain, `Copy` struct — exactly what sits
/// in the ring slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request's trace ID ([`mint_trace_id`] or carried from the wire).
    pub trace_id: u64,
    /// Which pipeline stage this span timed.
    pub stage: Stage,
    /// Span start, in µs since the process trace epoch (first enable).
    pub start_us: u64,
    /// Span duration in µs.
    pub dur_us: u64,
}

/// One ring slot: a seqlock sequence word plus the four record fields.
///
/// `seq == 0` means never written; odd means a write is in progress;
/// even (`2·(claim+1)`) means the record of claim index `claim` is
/// complete.
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    stage: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            stage: AtomicU64::new(0),
            start_us: AtomicU64::new(0),
            dur_us: AtomicU64::new(0),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static HEAD: AtomicU64 = AtomicU64::new(0);
static OPENED: AtomicU64 = AtomicU64::new(0);
static CLOSED: AtomicU64 = AtomicU64::new(0);
static RING: OnceLock<Vec<Slot>> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn ring() -> &'static [Slot] {
    RING.get_or_init(|| (0..SPAN_RING_CAPACITY).map(|_| Slot::new()).collect())
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch. Monotonic within the process.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Globally enable or disable span recording. Enabling allocates the
/// ring and pins the trace epoch on first use. Safe to call from any
/// thread at any time; timers capture the flag at start, so a flip
/// mid-request cannot unbalance the ledger.
pub fn set_tracing(enabled: bool) {
    if enabled {
        let _ = ring();
        let _ = epoch();
    }
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Mint a process-unique, monotonically increasing trace ID (never 0 —
/// 0 is the wire's "no trace" sentinel). Minting is independent of the
/// tracing flag so wire clients can carry IDs even when the server
/// records nothing.
pub fn mint_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Spans opened vs. closed since process start: `(opened, closed)`.
/// Balanced (`opened == closed`) whenever no request is mid-pipeline —
/// the ledger invariant the loadgen smoke asserts after draining.
pub fn span_ledger() -> (u64, u64) {
    // Closed is read first: a timer finishing between the two loads can
    // only make `opened >= closed` — never a phantom negative balance.
    let closed = CLOSED.load(Ordering::Acquire);
    let opened = OPENED.load(Ordering::Acquire);
    (opened, closed)
}

/// Record one complete span directly (both ledger sides at once). Used
/// for batch-level stages whose duration is measured once and attributed
/// to every member request.
pub fn record_span(trace_id: u64, stage: Stage, start_us: u64, dur_us: u64) {
    if !tracing_enabled() {
        return;
    }
    OPENED.fetch_add(1, Ordering::Relaxed);
    write_record(trace_id, stage, start_us, dur_us);
}

/// Record a span from two wall-clock instants — the batch executors'
/// recording shape, where one pipeline timestamp set is shared by every
/// request of a batch and the per-request stage boundaries are derived
/// after the fact. `end < start` records a zero-length span rather than
/// wrapping. Both ledger sides move together, so this can never
/// unbalance [`span_ledger`].
pub fn record_span_between(trace_id: u64, stage: Stage, start: Instant, end: Instant) {
    if !tracing_enabled() {
        return;
    }
    let e = epoch();
    let start_us = start.checked_duration_since(e).map(|d| d.as_micros() as u64).unwrap_or(0);
    let dur_us = end.checked_duration_since(start).map(|d| d.as_micros() as u64).unwrap_or(0);
    OPENED.fetch_add(1, Ordering::Relaxed);
    write_record(trace_id, stage, start_us, dur_us);
}

fn write_record(trace_id: u64, stage: Stage, start_us: u64, dur_us: u64) {
    let ring = ring();
    let claim = HEAD.fetch_add(1, Ordering::Relaxed);
    let slot = &ring[(claim as usize) & (SPAN_RING_CAPACITY - 1)];
    // Seqlock write: odd while in progress, even (= 2·(claim+1)) once
    // complete. Field stores are Relaxed; the Release on the final seq
    // store publishes them.
    slot.seq.store(2 * claim + 1, Ordering::Relaxed);
    slot.trace_id.store(trace_id, Ordering::Relaxed);
    slot.stage.store(stage as u8 as u64, Ordering::Relaxed);
    slot.start_us.store(start_us, Ordering::Relaxed);
    slot.dur_us.store(dur_us, Ordering::Relaxed);
    slot.seq.store(2 * (claim + 1), Ordering::Release);
    CLOSED.fetch_add(1, Ordering::Release);
}

/// Snapshot the ring: every complete record currently resident, oldest
/// first (by claim order). Lock-free — concurrent writers are retried
/// per slot, and a slot overwritten mid-read is skipped rather than
/// returned torn.
pub fn span_snapshot() -> Vec<SpanRecord> {
    let Some(ring) = RING.get() else {
        return Vec::new();
    };
    let mut out: Vec<(u64, SpanRecord)> = Vec::with_capacity(SPAN_RING_CAPACITY);
    for slot in ring {
        // Bounded retry: a slot being rewritten twice during one read is
        // a lapping writer — take the miss rather than spin.
        for _ in 0..2 {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                break;
            }
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            let stage = slot.stage.load(Ordering::Relaxed);
            let start_us = slot.start_us.load(Ordering::Relaxed);
            let dur_us = slot.dur_us.load(Ordering::Relaxed);
            let after = slot.seq.load(Ordering::Acquire);
            if before != after {
                continue;
            }
            if let Some(stage) = Stage::from_u8(stage as u8) {
                let claim = before / 2 - 1;
                out.push((claim, SpanRecord { trace_id, stage, start_us, dur_us }));
            }
            break;
        }
    }
    out.sort_by_key(|&(claim, _)| claim);
    out.into_iter().map(|(_, r)| r).collect()
}

/// An in-flight stage measurement. Obtained from [`SpanTimer::start`],
/// carried (it is `Send`) to wherever the stage ends, and finished with
/// [`SpanTimer::finish`]. An armed timer that is dropped without
/// finishing leaves the span ledger unbalanced — deliberately, so leaks
/// are observable.
#[derive(Debug)]
pub struct SpanTimer {
    armed: bool,
    stage: Stage,
    start_us: u64,
}

impl SpanTimer {
    /// Begin timing a stage. When tracing is disabled this is one
    /// relaxed load: no clock read, no ledger traffic, and the returned
    /// timer is inert.
    pub fn start(stage: Stage) -> SpanTimer {
        if !tracing_enabled() {
            return SpanTimer { armed: false, stage, start_us: 0 };
        }
        OPENED.fetch_add(1, Ordering::Relaxed);
        SpanTimer { armed: true, stage, start_us: now_us() }
    }

    /// Begin timing a stage whose wall-clock start happened earlier (a
    /// request enqueued before the executor saw it). Same ledger
    /// semantics as [`SpanTimer::start`].
    pub fn start_at(stage: Stage, start: Instant) -> SpanTimer {
        if !tracing_enabled() {
            return SpanTimer { armed: false, stage, start_us: 0 };
        }
        OPENED.fetch_add(1, Ordering::Relaxed);
        let start_us =
            start.checked_duration_since(epoch()).map(|d| d.as_micros() as u64).unwrap_or(0);
        SpanTimer { armed: true, stage, start_us }
    }

    /// Finish the span and record it against `trace_id`. Inert timers
    /// (started while tracing was disabled) record nothing.
    pub fn finish(self, trace_id: u64) {
        if !self.armed {
            return;
        }
        let dur_us = now_us().saturating_sub(self.start_us);
        write_record(trace_id, self.stage, self.start_us, dur_us);
    }

    /// Whether this timer was armed at start (tracing enabled).
    pub fn armed(&self) -> bool {
        self.armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace statics are process-global, so these tests share them:
    // each serializes on TEST_LOCK and asserts on deltas, not absolutes.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn disabled_timers_are_inert() {
        let _guard = serial();
        set_tracing(false);
        let (o0, c0) = span_ledger();
        let t = SpanTimer::start(Stage::Infer);
        assert!(!t.armed());
        t.finish(42);
        record_span(42, Stage::Collect, 0, 1);
        let (o1, c1) = span_ledger();
        assert_eq!(o0, o1);
        assert_eq!(c0, c1);
    }

    #[test]
    fn spans_record_and_ledger_balances() {
        let _guard = serial();
        set_tracing(true);
        let (o0, c0) = span_ledger();
        let id = mint_trace_id();
        let t = SpanTimer::start(Stage::QueueWait);
        assert!(t.armed());
        t.finish(id);
        record_span(id, Stage::Infer, 7, 3);
        let (o1, c1) = span_ledger();
        assert_eq!(o1 - o0, 2);
        assert_eq!(c1 - c0, 2);
        let spans: Vec<SpanRecord> =
            span_snapshot().into_iter().filter(|s| s.trace_id == id).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::QueueWait);
        assert_eq!(spans[1].stage, Stage::Infer);
        assert_eq!(spans[1].start_us, 7);
        assert_eq!(spans[1].dur_us, 3);
        set_tracing(false);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let _guard = serial();
        set_tracing(true);
        let base = mint_trace_id();
        for i in 0..(SPAN_RING_CAPACITY as u64 + 64) {
            record_span(base, Stage::Collect, i, 1);
        }
        let spans = span_snapshot();
        // The ring holds exactly CAPACITY records and the newest write
        // (start_us == CAPACITY + 63) survived the wrap.
        assert!(spans.len() <= SPAN_RING_CAPACITY);
        assert!(spans.iter().any(|s| s.start_us == SPAN_RING_CAPACITY as u64 + 63));
        set_tracing(false);
    }

    #[test]
    fn start_at_backdates_the_span() {
        let _guard = serial();
        set_tracing(true);
        let id = mint_trace_id();
        // Pin the process epoch and put it ≥ 5ms in the past: a start
        // instant before the epoch clamps to it (start_us 0), which would
        // make this test's duration read as time-since-epoch instead of
        // 5ms when it happens to run as the binary's first trace activity.
        let _ = now_us();
        std::thread::sleep(std::time::Duration::from_millis(6));
        let earlier = Instant::now() - std::time::Duration::from_millis(5);
        let t = SpanTimer::start_at(Stage::QueueWait, earlier);
        t.finish(id);
        let span =
            span_snapshot().into_iter().rev().find(|s| s.trace_id == id).expect("span recorded");
        assert!(span.dur_us >= 5_000, "backdated span is >= 5ms long");
        set_tracing(false);
    }
}
