//! `stone-obs` — the observability substrate of the STONE reproduction.
//!
//! Sits at the very bottom of the workspace DAG (below even `stone-par`)
//! so every layer — kernels, pool, server, wire — can feed the same three
//! facilities without a dependency cycle:
//!
//! 1. **Request tracing** ([`trace`]): per-request trace IDs plus
//!    timestamped stage spans (queue wait → collect → snapshot → infer →
//!    write-back) recorded into a fixed-size lock-free ring buffer of
//!    plain structs. Disabled by default; when disabled a span record is
//!    one relaxed atomic load and nothing else.
//! 2. **Metrics registry + text exposition** ([`metrics`]): named
//!    counters, gauges and power-of-two histograms rendered in a
//!    Prometheus-style text format, with a strict parser for round-trip
//!    tests and remote smoke checks.
//! 3. **Kernel profiling hooks** ([`prof`]): `STONE_PROF=1`-gated
//!    per-kernel timing counters (calls, busy µs, work units) that the
//!    matmul backends and the worker pool feed into the same registry.
//!
//! Everything here is `std`-only, dependency-free and `unsafe`-free: the
//! ring buffer is a seqlock over plain atomics, not a `Box<[UnsafeCell]>`.

pub mod metrics;
pub mod prof;
pub mod trace;

pub use metrics::{global, parse_exposition, Counter, Gauge, Histogram, Registry, Sample};
pub use prof::{prof_enabled, KernelProf};
pub use trace::{
    mint_trace_id, record_span, record_span_between, set_tracing, span_ledger, span_snapshot,
    tracing_enabled, SpanRecord, SpanTimer, Stage,
};

/// Render the global registry — the one the profiling hooks feed — as
/// Prometheus-style exposition text. Convenience for examples and admin
/// endpoints; identical to `global().render()`.
pub fn dump() -> String {
    metrics::global().render()
}
