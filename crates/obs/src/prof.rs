//! `STONE_PROF=1`-gated kernel profiling hooks.
//!
//! The compute layers (`stone-tensor` matmul dispatch, the `stone-par`
//! worker pool) are far too hot to pay for unconditional timing, so the
//! hooks follow the same discipline as `STONE_NO_SIMD`/`STONE_FMA`: the
//! env var is read once (first use, cached in a `OnceLock`), and when it
//! is unset the entire hook is one branch on a cached bool — no clock
//! read, no registry traffic.
//!
//! With `STONE_PROF=1`, each instrumented kernel feeds three counters in
//! the global registry, labelled by kernel name:
//!
//! ```text
//! stone_prof_kernel_calls_total{kernel="matmul"}    — invocations
//! stone_prof_kernel_busy_us_total{kernel="matmul"}  — wall-clock µs inside the kernel
//! stone_prof_kernel_work_total{kernel="matmul"}     — work units (MACs, tasks, …)
//! ```
//!
//! Call sites cache a [`KernelProf`] in a `OnceLock` so the steady-state
//! enabled cost is two atomic adds and one `Instant` pair per call.

use std::sync::OnceLock;
use std::time::Instant;

use crate::metrics::{global, Counter};

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| !v.trim().is_empty() && v.trim() != "0").unwrap_or(false)
}

/// Whether `STONE_PROF=1` profiling is enabled (read once, cached).
pub fn prof_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| env_flag("STONE_PROF"))
}

/// Start a profiling clock — `Some(now)` only when profiling is
/// enabled, so disabled call sites skip the clock read entirely.
pub fn maybe_start() -> Option<Instant> {
    if prof_enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Cached counter handles for one instrumented kernel.
#[derive(Clone, Debug)]
pub struct KernelProf {
    calls: Counter,
    busy_us: Counter,
    work: Counter,
}

impl KernelProf {
    /// Resolve (or create) the three per-kernel counters in the global
    /// registry. Call once per site and cache the result in a
    /// `OnceLock`.
    pub fn register(kernel: &str) -> KernelProf {
        let labels = [("kernel", kernel)];
        KernelProf {
            calls: global().counter("stone_prof_kernel_calls_total", &labels),
            busy_us: global().counter("stone_prof_kernel_busy_us_total", &labels),
            work: global().counter("stone_prof_kernel_work_total", &labels),
        }
    }

    /// Record one kernel invocation that started at `start` and
    /// performed `work` units.
    pub fn record(&self, start: Instant, work: u64) {
        self.calls.inc();
        self.busy_us.add(start.elapsed().as_micros() as u64);
        self.work.add(work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_prof_counts_calls_busy_and_work() {
        let prof = KernelProf::register("test_kernel_prof");
        let start = Instant::now();
        prof.record(start, 123);
        prof.record(start, 1);
        assert_eq!(prof.calls.get(), 2);
        assert_eq!(prof.work.get(), 124);
        // Busy time is non-negative and monotone in call count; the
        // exact value is wall-clock.
        let text = crate::dump();
        assert!(text.contains("stone_prof_kernel_calls_total{kernel=\"test_kernel_prof\"} 2"));
    }

    #[test]
    fn maybe_start_is_none_when_unset() {
        // The test environment does not set STONE_PROF; if it ever does,
        // this assertion flips — keep them consistent.
        if !prof_enabled() {
            assert!(maybe_start().is_none());
        } else {
            assert!(maybe_start().is_some());
        }
    }
}
