//! Cross-module integration tests for `stone-obs`: the span ring under
//! concurrent writers, the ledger invariant across threads, and a
//! registry exposition round-trip at realistic size.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use stone_obs::{
    mint_trace_id, parse_exposition, set_tracing, span_ledger, span_snapshot, Registry, SpanTimer,
    Stage,
};

// Tracing state is process-global; the two tracing tests serialize on
// this lock so their ledger deltas cannot interleave.
static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn concurrent_writers_and_reader_never_tear() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_tracing(true);
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let id = mint_trace_id();
                    // Tag the payload so a torn read is detectable:
                    // start_us and dur_us always carry the same token.
                    let token = (w as u64) << 32 | n;
                    stone_obs::trace::record_span(id, Stage::Infer, token, token);
                    n += 1;
                }
                n
            })
        })
        .collect();
    let deadline = Instant::now() + std::time::Duration::from_millis(100);
    let mut snapshots = 0u64;
    while Instant::now() < deadline {
        for span in span_snapshot() {
            if span.stage == Stage::Infer && span.trace_id != 0 {
                assert_eq!(span.start_us, span.dur_us, "torn read: start and dur tokens diverged");
            }
        }
        snapshots += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let written: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(written > 0, "writers made progress");
    assert!(snapshots > 0, "reader made progress");
    set_tracing(false);
}

#[test]
fn ledger_balances_across_threads() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_tracing(true);
    let (o0, c0) = span_ledger();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..100 {
                    let id = mint_trace_id();
                    let t = SpanTimer::start(Stage::QueueWait);
                    t.finish(id);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let (o1, c1) = span_ledger();
    assert_eq!(o1 - o0, c1 - c0, "every opened span was closed");
    assert!(o1 - o0 >= 800);
    set_tracing(false);
}

#[test]
fn realistic_registry_round_trips() {
    let reg = Registry::new();
    for v in 0..16 {
        let venue = format!("venue-{v:02}");
        reg.counter("stone_serve_enqueued_total", &[("venue", &venue)]).add(v as u64 * 37);
        reg.gauge("stone_serve_queue_depth", &[("venue", &venue)]).set(v as i64);
        let h = reg.histogram("stone_serve_latency_us", &[("venue", &venue)]);
        for i in 0..v {
            h.observe_us(1 << i);
        }
    }
    let text = reg.render();
    let samples = parse_exposition(&text).expect("full registry parses");
    // 16 counters + 16 gauges + per-venue histogram lines (bucket lines
    // vary, but every venue has at least the +Inf bucket and _count).
    assert!(samples.len() >= 16 * 4);
    assert!(samples.iter().any(|s| s.name == "stone_serve_latency_us_count"));
}
