//! Stage-span tracing through the live server.
//!
//! Pins the PR 10 attribution contract: when tracing is enabled, every
//! *answered* request records exactly five contiguous stage spans (queue
//! wait → collect → snapshot → infer → write-back) under one trace ID,
//! the span ledger stays balanced (opened == closed), and a request
//! served while tracing is disabled records nothing at all.
//!
//! Tracing state is process-global, so this file holds a single test.

use std::collections::HashMap;
use std::sync::Arc;

use stone::{KnnMode, StoneBuilder, StoneConfig, TrainerConfig};
use stone_dataset::{office_suite, SuiteConfig};
use stone_obs::{set_tracing, span_ledger, span_snapshot, Stage};
use stone_serve::{LocalizationServer, ModelRegistry, ServerConfig};

fn tiny_localizer(train: &stone_dataset::FingerprintDataset, seed: u64) -> stone::StoneLocalizer {
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 4,
            epochs: 1,
            triplets_per_epoch: 16,
            batch_size: 8,
            ..TrainerConfig::quick()
        },
        knn_k: 3,
        knn_mode: KnnMode::WeightedRegression,
    })
    .fit(train, seed)
}

#[test]
fn traced_requests_record_balanced_contiguous_stage_spans() {
    let suite = office_suite(&SuiteConfig::tiny(11));
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("office", tiny_localizer(&suite.train, 11));
    let mut server = LocalizationServer::start(
        Arc::clone(&registry),
        ServerConfig { max_batch: 8, ..Default::default() },
    );
    let handle = server.handle();
    let venue = handle.venue_handle("office");

    // Disabled (the default): requests run untraced and touch the ledger
    // not at all.
    let baseline = span_ledger();
    venue.locate(&suite.train.records()[0].rssi).expect("untraced locate");
    assert_eq!(span_ledger(), baseline, "disabled tracing records nothing");

    set_tracing(true);
    let (opened0, closed0) = span_ledger();
    let pending: Vec<_> = (0..16)
        .map(|i| venue.submit(&suite.train.records()[i % 4].rssi).expect("submit"))
        .collect();
    for p in pending {
        p.wait().expect("traced locate");
    }
    // Shut down *before* disabling tracing: joining the executors
    // guarantees every in-flight span was recorded first.
    server.shutdown();
    let (opened1, closed1) = span_ledger();
    set_tracing(false);

    assert_eq!(opened1 - opened0, closed1 - closed0, "span ledger balances");
    assert_eq!(opened1 - opened0, 16 * 5, "five spans per answered request");

    let mut by_trace: HashMap<u64, Vec<stone_obs::SpanRecord>> = HashMap::new();
    for rec in span_snapshot() {
        by_trace.entry(rec.trace_id).or_default().push(rec);
    }
    let complete: Vec<&Vec<stone_obs::SpanRecord>> =
        by_trace.values().filter(|s| s.len() == 5).collect();
    assert!(!complete.is_empty(), "ring retains at least one complete trace");
    for spans in complete {
        let mut ordered = spans.clone();
        ordered.sort_by_key(|s| s.stage as u8);
        let stages: Vec<Stage> = ordered.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            [Stage::QueueWait, Stage::Collect, Stage::Snapshot, Stage::Infer, Stage::WriteBack],
            "each stage appears exactly once"
        );
        // Contiguity is the attribution contract: stage k+1 starts where
        // stage k ended, so the five durations sum to the request's
        // end-to-end latency. Microsecond truncation of start/duration
        // allows a couple of µs of slack at each boundary.
        for w in ordered.windows(2) {
            let end = w[0].start_us + w[0].dur_us;
            assert!(
                w[1].start_us + 3 >= end && w[1].start_us <= end + 3,
                "stage {} ends at {}µs but stage {} starts at {}µs",
                w[0].stage,
                end,
                w[1].stage,
                w[1].start_us
            );
        }
    }
}
