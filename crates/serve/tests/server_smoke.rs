//! The serving-layer acceptance test: concurrent clients, observable
//! coalescing, warm reload mid-stream with zero dropped queries, and
//! bitwise agreement with direct serial `locate` calls on the same model
//! snapshot.

use std::sync::Arc;
use std::time::Duration;

use stone::{KnnMode, StoneBuilder, StoneConfig, StoneLocalizer, TrainerConfig};
use stone_dataset::{office_suite, Localizer, SuiteConfig};
use stone_serve::{LocalizationServer, ModelRegistry, ServerConfig};

const CLIENTS: usize = 4;
const SCANS_PER_CLIENT_PER_PHASE: usize = 8;

fn tiny_localizer(train: &stone_dataset::FingerprintDataset, seed: u64) -> StoneLocalizer {
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 4,
            epochs: 2,
            triplets_per_epoch: 32,
            batch_size: 16,
            ..TrainerConfig::quick()
        },
        knn_k: 3,
        knn_mode: KnnMode::WeightedRegression,
    })
    .fit(train, seed)
}

#[test]
fn concurrent_clients_coalesce_and_survive_warm_reload() {
    let suite = office_suite(&SuiteConfig::tiny(42));
    // Scans drawn from the evaluation buckets — real "phones months after
    // deployment" queries, one distinct scan per (client, slot).
    let scans: Vec<Vec<f32>> = suite
        .buckets
        .iter()
        .flat_map(|b| b.trajectories.iter().flat_map(|t| &t.fingerprints))
        .map(|f| f.rssi.clone())
        .take(CLIENTS * SCANS_PER_CLIENT_PER_PHASE * 2)
        .collect();
    assert_eq!(scans.len(), 64, "need 64 distinct scans for the two phases");

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("office", tiny_localizer(&suite.train, 1));
    let retrained = tiny_localizer(&suite.train, 2);

    let mut server = LocalizationServer::start(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 16,
            // A generous window so pipelined submissions coalesce reliably
            // even on a loaded single-core CI machine.
            max_wait: Duration::from_millis(50),
            queue_capacity: 256,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let v1 = registry.snapshot("office").expect("v1 published");
    assert_eq!(v1.version(), 1);

    // Phase 1: 4 clients × 8 pipelined single-scan queries against v1.
    let phase1: Vec<(usize, stone_serve::LocateResponse)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let handle = server.handle();
                let scans = &scans;
                s.spawn(move || {
                    let mine: Vec<usize> = (0..SCANS_PER_CLIENT_PER_PHASE)
                        .map(|k| c * SCANS_PER_CLIENT_PER_PHASE + k)
                        .collect();
                    // Submit every ticket first (pipelining into the
                    // coalescing window), then collect.
                    let tickets: Vec<_> = mine
                        .iter()
                        .map(|&i| handle.submit("office", &scans[i]).expect("enqueue"))
                        .collect();
                    mine.into_iter()
                        .zip(tickets)
                        .map(|(i, t)| (i, t.wait().expect("answered")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    assert_eq!(phase1.len(), CLIENTS * SCANS_PER_CLIENT_PER_PHASE, "phase 1 dropped queries");
    for (i, resp) in &phase1 {
        assert_eq!(resp.model_version, 1, "phase 1 ran before the reload");
        assert_eq!(
            resp.position,
            v1.model().locate(&scans[*i]),
            "scan {i}: served answer differs from direct locate on v1"
        );
    }

    // Phase 2: same client pattern, with the retrained model published
    // concurrently — mid-stream, while queries are in flight. No query may
    // be dropped; each answer must match the snapshot its version names.
    let phase2: Vec<(usize, stone_serve::LocateResponse)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let handle = server.handle();
                let scans = &scans;
                s.spawn(move || {
                    let base = CLIENTS * SCANS_PER_CLIENT_PER_PHASE;
                    let mine: Vec<usize> = (0..SCANS_PER_CLIENT_PER_PHASE)
                        .map(|k| base + c * SCANS_PER_CLIENT_PER_PHASE + k)
                        .collect();
                    let tickets: Vec<_> = mine
                        .iter()
                        .map(|&i| handle.submit("office", &scans[i]).expect("enqueue"))
                        .collect();
                    mine.into_iter()
                        .zip(tickets)
                        .map(|(i, t)| (i, t.wait().expect("answered")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        // The warm reload races the in-flight phase-2 queries on purpose.
        let swapper = {
            let registry = Arc::clone(&registry);
            s.spawn(move || registry.publish("office", retrained))
        };
        assert_eq!(swapper.join().expect("swap thread"), 2);
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let v2 = registry.snapshot("office").expect("v2 published");
    assert_eq!(v2.version(), 2);
    assert_eq!(phase2.len(), CLIENTS * SCANS_PER_CLIENT_PER_PHASE, "reload dropped queries");
    for (i, resp) in &phase2 {
        let snapshot = match resp.model_version {
            1 => &v1,
            2 => &v2,
            v => panic!("scan {i}: unknown model version {v}"),
        };
        assert_eq!(
            resp.position,
            snapshot.model().locate(&scans[*i]),
            "scan {i}: served answer differs from direct locate on v{}",
            resp.model_version
        );
    }

    // After the reload settles, new queries must see v2.
    let settled = server.handle().locate("office", &scans[0]).expect("post-reload query");
    assert_eq!(settled.model_version, 2);
    assert_eq!(settled.position, v2.model().locate(&scans[0]));

    let stats = server.stats();
    server.shutdown();
    let total = (CLIENTS * SCANS_PER_CLIENT_PER_PHASE * 2 + 1) as u64;
    assert_eq!(stats.enqueued, total, "every query was accepted");
    assert_eq!(stats.completed, total, "every query was answered — zero drops");
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.queue_depth, 0, "nothing left in flight");
    assert!(
        stats.coalesced_batches() > 0,
        "batch-size histogram shows no coalescing: {:?}",
        stats.batch_hist
    );
    // p50/p99 are observable once traffic has flowed.
    assert!(stats.p50().is_some() && stats.p99().is_some());
    assert!(stats.p50() <= stats.p99());
}
