//! The resilience acceptance suite (PR 9): deadlines expire in the queue
//! without ever reaching the model, a panicking model fails only its own
//! batch, consecutive panics trip the per-venue circuit breaker (fast-fail,
//! half-open probe, re-close) and roll the venue back to its last-good
//! snapshot, and a corrupt publish is rejected while the old model keeps
//! serving. The breaker lifecycle is pinned across `STONE_THREADS` budgets
//! of 1, 2 and 8.

use std::sync::Arc;
use std::time::{Duration, Instant};

use stone::{KnnMode, StoneBuilder, StoneConfig, StoneLocalizer, TrainerConfig};
use stone_dataset::{office_suite, SuiteConfig};
use stone_par::with_threads;
use stone_serve::{
    corrupt_blob, ChaosConfig, LocalizationServer, ModelRegistry, ServeError, ServerConfig,
};

fn tiny_localizer(train: &stone_dataset::FingerprintDataset, seed: u64) -> StoneLocalizer {
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 4,
            epochs: 1,
            triplets_per_epoch: 16,
            batch_size: 8,
            ..TrainerConfig::quick()
        },
        knn_k: 3,
        knn_mode: KnnMode::WeightedRegression,
    })
    .fit(train, seed)
}

/// One trained model blob plus a scan that matches it — the suite fixture.
/// Training once and republishing the blob keeps each test's wall clock on
/// the serving path under test, not on gradient descent.
fn fixture(seed: u64) -> (Vec<u8>, Vec<f32>) {
    let suite = office_suite(&SuiteConfig::tiny(seed));
    let model = tiny_localizer(&suite.train, seed);
    let scan = suite.train.records()[0].rssi.clone();
    (model.save(), scan)
}

fn quick_config() -> ServerConfig {
    ServerConfig { max_batch: 16, max_wait: Duration::ZERO, ..ServerConfig::default() }
}

/// Requests whose deadline lapses while queued answer `DeadlineExceeded`
/// and never occupy a batch slot; requests without a deadline (or with
/// budget to spare) are untouched. Paused executors make the race-free
/// version of the scenario: everything is queued, *then* time passes,
/// *then* the drain runs.
#[test]
fn expired_requests_never_reach_the_model() {
    let (blob, scan) = fixture(11);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish_bytes("office", &blob).expect("publish");

    let mut server = LocalizationServer::start_paused(Arc::clone(&registry), quick_config());
    let handle = server.handle();

    // 3 requests with a 5 ms budget, 3 with none, interleaved.
    let mut doomed = Vec::new();
    let mut alive = Vec::new();
    for _ in 0..3 {
        doomed.push(
            handle
                .submit_deadline("office", &scan, Some(Duration::from_millis(5)))
                .expect("accepts while paused"),
        );
        alive.push(handle.submit("office", &scan).expect("accepts while paused"));
    }
    std::thread::sleep(Duration::from_millis(20));
    server.resume();

    for t in doomed {
        assert_eq!(t.wait().unwrap_err(), ServeError::DeadlineExceeded { venue: "office".into() });
    }
    for t in alive {
        assert_eq!(t.wait().expect("no-deadline requests answer").model_version, 1);
    }

    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.expired, 3);
    assert_eq!(stats.completed, 6, "expired requests still count as completions");
    assert_eq!(stats.queue_depth, 0);
    // Expired requests never occupied a batch slot: every executed batch is
    // made of live requests only.
    let batched: u64 = stats.batch_hist.iter().enumerate().map(|(i, &n)| (i as u64 + 1) * n).sum();
    assert_eq!(batched, 3, "only the three live requests were batched");
    let office = stats.venues.iter().find(|v| v.venue == "office").expect("venue stats");
    assert_eq!(office.expired, 3);
    assert_eq!(office.panicked_batches, 0);
}

/// A generous deadline is a no-op: the request executes normally and the
/// expired counter stays zero.
#[test]
fn unexpired_deadlines_do_not_drop_requests() {
    let (blob, scan) = fixture(12);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish_bytes("office", &blob).expect("publish");
    let mut server = LocalizationServer::start(Arc::clone(&registry), quick_config());
    let handle = server.handle();
    let resp = handle.locate_deadline("office", &scan, Duration::from_secs(30)).expect("in budget");
    assert_eq!(resp.model_version, 1);
    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.completed, 1);
}

/// The full breaker lifecycle, deterministic because `workers: 1` executes
/// one batch at a time: a panicking v2 model fails its own batches
/// (`Internal`, executor survives), the second consecutive panic trips the
/// breaker (rolling the venue back to last-good v1), the open breaker
/// fast-fails without touching the model, and the post-cooldown half-open
/// probe lands on the rolled-back v1 and re-closes. Pinned at
/// `STONE_THREADS` ∈ {1, 2, 8} — the kernel thread budget must not change
/// any of it.
#[test]
fn breaker_trips_rolls_back_and_recloses_across_thread_budgets() {
    let (blob, scan) = fixture(13);
    for threads in [1usize, 2, 8] {
        with_threads(threads, || {
            let registry = Arc::new(ModelRegistry::new());
            assert_eq!(registry.publish_bytes("office", &blob).unwrap(), 1);
            assert_eq!(registry.publish_bytes("office", &blob).unwrap(), 2);

            // Panic every batch that executes against v2; v1 is healthy.
            let chaos = ChaosConfig::none().with_panic("office", Some(2), None);
            let cooldown = Duration::from_millis(40);
            let mut server = LocalizationServer::start_with_chaos(
                Arc::clone(&registry),
                ServerConfig { breaker_threshold: 2, breaker_cooldown: cooldown, ..quick_config() },
                chaos,
            );
            let handle = server.handle();

            // Two consecutive panicked batches: isolated per-batch failures.
            for _ in 0..2 {
                assert_eq!(
                    handle.locate("office", &scan).unwrap_err(),
                    ServeError::Internal { venue: "office".into() }
                );
            }
            // The trip rolled the venue back to last-good v1 (consuming it).
            assert_eq!(registry.snapshot("office").expect("still published").version(), 1);
            assert_eq!(registry.last_good_version("office"), None);

            // While open: fast-fail, no model touched, no new panics.
            let opened = Instant::now();
            assert_eq!(
                handle.locate("office", &scan).unwrap_err(),
                ServeError::VenueUnavailable { venue: "office".into() }
            );
            assert!(opened.elapsed() < cooldown, "fast-fail must not wait out the cooldown");

            // After the cooldown the half-open probe executes against the
            // rolled-back v1, succeeds, and re-closes the breaker.
            std::thread::sleep(cooldown + Duration::from_millis(10));
            let probe = handle.locate("office", &scan).expect("probe lands on last-good v1");
            assert_eq!(probe.model_version, 1);
            let after = handle.locate("office", &scan).expect("breaker re-closed");
            assert_eq!(after.model_version, 1);

            let stats = server.stats();
            server.shutdown();
            assert_eq!(stats.panicked_batches, 2);
            let office = stats.venues.iter().find(|v| v.venue == "office").expect("venue stats");
            assert_eq!(office.panicked_batches, 2);
            assert_eq!(office.breaker_trips, 1);
            assert_eq!(office.fast_failed, 1);
            assert_eq!(office.completed, 5, "every request was answered exactly once");
        });
    }
}

/// `breaker_threshold: 0` disables the breaker: every panicking batch fails
/// `Internal`, nothing fast-fails, and no rollback happens.
#[test]
fn breaker_threshold_zero_disables_tripping() {
    let (blob, scan) = fixture(14);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish_bytes("office", &blob).expect("publish");

    let chaos = ChaosConfig::none().with_panic("office", None, None);
    let mut server = LocalizationServer::start_with_chaos(
        Arc::clone(&registry),
        ServerConfig { breaker_threshold: 0, ..quick_config() },
        chaos,
    );
    let handle = server.handle();
    for _ in 0..4 {
        assert_eq!(
            handle.locate("office", &scan).unwrap_err(),
            ServeError::Internal { venue: "office".into() }
        );
    }
    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.panicked_batches, 4);
    let office = stats.venues.iter().find(|v| v.venue == "office").expect("venue stats");
    assert_eq!(office.breaker_trips, 0);
    assert_eq!(office.fast_failed, 0);
    assert_eq!(registry.snapshot("office").expect("still published").version(), 1);
}

/// A panicking venue never bleeds into a healthy one: with chaos armed for
/// "flaky" only, "stable" keeps answering throughout trip and cooldown.
#[test]
fn panicking_venue_does_not_affect_others() {
    let (blob, scan) = fixture(15);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish_bytes("stable", &blob).expect("publish");
    registry.publish_bytes("flaky", &blob).expect("publish");

    let chaos = ChaosConfig::none().with_panic("flaky", None, None);
    let mut server = LocalizationServer::start_with_chaos(
        Arc::clone(&registry),
        ServerConfig { breaker_threshold: 2, ..quick_config() },
        chaos,
    );
    let handle = server.handle();
    for _ in 0..3 {
        assert!(handle.locate("flaky", &scan).is_err());
        assert!(handle.locate("stable", &scan).is_ok());
    }
    let stats = server.stats();
    server.shutdown();
    let stable = stats.venues.iter().find(|v| v.venue == "stable").expect("venue stats");
    assert_eq!(stable.panicked_batches, 0);
    assert_eq!(stable.fast_failed, 0);
    assert_eq!(stable.completed, 3);
}

/// An injected stall delays the batch but does not corrupt it, and a
/// bounded `count` disarms the rule after it fires.
#[test]
fn stall_chaos_delays_but_answers() {
    let (blob, scan) = fixture(16);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish_bytes("office", &blob).expect("publish");

    let stall = Duration::from_millis(30);
    let chaos = ChaosConfig::none().with_stall("office", None, stall, Some(1));
    let mut server =
        LocalizationServer::start_with_chaos(Arc::clone(&registry), quick_config(), chaos);
    let handle = server.handle();

    let t0 = Instant::now();
    let slow = handle.locate("office", &scan).expect("stalled, not failed");
    assert!(t0.elapsed() >= stall, "first batch absorbs the injected stall");
    // The budget of 1 is spent: later batches run at full speed (asserting
    // only correctness — wall-clock upper bounds flake on loaded CI).
    let fast = handle.locate("office", &scan).expect("rule disarmed");
    assert_eq!(slow.position, fast.position);
    server.shutdown();
}

/// A corrupt publish is rejected by the blob checksum before it can serve,
/// and the incumbent model keeps answering mid-drain; a clean republish
/// then takes over at the next version.
#[test]
fn corrupt_publish_is_rejected_and_old_model_keeps_serving() {
    let (blob, scan) = fixture(17);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish_bytes("office", &blob).expect("publish");

    let mut server = LocalizationServer::start(Arc::clone(&registry), quick_config());
    let handle = server.handle();
    let before = handle.locate("office", &scan).expect("serving v1");
    assert_eq!(before.model_version, 1);

    // Mid-drain: keep a stream of requests in flight while the corrupt
    // publish is attempted, so "the old model keeps serving" is exercised
    // under load rather than at rest.
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let h = server.handle();
            let scan = scan.clone();
            std::thread::spawn(move || {
                let mut answered = 0u64;
                for _ in 0..50 {
                    let resp = h.locate("office", &scan).expect("old model keeps serving");
                    assert_eq!(resp.model_version, 1);
                    answered += 1;
                }
                answered
            })
        })
        .collect();

    let corrupted = corrupt_blob(&blob);
    assert!(registry.publish_bytes("office", &corrupted).is_err(), "checksum rejects the blob");
    assert_eq!(registry.snapshot("office").expect("still published").version(), 1);

    for w in workers {
        assert_eq!(w.join().expect("no panic"), 50);
    }

    // A clean republish takes over cleanly at v2.
    assert_eq!(registry.publish_bytes("office", &blob).unwrap(), 2);
    let after = handle.locate("office", &scan).expect("serving v2");
    assert_eq!(after.model_version, 2);
    server.shutdown();
}

/// Removing a venue with requests still queued fails each of them with
/// `UnknownVenue` (nothing hangs, nothing panics), and a republish starts a
/// fresh version lineage that serves immediately.
#[test]
fn remove_then_republish_venue_with_queued_requests() {
    let (blob, scan) = fixture(18);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish_bytes("office", &blob).expect("publish");

    let mut server = LocalizationServer::start_paused(Arc::clone(&registry), quick_config());
    let handle = server.handle();
    let tickets: Vec<_> =
        (0..4).map(|_| handle.submit("office", &scan).expect("accepts while paused")).collect();

    assert!(registry.remove("office"));
    server.resume();
    for t in tickets {
        assert_eq!(t.wait().unwrap_err(), ServeError::UnknownVenue { venue: "office".into() });
    }

    // Republish: a removed venue restarts its lineage at v1 and serves.
    assert_eq!(registry.publish_bytes("office", &blob).unwrap(), 1);
    let resp = handle.locate("office", &scan).expect("republished venue serves");
    assert_eq!(resp.model_version, 1);
    server.shutdown();
}

/// The registry's last-good retention contract: publish keeps exactly one
/// predecessor, rollback consumes it (restoring its version), and the
/// version counter never reuses numbers even across a rollback.
#[test]
fn registry_rollback_restores_last_good_and_keeps_versions_monotonic() {
    let (blob, _) = fixture(19);
    let registry = ModelRegistry::new();
    assert_eq!(registry.rollback("office"), None, "nothing to roll back yet");

    assert_eq!(registry.publish_bytes("office", &blob).unwrap(), 1);
    assert_eq!(registry.last_good_version("office"), None, "first publish has no predecessor");

    assert_eq!(registry.publish_bytes("office", &blob).unwrap(), 2);
    assert_eq!(registry.last_good_version("office"), Some(1));

    assert_eq!(registry.rollback("office"), Some(1));
    assert_eq!(registry.snapshot("office").expect("published").version(), 1);
    assert_eq!(registry.last_good_version("office"), None, "rollback consumes last-good");
    assert_eq!(registry.rollback("office"), None, "a second rollback has nowhere to go");

    // The counter is monotonic across the rollback: no version reuse.
    assert_eq!(registry.publish_bytes("office", &blob).unwrap(), 3);
    assert_eq!(registry.last_good_version("office"), Some(1));
}

/// `STONE_CHAOS` parse errors are loud, and the documented grammar parses.
#[test]
fn chaos_spec_grammar_roundtrips() {
    assert!(ChaosConfig::parse("panic:office").is_ok());
    assert!(ChaosConfig::parse("panic:office@2:1,stall:lobby:50").is_ok());
    assert!(ChaosConfig::parse("stall:lobby@3:50:2").is_ok());
    assert!(ChaosConfig::parse("panic:").is_err());
    assert!(ChaosConfig::parse("freeze:office").is_err());
    assert!(ChaosConfig::parse("stall:office").is_err(), "stall needs a duration");
    assert!(ChaosConfig::none().is_empty());
}
