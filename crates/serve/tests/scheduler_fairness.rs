//! The venue-sharded scheduler contract (PR 8): single-venue batches,
//! deepest-first drains bounded by `max_wait` per request (no starvation),
//! the global-vs-venue shed split, venue removal failing queued requests
//! per-request, and the exactly-K-shed ledger agreeing wire-vs-serve across
//! kernel thread budgets.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use stone::{KnnMode, StoneBuilder, StoneConfig, StoneLocalizer, TrainerConfig};
use stone_dataset::{office_suite, SuiteConfig};
use stone_net::{NetClient, NetServer, WireStatus};
use stone_par::with_threads;
use stone_serve::{LocalizationServer, ModelRegistry, ServeError, ServerConfig};

fn tiny_localizer(train: &stone_dataset::FingerprintDataset, seed: u64) -> StoneLocalizer {
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 4,
            epochs: 1,
            triplets_per_epoch: 16,
            batch_size: 8,
            ..TrainerConfig::quick()
        },
        knn_k: 3,
        knn_mode: KnnMode::WeightedRegression,
    })
    .fit(train, seed)
}

/// A registry serving the same tiny model for every named venue, plus a
/// scan that fits it.
fn registry_for(venues: &[String], seed: u64) -> (Arc<ModelRegistry>, Vec<f32>) {
    let suite = office_suite(&SuiteConfig::tiny(seed));
    let scan = suite.train.records()[0].rssi.clone();
    let model = tiny_localizer(&suite.train, seed);
    let blob = model.save();
    let registry = Arc::new(ModelRegistry::new());
    for venue in venues {
        registry.publish_bytes(venue, &blob).expect("model publishes from bytes");
    }
    (registry, scan)
}

/// With `max_wait = 0` every queued head is overdue, so the scheduler runs
/// strictly oldest-venue-first while still draining whole venues: requests
/// interleaved as hot×8, cold-0..2, hot×8 complete as exactly that venue
/// sequence, with the hot venue's two batches staying fat (size 8) and each
/// cold venue served alone — deterministic, single executor, paused start.
#[test]
fn oldest_first_drains_whole_venues_in_arrival_order() {
    let venues: Vec<String> =
        ["hot", "cold-0", "cold-1", "cold-2"].iter().map(|s| (*s).to_string()).collect();
    let (registry, scan) = registry_for(&venues, 41);
    let mut server = LocalizationServer::start_paused(
        registry,
        ServerConfig {
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_capacity: 64,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let handle = server.handle();

    let completions: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let submit = |venue: &str| {
        let completions = Arc::clone(&completions);
        let venue_owned = venue.to_string();
        handle
            .try_submit_with(venue, &scan, move |result| {
                result.expect("answered");
                completions.lock().expect("completions").push(venue_owned);
            })
            .expect("fits in queue");
    };
    for _ in 0..8 {
        submit("hot");
    }
    for cold in ["cold-0", "cold-1", "cold-2"] {
        submit(cold);
    }
    for _ in 0..8 {
        submit("hot");
    }

    server.resume();
    let deadline = Instant::now() + Duration::from_secs(20);
    while completions.lock().expect("completions").len() < 19 {
        assert!(Instant::now() < deadline, "timed out waiting for completions");
        std::thread::sleep(Duration::from_millis(2));
    }

    let order = completions.lock().expect("completions").clone();
    let mut expected = vec!["hot"; 8];
    expected.extend(["cold-0", "cold-1", "cold-2"]);
    expected.extend(["hot"; 8]);
    assert_eq!(order, expected, "oldest-venue-first, whole-venue drains");

    let stats = server.stats();
    server.shutdown();
    let hot = stats.venue("hot").expect("hot venue tracked");
    assert_eq!(hot.batch_hist[7], 2, "both hot drains stayed fat: {:?}", hot.batch_hist);
    assert_eq!(hot.completed, 16);
    for cold in ["cold-0", "cold-1", "cold-2"] {
        let v = stats.venue(cold).expect("cold venue tracked");
        assert_eq!(v.batch_hist[0], 1, "{cold} served as its own batch");
        assert_eq!(v.completed, 1);
    }
    // Aggregate histogram is the sum of the venue histograms.
    assert_eq!(stats.batches(), 5);
    assert_eq!(stats.mean_batch_size(), 19.0 / 5.0);
}

/// Inside the `max_wait` window the scheduler prefers the *deepest* venue —
/// a lone fresh request does not break up a fat batch opportunity — but
/// once a head ages past `max_wait` it goes first. Paused start: one early
/// "shallow" request, then 8 "deep" ones; the deep venue drains first.
#[test]
fn deepest_venue_wins_within_the_max_wait_window() {
    let venues: Vec<String> = ["shallow", "deep"].iter().map(|s| (*s).to_string()).collect();
    let (registry, scan) = registry_for(&venues, 42);
    let mut server = LocalizationServer::start_paused(
        registry,
        ServerConfig {
            max_batch: 8,
            // Far above scheduling jitter: "shallow" cannot turn overdue
            // between submit and the first drain on any plausible CI box.
            max_wait: Duration::from_secs(30),
            queue_capacity: 64,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let handle = server.handle();

    let completions: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let submit = |venue: &str| {
        let completions = Arc::clone(&completions);
        let venue_owned = venue.to_string();
        handle
            .try_submit_with(venue, &scan, move |result| {
                result.expect("answered");
                completions.lock().expect("completions").push(venue_owned);
            })
            .expect("fits in queue");
    };
    submit("shallow"); // oldest head, depth 1
    for _ in 0..8 {
        submit("deep"); // depth 8 == max_batch: executes with no straggler wait
    }

    server.resume();
    let deadline = Instant::now() + Duration::from_secs(20);
    while completions.lock().expect("completions").len() < 8 {
        assert!(Instant::now() < deadline, "timed out waiting for the deep batch");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        completions.lock().expect("completions").as_slice(),
        &["deep"; 8],
        "the full deep batch executed before the older shallow request"
    );
    // The shallow request is *scheduled* next (nothing else is queued); its
    // under-full batch may legitimately be held open for stragglers, so
    // shut down to flush it rather than wait out the window.
    server.shutdown();
    let order = completions.lock().expect("completions").clone();
    assert_eq!(order.len(), 9, "shutdown drained the shallow request");
    assert_eq!(order[8], "shallow");
}

/// The live starvation bound of the ISSUE: one hot venue under continuous
/// closed-loop load must not starve 15 cold venues — every cold request is
/// answered while the hot load is still running, far faster than waiting
/// for the hot backlog to dry up.
#[test]
fn hot_venue_does_not_starve_fifteen_cold_venues() {
    let mut venues: Vec<String> = vec!["hot".to_string()];
    venues.extend((0..15).map(|i| format!("cold-{i:02}")));
    let (registry, scan) = registry_for(&venues, 43);
    let mut server = LocalizationServer::start(
        registry,
        ServerConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(10),
            queue_capacity: 256,
            workers: 1,
            ..ServerConfig::default()
        },
    );

    let stop = Arc::new(AtomicBool::new(false));
    let cold_latencies = std::thread::scope(|s| {
        // Two hot producers keep the hot backlog non-empty for the whole
        // test: each pipelines 32 tickets at a time, refilling as they
        // drain, until told to stop.
        let hot_threads: Vec<_> = (0..2)
            .map(|_| {
                let handle = server.handle();
                let stop = Arc::clone(&stop);
                let scan = &scan;
                s.spawn(move || {
                    let mut served = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let tickets: Vec<_> = (0..32)
                            .map(|_| handle.submit("hot", scan).expect("hot enqueue"))
                            .collect();
                        for t in tickets {
                            t.wait().expect("hot answered");
                            served += 1;
                        }
                    }
                    served
                })
            })
            .collect();

        // Let the hot backlog establish itself, then fire one request per
        // cold venue and time it.
        std::thread::sleep(Duration::from_millis(100));
        let handle = server.handle();
        let latencies: Vec<(String, Duration)> = venues[1..]
            .iter()
            .map(|venue| {
                let sent = Instant::now();
                handle.locate(venue, &scan).expect("cold venue answered");
                (venue.clone(), sent.elapsed())
            })
            .collect();
        stop.store(true, Ordering::SeqCst);
        let hot_served: u64 = hot_threads.into_iter().map(|t| t.join().expect("hot thread")).sum();
        assert!(hot_served > 0, "hot load ran");
        latencies
    });

    let stats = server.stats();
    server.shutdown();
    for (venue, latency) in &cold_latencies {
        // Generous CI bound — the point is "milliseconds, not the several
        // seconds a drain-the-hot-backlog-first policy would take".
        assert!(
            *latency < Duration::from_secs(2),
            "{venue} starved behind the hot venue: waited {latency:?}"
        );
    }
    let hot = stats.venue("hot").expect("hot venue tracked");
    assert!(hot.mean_batch_size() > 1.0, "hot venue coalesced under load: {:?}", hot.batch_hist);
    for (venue, _) in &cold_latencies {
        assert_eq!(stats.venue(venue).expect("cold venue tracked").completed, 1);
    }
}

/// The shed split (satellite 1): a venue hitting its own sub-queue cap
/// sheds with `VenueQueueFull` while the shared capacity sheds with
/// `QueueFull`, the per-venue stats attribute each cause, and the aggregate
/// `rejected` counter keeps counting both (the wire contract).
#[test]
fn venue_cap_and_global_capacity_shed_distinctly() {
    let venues: Vec<String> = ["a", "b", "c", "d", "e"].iter().map(|s| (*s).to_string()).collect();
    let (registry, scan) = registry_for(&venues, 44);
    let mut server = LocalizationServer::start_paused(
        registry,
        ServerConfig {
            max_batch: 16,
            max_wait: Duration::ZERO,
            queue_capacity: 8,
            venue_capacity: Some(2),
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let handle = server.handle();

    // Venue "a": 2 fit under the venue cap, 2 more shed as VenueQueueFull
    // (global capacity still has room).
    let mut tickets = Vec::new();
    for i in 0..4 {
        match handle.try_submit("a", &scan) {
            Ok(t) => {
                assert!(i < 2, "submission {i} beyond the venue cap was accepted");
                tickets.push(t);
            }
            Err(e) => {
                assert!(i >= 2, "submission {i} under the venue cap was shed: {e}");
                assert_eq!(e, ServeError::VenueQueueFull { venue: "a".into() });
            }
        }
    }
    // Venues b, c, d: 2 each — the queue now holds 8 == queue_capacity.
    for venue in ["b", "c", "d"] {
        for _ in 0..2 {
            tickets.push(handle.try_submit(venue, &scan).expect("fits under both caps"));
        }
    }
    // Venue "e" has an empty sub-queue, but the *global* capacity is gone.
    assert_eq!(handle.try_submit("e", &scan).unwrap_err(), ServeError::QueueFull);

    let stats = server.stats();
    assert_eq!(stats.rejected, 3, "aggregate rejected counts both shed causes");
    assert_eq!(stats.enqueued, 8);
    let a = stats.venue("a").expect("venue a tracked");
    assert_eq!((a.shed_venue, a.shed_global), (2, 0));
    let e = stats.venue("e").expect("venue e tracked");
    assert_eq!((e.shed_venue, e.shed_global), (0, 1));
    assert_eq!(e.enqueued, 0, "aborted enqueue reverted");

    server.resume();
    for t in tickets {
        t.wait().expect("accepted request answered");
    }
    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.queue_depth, 0);
}

/// Satellite 2: removing a venue from the registry while requests for it
/// sit in the queue fails exactly those requests with a per-request
/// `UnknownVenue` — no panic, no hung ticket — and other venues' queued
/// requests still succeed.
#[test]
fn removing_a_venue_with_queued_requests_fails_them_per_request() {
    let venues: Vec<String> = ["office", "doomed"].iter().map(|s| (*s).to_string()).collect();
    let (registry, scan) = registry_for(&venues, 45);
    let mut server = LocalizationServer::start_paused(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_capacity: 16,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let handle = server.handle();

    let doomed: Vec<_> =
        (0..3).map(|_| handle.try_submit("doomed", &scan).expect("enqueue")).collect();
    let office: Vec<_> =
        (0..2).map(|_| handle.try_submit("office", &scan).expect("enqueue")).collect();

    assert!(registry.remove("doomed"), "venue was published");
    server.resume();

    for t in doomed {
        assert_eq!(
            t.wait().unwrap_err(),
            ServeError::UnknownVenue { venue: "doomed".into() },
            "queued request for the removed venue fails individually"
        );
    }
    for t in office {
        t.wait().expect("other venues unaffected by the removal");
    }
    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.completed, 5, "every queued request was answered, none dropped");
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.venue("doomed").expect("doomed venue tracked").completed, 3);
}

/// Satellite 3 (ledger half): exactly K requests beyond capacity are shed,
/// and the serve-side ledger, the per-venue breakdown and the wire-visible
/// `Shed` count all agree — across kernel thread budgets 1, 2 and 8.
#[test]
fn exactly_k_shed_ledgers_agree_wire_vs_serve_across_thread_budgets() {
    const CAPACITY: usize = 4;
    const SENT: usize = 9;
    let venues = vec!["office".to_string()];
    let (registry, scan) = registry_for(&venues, 46);

    for threads in [1usize, 2, 8] {
        with_threads(threads, || {
            let inner = LocalizationServer::start_paused(
                Arc::clone(&registry),
                ServerConfig {
                    max_batch: 16,
                    max_wait: Duration::ZERO,
                    queue_capacity: CAPACITY,
                    workers: 1,
                    ..ServerConfig::default()
                },
            );
            let mut server = NetServer::start_with(inner, "127.0.0.1:0").expect("bind");
            let mut client = NetClient::connect(server.local_addr()).expect("connect");
            client.set_read_timeout(Some(Duration::from_secs(20))).expect("read timeout");

            for _ in 0..SENT {
                client.send("office", &scan).expect("send");
            }
            // The overflow beyond CAPACITY comes back first, shed inline.
            let mut shed = 0;
            for _ in 0..SENT - CAPACITY {
                let resp = client.recv().expect("shed response");
                assert_eq!(resp.result, Err(WireStatus::Shed));
                shed += 1;
            }
            server.resume();
            for _ in 0..CAPACITY {
                let resp = client.recv().expect("answer");
                resp.result.expect("accepted request answered");
            }

            let serve = server.serve_stats();
            let wire = server.shutdown();
            assert_eq!(shed, SENT - CAPACITY);
            assert_eq!(serve.rejected as usize, SENT - CAPACITY, "threads={threads}");
            assert_eq!(serve.completed as usize, CAPACITY, "threads={threads}");
            let venue = serve.venue("office").expect("venue tracked");
            assert_eq!(venue.shed_global as usize, SENT - CAPACITY, "threads={threads}");
            assert_eq!(venue.shed_venue, 0, "threads={threads}");
            assert_eq!(venue.completed as usize, CAPACITY, "threads={threads}");
            assert_eq!(wire.shed as usize, SENT - CAPACITY, "threads={threads}");
            assert_eq!(wire.requests_decoded as usize, SENT, "threads={threads}");
            assert_eq!(wire.responses_written as usize, SENT, "threads={threads}");
        });
    }
}
