//! The in-process half of the backpressure contract (satellite 3): with a
//! paused server and a queue of capacity K, exactly the overflow beyond K
//! is shed, the stats ledger matches, and the `try_submit_with` callback
//! fires exactly once per request — including across shutdown.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use stone::{KnnMode, StoneBuilder, StoneConfig, StoneLocalizer, TrainerConfig};
use stone_dataset::{office_suite, SuiteConfig};
use stone_serve::{LocalizationServer, ModelRegistry, ServeError, ServerConfig};

const CAPACITY: usize = 4;
const SUBMITTED: usize = 9;

fn tiny_localizer(train: &stone_dataset::FingerprintDataset, seed: u64) -> StoneLocalizer {
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 4,
            epochs: 1,
            triplets_per_epoch: 16,
            batch_size: 8,
            ..TrainerConfig::quick()
        },
        knn_k: 3,
        knn_mode: KnnMode::WeightedRegression,
    })
    .fit(train, seed)
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn overflow_beyond_capacity_is_shed_exactly() {
    let suite = office_suite(&SuiteConfig::tiny(11));
    let scan = suite.train.records()[0].rssi.clone();
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("office", tiny_localizer(&suite.train, 1));

    // Paused: the executors are parked, so "queue full" is a state we set
    // up exactly, not a race we hope to win.
    let mut server = LocalizationServer::start_paused(
        registry,
        ServerConfig {
            max_batch: 16,
            max_wait: Duration::ZERO,
            queue_capacity: CAPACITY,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let handle = server.handle();

    type Outcomes = Arc<Mutex<Vec<(usize, Result<u64, ServeError>)>>>;
    let outcomes: Outcomes = Arc::new(Mutex::new(Vec::new()));
    let mut returns = Vec::new();
    for i in 0..SUBMITTED {
        let outcomes = Arc::clone(&outcomes);
        returns.push(handle.try_submit_with("office", &scan, move |result| {
            outcomes.lock().expect("outcomes").push((i, result.map(|r| r.model_version)));
        }));
    }

    // The first K submissions were accepted; the rest were refused at the
    // door, with their callbacks already run (QueueFull) before the call
    // returned.
    for (i, r) in returns.iter().enumerate() {
        if i < CAPACITY {
            assert!(r.is_ok(), "submission {i} should fit (capacity {CAPACITY})");
        } else {
            assert!(matches!(r, Err(ServeError::QueueFull)), "submission {i} should shed: {r:?}");
        }
    }
    {
        let shed: Vec<usize> = outcomes.lock().expect("outcomes").iter().map(|o| o.0).collect();
        assert_eq!(shed, (CAPACITY..SUBMITTED).collect::<Vec<_>>(), "shed callbacks fire inline");
    }
    let stats = server.stats();
    assert_eq!(stats.rejected as usize, SUBMITTED - CAPACITY);
    assert_eq!(stats.enqueued as usize, CAPACITY, "aborted enqueues are reverted");
    assert_eq!(stats.queue_depth, CAPACITY);
    assert_eq!(stats.completed, 0, "nothing executed while paused");

    // Resume: everything accepted is answered.
    server.resume();
    wait_for(|| outcomes.lock().expect("outcomes").len() == SUBMITTED, "accepted answers");

    let mut seen = [0usize; SUBMITTED];
    for (i, result) in outcomes.lock().expect("outcomes").iter() {
        seen[*i] += 1;
        if *i < CAPACITY {
            assert_eq!(*result, Ok(1), "accepted request answered by model v1");
        } else {
            assert_eq!(*result, Err(ServeError::QueueFull));
        }
    }
    assert_eq!(seen, [1; SUBMITTED], "every callback fired exactly once");

    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.completed as usize, CAPACITY);
    assert_eq!(stats.rejected as usize, SUBMITTED - CAPACITY);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn callbacks_fire_exactly_once_across_shutdown() {
    let suite = office_suite(&SuiteConfig::tiny(12));
    let scan = suite.train.records()[0].rssi.clone();
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("office", tiny_localizer(&suite.train, 1));

    let mut server = LocalizationServer::start_paused(
        registry,
        ServerConfig {
            max_batch: 16,
            max_wait: Duration::ZERO,
            queue_capacity: 8,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let handle = server.handle();

    let fired = Arc::new(AtomicUsize::new(0));
    let ok = Arc::new(AtomicUsize::new(0));
    for _ in 0..2 {
        let fired = Arc::clone(&fired);
        let ok = Arc::clone(&ok);
        handle
            .try_submit_with("office", &scan, move |result| {
                fired.fetch_add(1, Ordering::SeqCst);
                if result.is_ok() {
                    ok.fetch_add(1, Ordering::SeqCst);
                }
            })
            .expect("fits in queue");
    }
    assert_eq!(fired.load(Ordering::SeqCst), 0, "paused server has not answered yet");

    // Shutdown resumes the executors and drains: both accepted requests
    // are *answered*, not dropped.
    server.shutdown();
    assert_eq!(fired.load(Ordering::SeqCst), 2, "drain answers everything accepted");
    assert_eq!(ok.load(Ordering::SeqCst), 2, "drained requests succeed");

    // After shutdown the callback still fires exactly once — inline, with
    // ShuttingDown.
    let fired_in_cb = Arc::clone(&fired);
    let r = handle.try_submit_with("office", &scan, move |result| {
        assert!(matches!(result, Err(ServeError::ShuttingDown)));
        fired_in_cb.fetch_add(1, Ordering::SeqCst);
    });
    assert!(matches!(r, Err(ServeError::ShuttingDown)));
    assert_eq!(fired.load(Ordering::SeqCst), 3, "post-shutdown callback fired inline");
}
