//! Server observability: queue depth, batch-size histogram, latency
//! percentiles — aggregate *and* per venue.
//!
//! The live [`ServerStats`] is a block of atomics shared between client
//! handles and batch executors — recording a request costs a handful of
//! relaxed atomic increments, never a lock on the hot path (the per-venue
//! counters sit behind an `RwLock`ed map, but a request only ever takes the
//! read side once to clone an `Arc`). [`StatsSnapshot`] is the plain-data
//! copy handed to callers; percentiles are computed on the snapshot so the
//! hot path never sorts anything.
//!
//! Since PR 8 the server executes **single-venue** batches (the
//! venue-sharded scheduler), so the per-venue batch-size histograms are the
//! direct observability of venue-affine coalescing: the aggregate histogram
//! is exactly the sum of the venue histograms.
//!
//! Latencies land in power-of-two microsecond buckets (bucket `i` holds
//! `[2^i, 2^(i+1))` µs), which bounds the memory at a fixed 40 counters
//! regardless of traffic volume; a reported percentile is interpolated
//! within its bucket by rank (see [`hist_quantile`] for the error bound).
//!
//! Snapshots also render as Prometheus-style exposition text
//! ([`StatsSnapshot::exposition`]) using the shared `stone-obs` format
//! helpers, so the wire admin endpoint, the loadgen and any scrape
//! tooling all read one canonical shape.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use stone_obs::metrics::{write_pow2_histogram, write_sample, write_type, HIST_BUCKETS};

/// Number of power-of-two latency buckets (2^39 µs ≈ 6.4 days — anything
/// above clamps into the last bucket). Pinned to the `stone-obs` histogram
/// width so snapshots render through the shared exposition helpers.
const LATENCY_BUCKETS: usize = HIST_BUCKETS;

/// Index of the power-of-two microsecond bucket a latency falls into.
fn latency_bucket(latency: Duration) -> usize {
    let micros = latency.as_micros().max(1) as u64;
    (63 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
}

/// The `q`-quantile of a power-of-two bucket histogram, interpolated
/// within the bucket by rank. Shared by the aggregate and per-venue views.
///
/// The decisive request has rank `ceil(q · total)`, clamped to
/// `[1, total]` — so `q = 0` resolves to the fastest recorded request and
/// `q = 1` to the slowest. If that rank is the `k`-th of the `c` requests
/// in bucket `[2^i, 2^(i+1))` µs, the estimate places it linearly within
/// the bucket: `2^i · (1 + k/c)` µs — the expected position of that order
/// statistic under a uniform-within-bucket assumption. With `k = c` this
/// degenerates to the bucket's upper edge, the pre-interpolation answer.
///
/// # Error bound
///
/// The true rank-`k` latency lies in `[2^i, 2^(i+1))` and the estimate in
/// `(2^i, 2^(i+1)]`, so the absolute error is strictly less than the
/// bucket width `2^i` µs — the estimate is always within **2×** of the
/// true value, the same hard bound the old upper-edge rule had. What
/// interpolation buys: distinct quantiles inside one bucket resolve to
/// distinct, rank-ordered values instead of all pinning to the upper
/// edge, and under the uniform assumption the *expected* absolute error
/// halves. Latencies at or above `2^39` µs (~6.4 days) clamp into the top
/// bucket and interpolate toward its `2^40` µs upper edge.
fn hist_quantile(hist: &[u64], q: f64) -> Option<Duration> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return None;
    }
    // Rank of the request that decides the quantile (1-based).
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0;
    for (i, &c) in hist.iter().enumerate() {
        seen += c;
        if seen >= rank {
            // Bucket width equals its lower edge (2^i µs); `k` is the
            // rank's 1-based position among this bucket's occupants.
            let lower_us = (1u64 << i) as f64;
            let k = (rank - (seen - c)) as f64;
            let est_us = lower_us * (1.0 + k / c as f64);
            return Some(Duration::from_nanos((est_us * 1_000.0).round() as u64));
        }
    }
    unreachable!("rank <= total by construction")
}

/// Copies a snapshot's latency histogram into the fixed-width array the
/// `stone-obs` exposition helpers take.
fn hist_array(hist: &[u64]) -> [u64; HIST_BUCKETS] {
    let mut out = [0u64; HIST_BUCKETS];
    for (o, &c) in out.iter_mut().zip(hist) {
        *o = c;
    }
    out
}

/// Mean batch size of a `batch_hist[s - 1] = count` histogram.
fn hist_mean_batch(hist: &[u64]) -> f64 {
    let batches: u64 = hist.iter().sum();
    if batches == 0 {
        return 0.0;
    }
    let requests: u64 = hist.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
    requests as f64 / batches as f64
}

/// Live counters of one venue's traffic — same recording discipline as the
/// aggregate block, one instance per venue ever seen by a submit path.
#[derive(Debug)]
pub(crate) struct VenueStats {
    /// Requests currently enqueued or being executed.
    queue_depth: AtomicUsize,
    /// Requests accepted into the venue's sub-queue since startup.
    enqueued: AtomicU64,
    /// Requests answered (successfully or with a per-request error).
    completed: AtomicU64,
    /// Requests shed because the *global* capacity was exhausted.
    shed_global: AtomicU64,
    /// Requests shed because this venue's own sub-queue cap was hit.
    shed_venue: AtomicU64,
    /// Requests whose deadline expired before a batch executed them.
    expired: AtomicU64,
    /// Batches whose model call panicked (isolated; failed as `Internal`).
    panicked_batches: AtomicU64,
    /// Times this venue's circuit breaker transitioned to Open.
    breaker_trips: AtomicU64,
    /// Requests fast-failed while the venue's breaker was open.
    fast_failed: AtomicU64,
    /// `batch_hist[s - 1]` counts executed single-venue batches of size `s`.
    batch_hist: Vec<AtomicU64>,
    /// Power-of-two microsecond latency buckets (enqueue → reply).
    latency_hist: [AtomicU64; LATENCY_BUCKETS],
}

impl VenueStats {
    fn new(max_batch: usize) -> Self {
        Self {
            queue_depth: AtomicUsize::new(0),
            enqueued: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed_global: AtomicU64::new(0),
            shed_venue: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            panicked_batches: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            fast_failed: AtomicU64::new(0),
            batch_hist: (0..max_batch).map(|_| AtomicU64::new(0)).collect(),
            latency_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub(crate) fn record_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Reverts a [`VenueStats::record_enqueued`] whose push never reached
    /// the sub-queue (shed or shutting down).
    pub(crate) fn record_enqueue_aborted(&self) {
        self.enqueued.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_global(&self) {
        self.shed_global.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_venue(&self) {
        self.shed_venue.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_panicked_batch(&self) {
        self.panicked_batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_fast_failed(&self) {
        self.fast_failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: usize) {
        debug_assert!(size >= 1 && size <= self.batch_hist.len());
        self.batch_hist[size - 1].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, latency: Duration) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency_hist[latency_bucket(latency)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, venue: &str) -> VenueStatsSnapshot {
        VenueStatsSnapshot {
            venue: venue.to_string(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed_global: self.shed_global.load(Ordering::Relaxed),
            shed_venue: self.shed_venue.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            panicked_batches: self.panicked_batches.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            fast_failed: self.fast_failed.load(Ordering::Relaxed),
            batch_hist: self.batch_hist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            latency_hist: self.latency_hist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Shared live counters of one [`crate::LocalizationServer`].
#[derive(Debug)]
pub(crate) struct ServerStats {
    /// Requests currently enqueued or being executed.
    queue_depth: AtomicUsize,
    /// Requests accepted into the queue since startup.
    enqueued: AtomicU64,
    /// Requests answered (successfully or with a per-request error).
    completed: AtomicU64,
    /// Requests rejected at the door because a bounded queue (global or
    /// per-venue) was full.
    rejected: AtomicU64,
    /// Requests whose deadline expired before a batch executed them.
    expired: AtomicU64,
    /// Batches whose model call panicked (isolated; failed as `Internal`).
    panicked_batches: AtomicU64,
    /// `batch_hist[s - 1]` counts executed batches of size `s`.
    batch_hist: Vec<AtomicU64>,
    /// Power-of-two microsecond latency buckets (enqueue → reply).
    latency_hist: [AtomicU64; LATENCY_BUCKETS],
    /// Per-venue breakdowns, created lazily on a venue's first submit.
    venues: RwLock<HashMap<String, Arc<VenueStats>>>,
    /// Histogram width for lazily created venue blocks.
    max_batch: usize,
}

impl ServerStats {
    pub(crate) fn new(max_batch: usize) -> Self {
        Self {
            queue_depth: AtomicUsize::new(0),
            enqueued: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            panicked_batches: AtomicU64::new(0),
            batch_hist: (0..max_batch).map(|_| AtomicU64::new(0)).collect(),
            latency_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            venues: RwLock::new(HashMap::new()),
            max_batch,
        }
    }

    /// The venue's counter block, created on first touch. Hot path: one
    /// read-lock + `Arc` clone per request (submit paths look it up once
    /// and thread the `Arc` through).
    pub(crate) fn venue(&self, venue: &str) -> Arc<VenueStats> {
        if let Some(v) = self.venues.read().unwrap_or_else(|e| e.into_inner()).get(venue) {
            return Arc::clone(v);
        }
        let mut venues = self.venues.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            venues
                .entry(venue.to_string())
                .or_insert_with(|| Arc::new(VenueStats::new(self.max_batch))),
        )
    }

    pub(crate) fn record_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Reverts a [`ServerStats::record_enqueued`] whose send never reached
    /// the queue (channel full or disconnected).
    pub(crate) fn record_enqueue_aborted(&self) {
        self.enqueued.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_panicked_batch(&self) {
        self.panicked_batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: usize) {
        debug_assert!(size >= 1 && size <= self.batch_hist.len());
        self.batch_hist[size - 1].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, latency: Duration) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency_hist[latency_bucket(latency)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let mut venues: Vec<VenueStatsSnapshot> = self
            .venues
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, v)| v.snapshot(name))
            .collect();
        venues.sort_by(|a, b| a.venue.cmp(&b.venue));
        StatsSnapshot {
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            panicked_batches: self.panicked_batches.load(Ordering::Relaxed),
            batch_hist: self.batch_hist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            latency_hist: self.latency_hist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            venues,
        }
    }
}

/// A point-in-time copy of one venue's counters (see
/// [`StatsSnapshot::venues`]). Every executed batch is single-venue under
/// the sharded scheduler, so `batch_hist` here is the venue's *own* encoder
/// batch-size distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VenueStatsSnapshot {
    /// The venue these counters describe.
    pub venue: String,
    /// Requests currently enqueued or being executed for this venue.
    pub queue_depth: usize,
    /// Requests accepted into this venue's sub-queue since startup.
    pub enqueued: u64,
    /// Requests answered (successfully or with a per-request error).
    pub completed: u64,
    /// Requests shed because the server's **global** capacity was full
    /// ([`crate::ServeError::QueueFull`]).
    pub shed_global: u64,
    /// Requests shed because this venue's **own** sub-queue cap was hit
    /// ([`crate::ServeError::VenueQueueFull`]).
    pub shed_venue: u64,
    /// Requests whose deadline expired before a batch executed them
    /// ([`crate::ServeError::DeadlineExceeded`]); expired work never
    /// reaches the model.
    pub expired: u64,
    /// Batches whose model call panicked. Each one was isolated: its
    /// requests failed with [`crate::ServeError::Internal`] and the
    /// executor survived.
    pub panicked_batches: u64,
    /// Times this venue's circuit breaker tripped open (each trip also
    /// attempts a last-good model rollback).
    pub breaker_trips: u64,
    /// Requests fast-failed with [`crate::ServeError::VenueUnavailable`]
    /// while the venue's breaker was open.
    pub fast_failed: u64,
    /// `batch_hist[s - 1]` counts executed single-venue batches of size `s`.
    pub batch_hist: Vec<u64>,
    /// Power-of-two microsecond latency buckets: `latency_hist[i]` counts
    /// requests whose enqueue→reply latency fell in `[2^i, 2^(i+1))` µs.
    pub latency_hist: Vec<u64>,
}

impl VenueStatsSnapshot {
    /// Requests shed for this venue, whatever the cause (global capacity or
    /// the venue's own cap).
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_global + self.shed_venue
    }

    /// Number of single-venue batches executed for this venue.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batch_hist.iter().sum()
    }

    /// Mean executed batch size for this venue (0.0 when no batch ran yet).
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        hist_mean_batch(&self.batch_hist)
    }

    /// The `q`-quantile (`0.0..=1.0`) of this venue's enqueue→reply
    /// latency, rank-interpolated within its power-of-two microsecond
    /// bucket (within 2× of the true value in the worst case; see the
    /// module docs for the full error bound). Returns `None` when no
    /// request completed yet.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    #[must_use]
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        hist_quantile(&self.latency_hist, q)
    }

    /// Median enqueue→reply latency for this venue.
    #[must_use]
    pub fn p50(&self) -> Option<Duration> {
        self.latency_quantile(0.50)
    }

    /// 99th-percentile enqueue→reply latency for this venue.
    #[must_use]
    pub fn p99(&self) -> Option<Duration> {
        self.latency_quantile(0.99)
    }
}

/// A point-in-time copy of a server's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests currently enqueued or being executed.
    pub queue_depth: usize,
    /// Requests accepted into the queue since startup.
    pub enqueued: u64,
    /// Requests answered (successfully or with a per-request error).
    pub completed: u64,
    /// Requests rejected because a bounded queue was full — global capacity
    /// and per-venue cap rejections both land here
    /// ([`crate::ServerHandle::try_locate`] backpressure); the per-venue
    /// entries in [`StatsSnapshot::venues`] split the two causes.
    pub rejected: u64,
    /// Requests whose deadline expired before a batch executed them, across
    /// all venues.
    pub expired: u64,
    /// Batches whose model call panicked (isolated per batch), across all
    /// venues.
    pub panicked_batches: u64,
    /// `batch_hist[s - 1]` counts executed batches of size `s`.
    pub batch_hist: Vec<u64>,
    /// Power-of-two microsecond latency buckets: `latency_hist[i]` counts
    /// requests whose enqueue→reply latency fell in `[2^i, 2^(i+1))` µs.
    pub latency_hist: Vec<u64>,
    /// Per-venue breakdowns, sorted by venue name. A venue appears once any
    /// submit path has touched it (including submits that were shed).
    pub venues: Vec<VenueStatsSnapshot>,
}

impl StatsSnapshot {
    /// Number of batches executed.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batch_hist.iter().sum()
    }

    /// Number of executed batches that coalesced more than one request.
    #[must_use]
    pub fn coalesced_batches(&self) -> u64 {
        self.batch_hist.iter().skip(1).sum()
    }

    /// Mean executed batch size (0.0 when no batch ran yet).
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        hist_mean_batch(&self.batch_hist)
    }

    /// The per-venue breakdown for `venue`, if any submit path touched it.
    #[must_use]
    pub fn venue(&self, venue: &str) -> Option<&VenueStatsSnapshot> {
        self.venues.iter().find(|v| v.venue == venue)
    }

    /// The `q`-quantile (`0.0..=1.0`) of the enqueue→reply latency,
    /// rank-interpolated within its power-of-two microsecond bucket
    /// (within 2× of the true value in the worst case; see the module docs
    /// for the full error bound). Returns `None` when no request completed
    /// yet.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    #[must_use]
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        hist_quantile(&self.latency_hist, q)
    }

    /// Median enqueue→reply latency (see [`StatsSnapshot::latency_quantile`]).
    #[must_use]
    pub fn p50(&self) -> Option<Duration> {
        self.latency_quantile(0.50)
    }

    /// 99th-percentile enqueue→reply latency (see
    /// [`StatsSnapshot::latency_quantile`]).
    #[must_use]
    pub fn p99(&self) -> Option<Duration> {
        self.latency_quantile(0.99)
    }

    /// Renders this snapshot as Prometheus-style exposition text via the
    /// shared `stone-obs` format helpers.
    ///
    /// Aggregate series carry no labels; per-venue series carry
    /// `venue="..."` and the shed breakdown adds `cause="global"|"venue"`.
    /// The output round-trips through [`stone_obs::parse_exposition`] —
    /// pinned by a unit test here and re-checked over the wire by the
    /// loadgen admin smoke.
    #[must_use]
    pub fn exposition(&self) -> String {
        type VenueVal = fn(&VenueStatsSnapshot) -> u64;
        let mut out = String::new();

        write_type(&mut out, "stone_serve_queue_depth", "gauge");
        write_sample(&mut out, "stone_serve_queue_depth", &[], self.queue_depth as f64);
        for v in &self.venues {
            write_sample(
                &mut out,
                "stone_serve_queue_depth",
                &[("venue", &v.venue)],
                v.queue_depth as f64,
            );
        }

        let counters: [(&str, u64, Option<VenueVal>); 6] = [
            ("stone_serve_enqueued_total", self.enqueued, Some(|v| v.enqueued)),
            ("stone_serve_completed_total", self.completed, Some(|v| v.completed)),
            ("stone_serve_rejected_total", self.rejected, None),
            ("stone_serve_expired_total", self.expired, Some(|v| v.expired)),
            (
                "stone_serve_panicked_batches_total",
                self.panicked_batches,
                Some(|v| v.panicked_batches),
            ),
            ("stone_serve_batches_total", self.batches(), Some(VenueStatsSnapshot::batches)),
        ];
        for (name, agg, venue_val) in counters {
            write_type(&mut out, name, "counter");
            write_sample(&mut out, name, &[], agg as f64);
            if let Some(f) = venue_val {
                for v in &self.venues {
                    write_sample(&mut out, name, &[("venue", &v.venue)], f(v) as f64);
                }
            }
        }

        write_type(&mut out, "stone_serve_shed_total", "counter");
        for v in &self.venues {
            write_sample(
                &mut out,
                "stone_serve_shed_total",
                &[("venue", &v.venue), ("cause", "global")],
                v.shed_global as f64,
            );
            write_sample(
                &mut out,
                "stone_serve_shed_total",
                &[("venue", &v.venue), ("cause", "venue")],
                v.shed_venue as f64,
            );
        }
        write_type(&mut out, "stone_serve_breaker_trips_total", "counter");
        for v in &self.venues {
            write_sample(
                &mut out,
                "stone_serve_breaker_trips_total",
                &[("venue", &v.venue)],
                v.breaker_trips as f64,
            );
        }
        write_type(&mut out, "stone_serve_fast_failed_total", "counter");
        for v in &self.venues {
            write_sample(
                &mut out,
                "stone_serve_fast_failed_total",
                &[("venue", &v.venue)],
                v.fast_failed as f64,
            );
        }

        write_type(&mut out, "stone_serve_mean_batch_size", "gauge");
        write_sample(&mut out, "stone_serve_mean_batch_size", &[], self.mean_batch_size());
        for v in &self.venues {
            write_sample(
                &mut out,
                "stone_serve_mean_batch_size",
                &[("venue", &v.venue)],
                v.mean_batch_size(),
            );
        }

        write_type(&mut out, "stone_serve_latency_us", "histogram");
        write_pow2_histogram(
            &mut out,
            "stone_serve_latency_us",
            &[],
            &hist_array(&self.latency_hist),
            None,
        );
        for v in &self.venues {
            write_pow2_histogram(
                &mut out,
                "stone_serve_latency_us",
                &[("venue", &v.venue)],
                &hist_array(&v.latency_hist),
                None,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_histogram_counts_by_size() {
        let stats = ServerStats::new(4);
        stats.record_batch(1);
        stats.record_batch(3);
        stats.record_batch(3);
        let snap = stats.snapshot();
        assert_eq!(snap.batch_hist, vec![1, 0, 2, 0]);
        assert_eq!(snap.batches(), 3);
        assert_eq!(snap.coalesced_batches(), 2);
        let mean = snap.mean_batch_size();
        assert!((mean - 7.0 / 3.0).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn queue_depth_tracks_enqueue_and_complete() {
        let stats = ServerStats::new(2);
        stats.record_enqueued();
        stats.record_enqueued();
        assert_eq!(stats.snapshot().queue_depth, 2);
        stats.record_completed(Duration::from_micros(10));
        let snap = stats.snapshot();
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.enqueued, 2);
        assert_eq!(snap.completed, 1);
    }

    #[test]
    fn latency_quantiles_interpolate_within_buckets() {
        let stats = ServerStats::new(1);
        // 99 fast requests (~8 µs bucket [8, 16)), 1 slow (~1024 µs).
        for _ in 0..99 {
            stats.record_completed(Duration::from_micros(9));
        }
        stats.record_completed(Duration::from_micros(1500));
        let snap = stats.snapshot();
        // Rank ceil(0.5 * 100) = 50, the 50th of 99 bucket occupants:
        // 8 µs · (1 + 50/99) = 12040.40… ns.
        assert_eq!(snap.p50(), Some(Duration::from_nanos(12040)));
        // Rank ceil(0.99 * 100) = 99 — the last occupant of the fast
        // bucket, so the estimate degenerates to its 16 µs upper edge.
        assert_eq!(snap.p99(), Some(Duration::from_micros(16)));
        assert_eq!(snap.latency_quantile(1.0), Some(Duration::from_micros(2048)));
    }

    #[test]
    fn extreme_quantiles_clamp_to_first_and_last_rank() {
        let stats = ServerStats::new(1);
        // Four records in the [8, 16) µs bucket.
        for _ in 0..4 {
            stats.record_completed(Duration::from_micros(9));
        }
        let snap = stats.snapshot();
        // q = 0 → rank clamps to 1 of 4: 8 µs · (1 + 1/4) = 10 µs.
        assert_eq!(snap.latency_quantile(0.0), Some(Duration::from_micros(10)));
        // q = 1 → rank 4 of 4: the bucket's 16 µs upper edge.
        assert_eq!(snap.latency_quantile(1.0), Some(Duration::from_micros(16)));
    }

    #[test]
    fn absurd_latencies_clamp_into_top_bucket() {
        let stats = ServerStats::new(1);
        // ~116 days — far beyond the 2^39 µs last bucket's lower edge.
        stats.record_completed(Duration::from_secs(10_000_000));
        let snap = stats.snapshot();
        assert_eq!(snap.latency_hist[LATENCY_BUCKETS - 1], 1);
        // Sole occupant interpolates to the top bucket's 2^40 µs upper edge.
        assert_eq!(snap.latency_quantile(1.0), Some(Duration::from_micros(1 << 40)));
    }

    #[test]
    fn exposition_round_trips_through_the_obs_parser() {
        let stats = ServerStats::new(4);
        stats.record_enqueued();
        stats.record_enqueued();
        stats.record_batch(2);
        stats.record_completed(Duration::from_micros(9));
        stats.record_completed(Duration::from_micros(1500));
        stats.record_rejected();
        let v = stats.venue("hall-a");
        v.record_enqueued();
        v.record_batch(1);
        v.record_completed(Duration::from_micros(9));
        v.record_shed_venue();
        v.record_breaker_trip();

        let text = stats.snapshot().exposition();
        let samples = stone_obs::parse_exposition(&text).expect("exposition parses");
        let find = |name: &str, labels: &[(&str, &str)]| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && s.labels.len() == labels.len()
                        && s.labels.iter().zip(labels).all(|((k, v), (ek, ev))| k == ek && v == ev)
                })
                .unwrap_or_else(|| panic!("sample {name}{labels:?} missing"))
                .value
        };
        assert_eq!(find("stone_serve_enqueued_total", &[]), 2.0);
        assert_eq!(find("stone_serve_completed_total", &[]), 2.0);
        assert_eq!(find("stone_serve_rejected_total", &[]), 1.0);
        assert_eq!(find("stone_serve_batches_total", &[]), 1.0);
        assert_eq!(find("stone_serve_mean_batch_size", &[]), 2.0);
        assert_eq!(find("stone_serve_enqueued_total", &[("venue", "hall-a")]), 1.0);
        assert_eq!(find("stone_serve_shed_total", &[("venue", "hall-a"), ("cause", "venue")]), 1.0);
        assert_eq!(find("stone_serve_breaker_trips_total", &[("venue", "hall-a")]), 1.0);
        // Histogram lines are cumulative: both aggregate completions are
        // under the +Inf bucket, only the fast one under le="16".
        assert_eq!(find("stone_serve_latency_us_count", &[]), 2.0);
        assert_eq!(find("stone_serve_latency_us_bucket", &[("le", "+Inf")]), 2.0);
        assert_eq!(find("stone_serve_latency_us_bucket", &[("le", "16")]), 1.0);
    }

    #[test]
    fn empty_stats_have_no_quantiles() {
        let snap = ServerStats::new(1).snapshot();
        assert_eq!(snap.p50(), None);
        assert_eq!(snap.mean_batch_size(), 0.0);
        assert!(snap.venues.is_empty());
    }

    #[test]
    fn sub_microsecond_latencies_clamp_into_first_bucket() {
        let stats = ServerStats::new(1);
        stats.record_completed(Duration::from_nanos(1));
        assert_eq!(stats.snapshot().latency_quantile(1.0), Some(Duration::from_micros(2)));
    }

    #[test]
    fn venue_breakdowns_split_shed_causes_and_sort_by_name() {
        let stats = ServerStats::new(4);
        let b = stats.venue("b");
        let a = stats.venue("a");
        a.record_enqueued();
        a.record_batch(1);
        a.record_completed(Duration::from_micros(9));
        b.record_enqueued();
        b.record_enqueue_aborted();
        b.record_shed_global();
        b.record_shed_venue();
        b.record_shed_venue();

        let snap = stats.snapshot();
        let names: Vec<&str> = snap.venues.iter().map(|v| v.venue.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        let a = snap.venue("a").expect("venue a tracked");
        assert_eq!((a.enqueued, a.completed, a.queue_depth), (1, 1, 0));
        assert_eq!(a.batch_hist, vec![1, 0, 0, 0]);
        assert!((a.mean_batch_size() - 1.0).abs() < 1e-12);
        assert_eq!(a.p50(), Some(Duration::from_micros(16)));
        let b = snap.venue("b").expect("venue b tracked");
        assert_eq!((b.enqueued, b.queue_depth), (0, 0), "aborted enqueue reverted");
        assert_eq!((b.shed_global, b.shed_venue, b.shed()), (1, 2, 3));
        assert_eq!(b.p50(), None);
        assert!(snap.venue("c").is_none());
        // The same Arc is returned on re-lookup.
        stats.venue("a").record_enqueued();
        assert_eq!(stats.snapshot().venue("a").expect("venue a").enqueued, 2);
    }
}
