//! Deterministic fault injection for the serving stack.
//!
//! The resilience contract of PR 9 — panic-isolated batches, the per-venue
//! circuit breaker, last-good model rollback — only means something if it
//! can be *demonstrated*, repeatedly, in CI. This module provides the
//! demonstration hooks: a [`ChaosConfig`] of rules that make the model
//! path panic or stall for chosen venues (optionally gated on a specific
//! model **version**, so "v2 is broken, v1 is fine" scenarios resolve
//! deterministically once the breaker rolls the venue back), plus a
//! [`corrupt_blob`] helper for testing that a corrupted publish is rejected
//! by the blob checksum and never reaches serving.
//!
//! Faults fire inside the scheduler's `catch_unwind` region, exactly where
//! a real model bug would: after the batch's registry snapshot is taken,
//! before `locate_batch` runs.
//!
//! Rules come from two places:
//!
//! * programmatically, via [`crate::LocalizationServer::start_with_chaos`]
//!   — what the test suites use (no env-var races between parallel tests);
//! * the `STONE_CHAOS` environment variable, read by
//!   [`crate::LocalizationServer::start`] — what the chaos fleet smoke in
//!   CI and the examples use. The format is comma-separated rules:
//!   `panic:<venue>[@<version>][:<count>]` or
//!   `stall:<venue>[@<version>]:<millis>[:<count>]`, e.g.
//!   `STONE_CHAOS=panic:office@2,stall:cafe:5:10` panics every batch served
//!   by "office" model v2 and stalls the first 10 "cafe" batches 5 ms each.
//!
//! Injected panics unwind via [`std::panic::resume_unwind`], so they do not
//! spam the default panic hook's backtrace while still exercising the full
//! isolation path.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// One fault to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosFault {
    /// Panic the batch (caught by the scheduler's isolation; the batch
    /// fails with [`crate::ServeError::Internal`]).
    Panic,
    /// Sleep this long before executing the batch — a stalling model.
    Stall(Duration),
}

/// One injection rule: which venue, which model version, what fault, how
/// many times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosRule {
    /// The venue whose batches this rule hits.
    pub venue: String,
    /// Only fire when the batch executes against this model version
    /// (`None` = any version). Version gating is what makes
    /// breaker-rollback scenarios deterministic: a rule pinned to the bad
    /// version stops firing the moment the rollback restores the previous
    /// one.
    pub version: Option<u64>,
    /// The fault to inject.
    pub fault: ChaosFault,
    /// How many batches to hit (`None` = every matching batch).
    pub count: Option<u32>,
}

/// A set of fault-injection rules, normally empty.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    rules: Vec<ChaosRule>,
}

impl ChaosConfig {
    /// No fault injection (the default).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a panic rule: batches for `venue` (optionally only under model
    /// `version`, optionally only the first `count` of them) panic.
    #[must_use]
    pub fn with_panic(mut self, venue: &str, version: Option<u64>, count: Option<u32>) -> Self {
        self.rules.push(ChaosRule {
            venue: venue.to_string(),
            version,
            fault: ChaosFault::Panic,
            count,
        });
        self
    }

    /// Adds a stall rule: batches for `venue` sleep `stall` before
    /// executing.
    #[must_use]
    pub fn with_stall(
        mut self,
        venue: &str,
        version: Option<u64>,
        stall: Duration,
        count: Option<u32>,
    ) -> Self {
        self.rules.push(ChaosRule {
            venue: venue.to_string(),
            version,
            fault: ChaosFault::Stall(stall),
            count,
        });
        self
    }

    /// True when no rule is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parses a `STONE_CHAOS` specification (see the module docs for the
    /// grammar).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed rule.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        for rule in spec.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            let parts: Vec<&str> = rule.split(':').collect();
            let (kind, target) = match parts.as_slice() {
                [kind, target, ..] => (*kind, *target),
                _ => return Err(format!("chaos rule {rule:?}: expected <kind>:<venue>...")),
            };
            let (venue, version) = match target.split_once('@') {
                Some((v, ver)) => {
                    let ver = ver
                        .parse::<u64>()
                        .map_err(|_| format!("chaos rule {rule:?}: bad version {ver:?}"))?;
                    (v, Some(ver))
                }
                None => (target, None),
            };
            if venue.is_empty() {
                return Err(format!("chaos rule {rule:?}: empty venue"));
            }
            let parse_count = |s: &str| {
                s.parse::<u32>().map_err(|_| format!("chaos rule {rule:?}: bad count {s:?}"))
            };
            match kind {
                "panic" => {
                    let count = match parts.as_slice() {
                        [_, _] => None,
                        [_, _, c] => Some(parse_count(c)?),
                        _ => return Err(format!("chaos rule {rule:?}: too many fields")),
                    };
                    cfg.rules.push(ChaosRule {
                        venue: venue.to_string(),
                        version,
                        fault: ChaosFault::Panic,
                        count,
                    });
                }
                "stall" => {
                    let (millis, count) = match parts.as_slice() {
                        [_, _, m] => (*m, None),
                        [_, _, m, c] => (*m, Some(parse_count(c)?)),
                        _ => {
                            return Err(format!(
                                "chaos rule {rule:?}: expected stall:<venue>:<millis>[:<count>]"
                            ))
                        }
                    };
                    let millis = millis
                        .parse::<u64>()
                        .map_err(|_| format!("chaos rule {rule:?}: bad stall millis {millis:?}"))?;
                    cfg.rules.push(ChaosRule {
                        venue: venue.to_string(),
                        version,
                        fault: ChaosFault::Stall(Duration::from_millis(millis)),
                        count,
                    });
                }
                other => return Err(format!("chaos rule {rule:?}: unknown kind {other:?}")),
            }
        }
        Ok(cfg)
    }

    /// The configuration named by the `STONE_CHAOS` environment variable
    /// (empty when unset).
    ///
    /// # Panics
    ///
    /// Panics on a malformed specification — chaos is a deliberate dev/CI
    /// knob, and a silently ignored typo would fake a passing chaos run.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("STONE_CHAOS") {
            Ok(spec) => match Self::parse(&spec) {
                Ok(cfg) => cfg,
                Err(e) => panic!("invalid STONE_CHAOS: {e}"),
            },
            Err(_) => Self::default(),
        }
    }
}

/// One rule armed with its remaining-fire budget.
#[derive(Debug)]
struct ArmedRule {
    rule: ChaosRule,
    /// Batches this rule may still hit; `u32::MAX` means unlimited.
    remaining: AtomicU32,
}

impl ArmedRule {
    fn try_consume(&self) -> bool {
        loop {
            let cur = self.remaining.load(Ordering::Relaxed);
            if cur == u32::MAX {
                return true;
            }
            if cur == 0 {
                return false;
            }
            if self
                .remaining
                .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }
}

/// The runtime form of a [`ChaosConfig`], owned by the server's shared
/// state.
#[derive(Debug)]
pub(crate) struct ChaosState {
    rules: Vec<ArmedRule>,
}

impl ChaosState {
    pub(crate) fn new(cfg: ChaosConfig) -> Self {
        Self {
            rules: cfg
                .rules
                .into_iter()
                .map(|rule| ArmedRule {
                    remaining: AtomicU32::new(rule.count.map_or(u32::MAX, |c| c.min(u32::MAX - 1))),
                    rule,
                })
                .collect(),
        }
    }

    /// Invoked by the scheduler inside its panic-isolation region, right
    /// before the model call, with the batch's venue and the model version
    /// its snapshot carries. May sleep (stall rules) or unwind (panic
    /// rules).
    pub(crate) fn before_batch(&self, venue: &str, version: u64) {
        for armed in &self.rules {
            let rule = &armed.rule;
            if rule.venue != venue || rule.version.is_some_and(|v| v != version) {
                continue;
            }
            if !armed.try_consume() {
                continue;
            }
            match rule.fault {
                // resume_unwind skips the panic hook: an *injected* panic
                // should exercise the isolation path without spamming
                // backtraces over every chaos test run.
                ChaosFault::Panic => std::panic::resume_unwind(Box::new(format!(
                    "stone-chaos: injected panic for venue {venue:?} (model v{version})"
                ))),
                ChaosFault::Stall(d) => std::thread::sleep(d),
            }
        }
    }
}

/// Returns a copy of `blob` with one byte flipped deep inside it — past
/// every header, inside the weight/reference payload. Deterministic: the
/// same blob always corrupts the same way. Feeding the result to
/// [`crate::ModelRegistry::publish_bytes`] must fail with
/// [`stone::ModelIoError::ChecksumMismatch`], leaving the venue's current
/// model serving — the corrupt-publish-under-fire test scenario.
#[must_use]
pub fn corrupt_blob(blob: &[u8]) -> Vec<u8> {
    let mut bad = blob.to_vec();
    if !bad.is_empty() {
        let mid = bad.len() * 2 / 3;
        bad[mid] ^= 0x40;
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_panic_and_stall_rules() {
        let cfg = ChaosConfig::parse("panic:office@2,stall:cafe:5:10,panic:lab:3").unwrap();
        assert_eq!(
            cfg,
            ChaosConfig::none()
                .with_panic("office", Some(2), None)
                .with_stall("cafe", None, Duration::from_millis(5), Some(10))
                .with_panic("lab", None, Some(3))
        );
        assert!(ChaosConfig::parse("").unwrap().is_empty());
        assert!(ChaosConfig::parse("  ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in ["panic", "panic:", "explode:v", "panic:v@x", "stall:v", "stall:v:abc"] {
            assert!(ChaosConfig::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn version_gate_and_budget_limit_fires() {
        let state = ChaosState::new(ChaosConfig::none().with_panic("office", Some(2), Some(2)));
        // Wrong venue / wrong version: no fire.
        state.before_batch("cafe", 2);
        state.before_batch("office", 1);
        // Right venue + version: fires (twice), then the budget is spent.
        for _ in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                state.before_batch("office", 2);
            }));
            assert!(r.is_err(), "panic rule must fire while budget remains");
        }
        state.before_batch("office", 2); // budget spent: no panic
    }

    #[test]
    fn corrupt_blob_differs_in_exactly_one_byte() {
        let blob = vec![0u8; 99];
        let bad = corrupt_blob(&blob);
        assert_eq!(bad.len(), blob.len());
        let diffs: Vec<usize> = (0..blob.len()).filter(|&i| blob[i] != bad[i]).collect();
        assert_eq!(diffs, vec![66]);
    }
}
