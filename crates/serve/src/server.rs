//! The batching localization server.
//!
//! Clients submit *single* scans; a small pool of batch executors pulls
//! them off a bounded queue and coalesces whatever is waiting (up to
//! [`ServerConfig::max_batch`], waiting at most [`ServerConfig::max_wait`]
//! for stragglers) into one [`stone::StoneLocalizer::locate_batch`] call —
//! the path that amortizes the encoder forward pass and unlocks the
//! parallel kernels. Results are **bitwise identical** to per-scan
//! `Localizer::locate` calls on the same model snapshot: batching changes
//! cost, never answers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stone_radio::Point2;

use crate::registry::ModelRegistry;
use crate::stats::{ServerStats, StatsSnapshot};

/// Why a localization request failed. Always per-request: one bad query
/// never takes down a batch, a worker, or the server.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// No model is published for the requested venue.
    UnknownVenue {
        /// The venue the client asked for.
        venue: String,
    },
    /// The venue's model has an empty reference set and cannot answer.
    EmptyModel {
        /// The venue whose model is empty.
        venue: String,
    },
    /// The scan's AP count does not match the venue's model.
    ScanDimensionMismatch {
        /// The venue the client asked for.
        venue: String,
        /// AP universe of the published model.
        expected: usize,
        /// Length of the submitted scan.
        got: usize,
    },
    /// The bounded request queue is full (backpressure; only
    /// [`ServerHandle::try_locate`]/[`ServerHandle::try_submit`] report
    /// this — the blocking variants wait for a slot instead).
    QueueFull,
    /// The server is shutting down (or already gone).
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownVenue { venue } => write!(f, "no model published for {venue:?}"),
            ServeError::EmptyModel { venue } => {
                write!(f, "model for {venue:?} has no reference embeddings")
            }
            ServeError::ScanDimensionMismatch { venue, expected, got } => {
                write!(f, "scan has {got} APs but the model for {venue:?} expects {expected}")
            }
            ServeError::QueueFull => write!(f, "request queue full"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successful localization answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocateResponse {
    /// The predicted floorplan position.
    pub position: Point2,
    /// Version of the model snapshot that produced the answer (see
    /// [`crate::ModelEntry::version`]) — lets callers attribute every
    /// response to an exact model across warm reloads.
    pub model_version: u64,
}

/// Knobs of one [`LocalizationServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Most requests coalesced into one `locate_batch` call. 1 disables
    /// batching (every request runs alone — the baseline the micro benches
    /// compare against).
    pub max_batch: usize,
    /// How long an executor holds an under-full batch open for stragglers
    /// once the queue runs dry. Requests already queued always coalesce
    /// without waiting (adaptive batching: whatever piled up while the
    /// previous batch executed forms the next one), so the default of
    /// **zero** adds no latency and still batches under concurrent load.
    /// A positive window grows batches further at the cost of p50 latency
    /// — worthwhile when per-batch fixed cost dominates per-scan cost.
    pub max_wait: Duration,
    /// Capacity of the bounded request queue: the backpressure boundary.
    /// Blocking submits wait for a slot; `try_` submits return
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Batch executor threads. The default 1 is usually right: a coalesced
    /// batch already fans out across `STONE_THREADS` inside the batched
    /// kernels (via the long-lived `stone-par` worker pool, so entering a
    /// parallel region costs microseconds, not a thread spawn). With
    /// several executors each runs its batch inside
    /// [`stone_par::inline_scope`] instead, so concurrent batches never
    /// oversubscribe the machine (executors × kernel threads).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { max_batch: 64, max_wait: Duration::ZERO, queue_capacity: 1024, workers: 1 }
    }
}

impl ServerConfig {
    fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be at least 1");
        assert!(self.queue_capacity > 0, "queue_capacity must be at least 1");
        assert!(self.workers > 0, "workers must be at least 1");
    }
}

/// How a request's answer travels back to whoever submitted it.
enum Reply {
    /// In-process submit: the sending half of a [`PendingLocate`] ticket.
    Channel(mpsc::Sender<Result<LocateResponse, ServeError>>),
    /// Callback submit ([`ServerHandle::try_submit_with`]): invoked exactly
    /// once from the executor thread — the wire front-end path, where the
    /// callback enqueues a response frame on the connection's writer.
    Callback(ReplyCallback),
}

impl Reply {
    fn send(self, result: Result<LocateResponse, ServeError>) {
        match self {
            // A client that gave up and dropped its ticket is not an error.
            Reply::Channel(tx) => drop(tx.send(result)),
            Reply::Callback(cb) => cb.call(result),
        }
    }
}

/// The boxed form of a [`ServerHandle::try_submit_with`] callback.
type BoxedReply = Box<dyn FnOnce(Result<LocateResponse, ServeError>) + Send>;

/// An exactly-once reply callback with a drop guarantee: if the server ever
/// drops a request without answering it (torn down mid-flight), the callback
/// still fires with [`ServeError::ShuttingDown`], so a wire front-end can
/// always send *some* response frame and its writer never hangs.
struct ReplyCallback(Option<BoxedReply>);

impl ReplyCallback {
    fn call(mut self, result: Result<LocateResponse, ServeError>) {
        if let Some(f) = self.0.take() {
            f(result);
        }
    }
}

impl Drop for ReplyCallback {
    fn drop(&mut self) {
        if let Some(f) = self.0.take() {
            f(Err(ServeError::ShuttingDown));
        }
    }
}

/// One queued localization request.
struct Request {
    venue: String,
    rssi: Vec<f32>,
    enqueued: Instant,
    reply: Reply,
}

enum Job {
    Locate(Request),
    /// Consumed by exactly one executor, which drains its current batch and
    /// exits; [`LocalizationServer::shutdown`] sends one per executor.
    Shutdown,
}

/// State shared between the server, its handles and its executors.
struct Shared {
    stats: ServerStats,
    accepting: AtomicBool,
    /// While `true`, executors park before collecting a batch: requests
    /// accumulate in the bounded queue but none executes. This is the
    /// deterministic window [`LocalizationServer::start_paused`] opens for
    /// the backpressure contract tests.
    paused: Mutex<bool>,
    resume_cv: Condvar,
}

impl Shared {
    fn resume(&self) {
        let mut paused = self.paused.lock().expect("pause lock");
        if *paused {
            *paused = false;
            self.resume_cv.notify_all();
        }
    }
}

/// A long-running localization service over a [`ModelRegistry`].
///
/// See the crate docs for the architecture; the acceptance contract
/// (coalescing observable in the batch histogram, warm reload with zero
/// dropped queries, responses bitwise-equal to direct `locate` calls on the
/// same snapshot) is pinned by `tests/server_smoke.rs`.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use stone::StoneBuilder;
/// use stone_dataset::{office_suite, SuiteConfig};
/// use stone_serve::{LocalizationServer, ModelRegistry, ServerConfig};
///
/// let suite = office_suite(&SuiteConfig::tiny(1));
/// let registry = Arc::new(ModelRegistry::new());
/// registry.publish("office", StoneBuilder::quick().fit(&suite.train, 1));
///
/// let server = LocalizationServer::start(registry, ServerConfig::default());
/// let handle = server.handle();
/// let resp = handle.locate("office", &suite.train.records()[0].rssi).unwrap();
/// println!("located at {} by model v{}", resp.position, resp.model_version);
/// server.shutdown();
/// ```
pub struct LocalizationServer {
    registry: Arc<ModelRegistry>,
    tx: SyncSender<Job>,
    shared: Arc<Shared>,
    cfg: ServerConfig,
    workers: Vec<JoinHandle<()>>,
}

impl LocalizationServer {
    /// Starts the executor threads and returns the running server.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate (zero `max_batch`,
    /// `queue_capacity` or `workers`) or a thread cannot be spawned.
    #[must_use]
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Self {
        Self::start_inner(registry, cfg, false)
    }

    /// Like [`LocalizationServer::start`], but the executors begin *parked*:
    /// submits are accepted into the bounded queue (up to `queue_capacity`)
    /// yet nothing executes until [`LocalizationServer::resume`] is called.
    /// This turns "queue full" from a race into a deterministic state — the
    /// backpressure contract tests fill the queue, observe exactly the
    /// overflow being shed, then resume.
    ///
    /// # Panics
    ///
    /// Same conditions as [`LocalizationServer::start`].
    #[must_use]
    pub fn start_paused(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Self {
        Self::start_inner(registry, cfg, true)
    }

    /// Unparks the executors of a [`LocalizationServer::start_paused`]
    /// server. Idempotent; a no-op on a server started normally.
    pub fn resume(&self) {
        self.shared.resume();
    }

    fn start_inner(registry: Arc<ModelRegistry>, cfg: ServerConfig, paused: bool) -> Self {
        cfg.validate();
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            stats: ServerStats::new(cfg.max_batch),
            accepting: AtomicBool::new(true),
            paused: Mutex::new(paused),
            resume_cv: Condvar::new(),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let registry = Arc::clone(&registry);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stone-serve-{i}"))
                    .spawn(move || executor_loop(&rx, &registry, &shared, cfg))
                    .expect("spawn executor thread")
            })
            .collect();
        Self { registry, tx, shared, cfg, workers }
    }

    /// A cloneable client handle feeding this server's queue.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { tx: self.tx.clone(), shared: Arc::clone(&self.shared) }
    }

    /// The registry this server resolves venues against (publish retrained
    /// models here; the next batch picks them up).
    #[must_use]
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The server's configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// A point-in-time copy of the server's counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stops accepting new requests, drains every request already queued,
    /// and joins the executor threads. Queued requests are *answered*, not
    /// dropped — the zero-dropped-queries half of the warm-reload story.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.shared.accepting.store(false, Ordering::SeqCst);
        // Parked executors must wake up to drain (and to make room for the
        // Shutdown jobs below when the queue is full).
        self.shared.resume();
        // One Shutdown per executor, behind everything already queued; a
        // full queue just means we wait for the drain to make room.
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Job::Shutdown);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for LocalizationServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for LocalizationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LocalizationServer({:?}, venues={})", self.cfg, self.registry.len())
    }
}

/// A client-side handle: submit scans, get positions. Cloneable and
/// shareable across client threads.
#[derive(Clone)]
pub struct ServerHandle {
    tx: SyncSender<Job>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    fn request(
        &self,
        venue: &str,
        rssi: &[f32],
    ) -> (Job, mpsc::Receiver<Result<LocateResponse, ServeError>>) {
        let (reply, rx) = mpsc::channel();
        let job = Job::Locate(Request {
            venue: venue.to_string(),
            rssi: rssi.to_vec(),
            enqueued: Instant::now(),
            reply: Reply::Channel(reply),
        });
        (job, rx)
    }

    /// Enqueues a scan, **blocking while the queue is full** (backpressure),
    /// and returns a ticket to collect the answer. Submitting without
    /// immediately waiting is how a client pipelines many scans into one
    /// coalescing window.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] when the server no longer
    /// accepts requests.
    pub fn submit(&self, venue: &str, rssi: &[f32]) -> Result<PendingLocate, ServeError> {
        if !self.shared.accepting.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let (job, rx) = self.request(venue, rssi);
        // Count the request in *before* the send: a fast executor may pull
        // and complete it before this thread runs again, and queue_depth
        // must never transiently underflow.
        self.shared.stats.record_enqueued();
        if self.tx.send(job).is_err() {
            self.shared.stats.record_enqueue_aborted();
            return Err(ServeError::ShuttingDown);
        }
        Ok(PendingLocate { rx })
    }

    /// Like [`ServerHandle::submit`], but fails fast with
    /// [`ServeError::QueueFull`] instead of blocking when the bounded queue
    /// has no slot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] or [`ServeError::ShuttingDown`].
    pub fn try_submit(&self, venue: &str, rssi: &[f32]) -> Result<PendingLocate, ServeError> {
        if !self.shared.accepting.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let (job, rx) = self.request(venue, rssi);
        // Same enqueue-before-send ordering as `submit`.
        self.shared.stats.record_enqueued();
        match self.tx.try_send(job) {
            Ok(()) => Ok(PendingLocate { rx }),
            Err(TrySendError::Full(_)) => {
                self.shared.stats.record_enqueue_aborted();
                self.shared.stats.record_rejected();
                Err(ServeError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.shared.stats.record_enqueue_aborted();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Like [`ServerHandle::try_submit`], but the answer is delivered by
    /// invoking `reply` from the executor thread instead of through a
    /// [`PendingLocate`] ticket — the submit path a wire front-end uses to
    /// write responses back in **completion order** (a shed response for a
    /// late request can overtake the answer to an earlier queued one).
    ///
    /// The callback is invoked **exactly once** for every call, including
    /// failed submits: on [`ServeError::QueueFull`] /
    /// [`ServeError::ShuttingDown`] it fires inline with that error (and the
    /// same error is also returned, so the caller can stop reading without
    /// inspecting responses). If the server is torn down with the request
    /// still queued, the callback fires with `ShuttingDown`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] or [`ServeError::ShuttingDown`];
    /// the callback has already been invoked with the same error.
    pub fn try_submit_with<F>(&self, venue: &str, rssi: &[f32], reply: F) -> Result<(), ServeError>
    where
        F: FnOnce(Result<LocateResponse, ServeError>) + Send + 'static,
    {
        let cb = ReplyCallback(Some(Box::new(reply)));
        if !self.shared.accepting.load(Ordering::SeqCst) {
            cb.call(Err(ServeError::ShuttingDown));
            return Err(ServeError::ShuttingDown);
        }
        let job = Job::Locate(Request {
            venue: venue.to_string(),
            rssi: rssi.to_vec(),
            enqueued: Instant::now(),
            reply: Reply::Callback(cb),
        });
        // Same enqueue-before-send ordering as `submit`.
        self.shared.stats.record_enqueued();
        let reclaim = |job: Job| match job {
            Job::Locate(req) => match req.reply {
                Reply::Callback(cb) => cb,
                Reply::Channel(_) => unreachable!("submitted job carries a callback reply"),
            },
            Job::Shutdown => unreachable!("submitted job is a Locate"),
        };
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) => {
                self.shared.stats.record_enqueue_aborted();
                self.shared.stats.record_rejected();
                reclaim(job).call(Err(ServeError::QueueFull));
                Err(ServeError::QueueFull)
            }
            Err(TrySendError::Disconnected(job)) => {
                self.shared.stats.record_enqueue_aborted();
                reclaim(job).call(Err(ServeError::ShuttingDown));
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Submits one scan and blocks until its answer arrives.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] except `QueueFull` (a full queue blocks instead).
    pub fn locate(&self, venue: &str, rssi: &[f32]) -> Result<LocateResponse, ServeError> {
        self.submit(venue, rssi)?.wait()
    }

    /// Submits one scan, failing fast when the queue is full, and blocks
    /// until its answer arrives.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`], including `QueueFull`.
    pub fn try_locate(&self, venue: &str, rssi: &[f32]) -> Result<LocateResponse, ServeError> {
        self.try_submit(venue, rssi)?.wait()
    }

    /// A point-in-time copy of the server's counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerHandle(queue_depth={})", self.shared.stats.snapshot().queue_depth)
    }
}

/// A submitted request whose answer has not been collected yet.
#[derive(Debug)]
pub struct PendingLocate {
    rx: mpsc::Receiver<Result<LocateResponse, ServeError>>,
}

impl PendingLocate {
    /// Blocks until the answer arrives.
    ///
    /// # Errors
    ///
    /// The request's own [`ServeError`], or [`ServeError::ShuttingDown`]
    /// when the server died before answering.
    pub fn wait(self) -> Result<LocateResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// One executor thread: pull a request, hold the batch open for up to
/// `max_wait`, execute, repeat.
fn executor_loop(
    rx: &Mutex<Receiver<Job>>,
    registry: &ModelRegistry,
    shared: &Shared,
    cfg: ServerConfig,
) {
    loop {
        // Park while paused (`start_paused`): the bounded queue keeps
        // accepting but nothing executes until `resume` — see Shared::paused.
        {
            let mut paused = shared.paused.lock().expect("pause lock");
            while *paused {
                paused = shared.resume_cv.wait(paused).expect("pause lock");
            }
        }
        // The queue lock is held only while *collecting* a batch (which
        // also serializes the coalescing window across executors); batch
        // execution runs unlocked so other executors can pull concurrently.
        let (batch, saw_shutdown) = {
            let rx = rx.lock().expect("queue lock");
            let first = match rx.recv() {
                Err(_) => return, // server and all handles gone
                Ok(Job::Shutdown) => return,
                Ok(Job::Locate(req)) => req,
            };
            let mut batch = vec![first];
            let mut saw_shutdown = false;
            let deadline = Instant::now() + cfg.max_wait;
            while batch.len() < cfg.max_batch {
                // Drain whatever is already queued without waiting —
                // adaptive batching: requests that piled up while the
                // previous batch executed coalesce for free.
                match rx.try_recv() {
                    Ok(Job::Locate(req)) => {
                        batch.push(req);
                        continue;
                    }
                    Ok(Job::Shutdown) => {
                        saw_shutdown = true;
                        break;
                    }
                    Err(TryRecvError::Disconnected) => break,
                    Err(TryRecvError::Empty) => {}
                }
                // Queue empty: hold the batch open only inside the
                // max_wait window (zero by default — see ServerConfig).
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(Job::Locate(req)) => batch.push(req),
                    Ok(Job::Shutdown) => {
                        saw_shutdown = true;
                        break;
                    }
                    Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
                }
            }
            (batch, saw_shutdown)
        };
        execute_batch(registry, shared, &cfg, batch);
        if saw_shutdown {
            return;
        }
    }
}

/// Answers every request of one coalesced batch: group by venue, snapshot
/// each venue's model once (the consistency unit across warm reloads), one
/// `locate_batch` per group.
fn execute_batch(
    registry: &ModelRegistry,
    shared: &Shared,
    cfg: &ServerConfig,
    batch: Vec<Request>,
) {
    shared.stats.record_batch(batch.len());

    // Group request indices by venue, preserving first-seen order (batches
    // hold a handful of venues at most — linear scan beats a map here).
    let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
    for (i, r) in batch.iter().enumerate() {
        match groups.iter_mut().find(|(v, _)| *v == r.venue) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((&r.venue, vec![i])),
        }
    }

    let mut results: Vec<Option<Result<LocateResponse, ServeError>>> = Vec::new();
    results.resize_with(batch.len(), || None);
    for (venue, idxs) in groups {
        let Some(entry) = registry.snapshot(venue) else {
            for &i in &idxs {
                results[i] = Some(Err(ServeError::UnknownVenue { venue: venue.to_string() }));
            }
            continue;
        };
        if entry.model().knn().is_empty() {
            for &i in &idxs {
                results[i] = Some(Err(ServeError::EmptyModel { venue: venue.to_string() }));
            }
            continue;
        }
        let expected = entry.model().encoder().codec().ap_count();
        let mut ok_idx = Vec::with_capacity(idxs.len());
        for &i in &idxs {
            let got = batch[i].rssi.len();
            if got == expected {
                ok_idx.push(i);
            } else {
                results[i] = Some(Err(ServeError::ScanDimensionMismatch {
                    venue: venue.to_string(),
                    expected,
                    got,
                }));
            }
        }
        if ok_idx.is_empty() {
            continue;
        }
        let scans: Vec<&[f32]> = ok_idx.iter().map(|&i| batch[i].rssi.as_slice()).collect();
        let positions: Vec<Point2> = if cfg.workers > 1 {
            // Several executors may be running batches concurrently: each
            // keeps its kernels inline so the machine is not oversubscribed
            // (see ServerConfig::workers).
            stone_par::inline_scope(|| entry.model().locate_batch(&scans))
        } else {
            entry.model().locate_batch(&scans)
        };
        for (&i, position) in ok_idx.iter().zip(positions) {
            results[i] = Some(Ok(LocateResponse { position, model_version: entry.version() }));
        }
    }

    for (req, result) in batch.into_iter().zip(results) {
        let result = result.expect("every request of the batch is answered");
        // Record completion *before* the reply lands: the moment a client's
        // wait() returns, a stats() snapshot must already account for its
        // request (the smoke test reads exact counts right after the last
        // reply).
        shared.stats.record_completed(req.enqueued.elapsed());
        req.reply.send(result);
    }
}
