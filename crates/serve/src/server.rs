//! The batching localization server: public API and lifecycle.
//!
//! Clients submit *single* scans; a small pool of batch executors pulls
//! **single-venue** batches off the venue-sharded queue (see
//! [`crate::queue`]) and coalesces whatever is waiting for that venue (up
//! to [`ServerConfig::max_batch`], holding an under-full batch open at most
//! [`ServerConfig::max_wait`] past its oldest request) into one
//! [`stone::StoneLocalizer::locate_batch`] call — the path that amortizes
//! the encoder forward pass and unlocks the parallel kernels. Results are
//! **bitwise identical** to per-scan `Localizer::locate` calls on the same
//! model snapshot: batching changes cost, never answers.
//!
//! This module owns the public surface (errors, config, handles, tickets);
//! the queue discipline lives in `queue.rs` and the drain policy plus batch
//! execution in `scheduler.rs`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stone_radio::Point2;

use crate::breaker::{BreakerSet, BreakerState};
use crate::chaos::{ChaosConfig, ChaosState};
use crate::queue::{Reply, ReplyCallback, Request, ShardedQueue, TryPushError};
use crate::registry::ModelRegistry;
use crate::scheduler::executor_loop;
use crate::stats::{ServerStats, StatsSnapshot, VenueStats, VenueStatsSnapshot};

/// A fresh trace ID when tracing is enabled, `0` (untraced) otherwise —
/// the submit-side cost of disabled tracing is this one relaxed load.
fn fresh_trace_id() -> u64 {
    if stone_obs::tracing_enabled() {
        stone_obs::mint_trace_id()
    } else {
        0
    }
}

/// Why a localization request failed. Always per-request: one bad query
/// never takes down a batch, a worker, or the server.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// No model is published for the requested venue.
    UnknownVenue {
        /// The venue the client asked for.
        venue: String,
    },
    /// The venue's model has an empty reference set and cannot answer.
    EmptyModel {
        /// The venue whose model is empty.
        venue: String,
    },
    /// The scan's AP count does not match the venue's model.
    ScanDimensionMismatch {
        /// The venue the client asked for.
        venue: String,
        /// AP universe of the published model.
        expected: usize,
        /// Length of the submitted scan.
        got: usize,
    },
    /// The **shared global capacity** of the bounded request queue is full
    /// (backpressure; only [`ServerHandle::try_locate`]/
    /// [`ServerHandle::try_submit`] report this — the blocking variants
    /// wait for a slot instead).
    QueueFull,
    /// The venue's **own sub-queue cap** ([`ServerConfig::venue_capacity`])
    /// is full while the global capacity still had room — one hot venue is
    /// hogging the buffer. Wire front-ends surface this exactly like
    /// [`ServeError::QueueFull`] (a shed), but the split is visible in the
    /// per-venue stats and to in-process callers.
    VenueQueueFull {
        /// The venue whose sub-queue is full.
        venue: String,
    },
    /// The request's deadline expired while it was still queued. The
    /// scheduler drops expired requests at collect time — they never occupy
    /// a batch slot or reach the model. Only requests submitted with a
    /// deadline ([`ServerHandle::submit_deadline`] and friends, or a v2
    /// wire request with a non-zero budget) can fail this way.
    DeadlineExceeded {
        /// The venue the expired request targeted.
        venue: String,
    },
    /// The batch this request was part of panicked inside the model call.
    /// The panic is isolated — the executor survives and only this batch's
    /// requests fail — and counts toward the venue's circuit breaker.
    Internal {
        /// The venue whose batch panicked.
        venue: String,
    },
    /// The venue's circuit breaker is open: enough consecutive batches
    /// panicked that the server fast-fails the venue's requests without
    /// touching the model until the cooldown elapses (and rolls the venue
    /// back to its last-good model, when one is retained). Other venues are
    /// unaffected. Retryable after the breaker's cooldown.
    VenueUnavailable {
        /// The venue whose breaker is open.
        venue: String,
    },
    /// The server is shutting down (or already gone).
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownVenue { venue } => write!(f, "no model published for {venue:?}"),
            ServeError::EmptyModel { venue } => {
                write!(f, "model for {venue:?} has no reference embeddings")
            }
            ServeError::ScanDimensionMismatch { venue, expected, got } => {
                write!(f, "scan has {got} APs but the model for {venue:?} expects {expected}")
            }
            ServeError::QueueFull => write!(f, "request queue full"),
            ServeError::VenueQueueFull { venue } => {
                write!(f, "request sub-queue for {venue:?} full")
            }
            ServeError::DeadlineExceeded { venue } => {
                write!(f, "request for {venue:?} expired in queue before execution")
            }
            ServeError::Internal { venue } => {
                write!(f, "batch for {venue:?} failed internally (isolated panic)")
            }
            ServeError::VenueUnavailable { venue } => {
                write!(f, "circuit breaker open for {venue:?}; retry after cooldown")
            }
            ServeError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successful localization answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocateResponse {
    /// The predicted floorplan position.
    pub position: Point2,
    /// Version of the model snapshot that produced the answer (see
    /// [`crate::ModelEntry::version`]) — lets callers attribute every
    /// response to an exact model across warm reloads.
    pub model_version: u64,
}

/// Knobs of one [`LocalizationServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Most requests coalesced into one `locate_batch` call. 1 disables
    /// batching (every request runs alone — the baseline the micro benches
    /// compare against).
    pub max_batch: usize,
    /// The per-request scheduling bound: a venue whose oldest queued
    /// request has waited this long is drained before deeper venues (so no
    /// venue starves past `max_wait`), and an executor holds an under-full
    /// single-venue batch open for stragglers at most until its oldest
    /// request hits this age. Requests already queued for the picked venue
    /// always coalesce without waiting (adaptive batching: whatever piled
    /// up while the previous batch executed forms the next one), so the
    /// default of **zero** adds no latency, schedules strictly
    /// oldest-venue-first, and still batches under concurrent load. A
    /// positive window grows batches further at the cost of p50 latency —
    /// worthwhile when per-batch fixed cost dominates per-scan cost.
    pub max_wait: Duration,
    /// Capacity of the bounded request queue — the backpressure boundary,
    /// **shared across all venues**. Blocking submits wait for a slot;
    /// `try_` submits return [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Optional cap on any single venue's sub-queue, carved out of the
    /// shared `queue_capacity`. `None` (the default, and the pre-PR 8
    /// contract) lets one venue fill the whole buffer; `Some(cap)` sheds a
    /// venue's overflow with [`ServeError::VenueQueueFull`] once that venue
    /// alone holds `cap` queued requests, keeping room for the others.
    pub venue_capacity: Option<usize>,
    /// Batch executor threads. The default 1 is usually right: a coalesced
    /// batch already fans out across `STONE_THREADS` inside the batched
    /// kernels (via the long-lived `stone-par` worker pool, so entering a
    /// parallel region costs microseconds, not a thread spawn). With
    /// several executors each drains a *different* venue concurrently
    /// (batches are single-venue) and runs its batch inside
    /// [`stone_par::inline_scope`], so concurrent batches never
    /// oversubscribe the machine (executors × kernel threads).
    pub workers: usize,
    /// Consecutive panicked batches that trip a venue's circuit breaker
    /// (fast-failing the venue with [`ServeError::VenueUnavailable`] and
    /// rolling it back to its last-good model). **0 disables the breaker**;
    /// the default is 3.
    pub breaker_threshold: u32,
    /// How long a tripped breaker fast-fails before letting a probe batch
    /// through (half-open). Default 100 ms.
    pub breaker_cooldown: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::ZERO,
            queue_capacity: 1024,
            venue_capacity: None,
            workers: 1,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(100),
        }
    }
}

impl ServerConfig {
    fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be at least 1");
        assert!(self.queue_capacity > 0, "queue_capacity must be at least 1");
        assert!(self.workers > 0, "workers must be at least 1");
        if let Some(cap) = self.venue_capacity {
            assert!(cap > 0, "venue_capacity must be at least 1 when set");
        }
    }
}

/// State shared between the server, its handles and its executors.
pub(crate) struct Shared {
    pub(crate) stats: ServerStats,
    pub(crate) accepting: AtomicBool,
    pub(crate) breakers: BreakerSet,
    pub(crate) chaos: ChaosState,
}

/// A long-running localization service over a [`ModelRegistry`].
///
/// See the crate docs for the architecture; the acceptance contract
/// (coalescing observable in the batch histogram, warm reload with zero
/// dropped queries, responses bitwise-equal to direct `locate` calls on the
/// same snapshot) is pinned by `tests/server_smoke.rs`, and the sharded
/// scheduler's fairness and shed split by `tests/scheduler_fairness.rs`.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use stone::StoneBuilder;
/// use stone_dataset::{office_suite, SuiteConfig};
/// use stone_serve::{LocalizationServer, ModelRegistry, ServerConfig};
///
/// let suite = office_suite(&SuiteConfig::tiny(1));
/// let registry = Arc::new(ModelRegistry::new());
/// registry.publish("office", StoneBuilder::quick().fit(&suite.train, 1));
///
/// let mut server = LocalizationServer::start(registry, ServerConfig::default());
/// let handle = server.handle();
/// let resp = handle.locate("office", &suite.train.records()[0].rssi).unwrap();
/// println!("located at {} by model v{}", resp.position, resp.model_version);
/// server.shutdown();
/// ```
pub struct LocalizationServer {
    registry: Arc<ModelRegistry>,
    queue: Arc<ShardedQueue>,
    shared: Arc<Shared>,
    cfg: ServerConfig,
    workers: Vec<JoinHandle<()>>,
}

impl LocalizationServer {
    /// Starts the executor threads and returns the running server.
    ///
    /// Fault injection follows the `STONE_CHAOS` environment variable (see
    /// [`ChaosConfig`]); unset means none.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate (zero `max_batch`,
    /// `queue_capacity`, `venue_capacity` or `workers`), `STONE_CHAOS` is
    /// set but malformed, or a thread cannot be spawned.
    #[must_use]
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Self {
        Self::start_inner(registry, cfg, false, ChaosConfig::from_env())
    }

    /// Like [`LocalizationServer::start`], but the executors begin *parked*:
    /// submits are accepted into the bounded queue (up to `queue_capacity`)
    /// yet nothing executes until [`LocalizationServer::resume`] is called.
    /// This turns "queue full" from a race into a deterministic state — the
    /// backpressure contract tests fill the queue, observe exactly the
    /// overflow being shed, then resume.
    ///
    /// # Panics
    ///
    /// Same conditions as [`LocalizationServer::start`].
    #[must_use]
    pub fn start_paused(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Self {
        Self::start_inner(registry, cfg, true, ChaosConfig::from_env())
    }

    /// Like [`LocalizationServer::start`], with an explicit fault-injection
    /// configuration instead of the `STONE_CHAOS` environment variable —
    /// what the resilience test suites use, so parallel tests never race on
    /// the process environment.
    ///
    /// # Panics
    ///
    /// Same conditions as [`LocalizationServer::start`].
    #[must_use]
    pub fn start_with_chaos(
        registry: Arc<ModelRegistry>,
        cfg: ServerConfig,
        chaos: ChaosConfig,
    ) -> Self {
        Self::start_inner(registry, cfg, false, chaos)
    }

    /// [`LocalizationServer::start_paused`] with an explicit fault-injection
    /// configuration (see [`LocalizationServer::start_with_chaos`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`LocalizationServer::start`].
    #[must_use]
    pub fn start_paused_with_chaos(
        registry: Arc<ModelRegistry>,
        cfg: ServerConfig,
        chaos: ChaosConfig,
    ) -> Self {
        Self::start_inner(registry, cfg, true, chaos)
    }

    /// Unparks the executors of a [`LocalizationServer::start_paused`]
    /// server. Idempotent; a no-op on a server started normally.
    pub fn resume(&self) {
        self.queue.resume();
    }

    fn start_inner(
        registry: Arc<ModelRegistry>,
        cfg: ServerConfig,
        paused: bool,
        chaos: ChaosConfig,
    ) -> Self {
        cfg.validate();
        let queue = Arc::new(ShardedQueue::new(cfg.queue_capacity, cfg.venue_capacity, paused));
        let shared = Arc::new(Shared {
            stats: ServerStats::new(cfg.max_batch),
            accepting: AtomicBool::new(true),
            breakers: BreakerSet::new(cfg.breaker_threshold, cfg.breaker_cooldown),
            chaos: ChaosState::new(chaos),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let registry = Arc::clone(&registry);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stone-serve-{i}"))
                    .spawn(move || executor_loop(&queue, &registry, &shared, cfg))
                    .expect("spawn executor thread")
            })
            .collect();
        Self { registry, queue, shared, cfg, workers }
    }

    /// A cloneable client handle feeding this server's queue.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { queue: Arc::clone(&self.queue), shared: Arc::clone(&self.shared) }
    }

    /// The registry this server resolves venues against (publish retrained
    /// models here; the next batch picks them up).
    #[must_use]
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The server's configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// A point-in-time copy of the server's counters (aggregate plus the
    /// per-venue breakdowns of [`StatsSnapshot::venues`]).
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stops accepting new requests, drains every request already queued,
    /// and joins the executor threads. Queued requests are *answered*, not
    /// dropped — the zero-dropped-queries half of the warm-reload story.
    ///
    /// Idempotent: calling it again (or dropping the server afterwards) is
    /// a no-op — shutdown paths layered above (wire front-end teardown,
    /// signal handlers, test harnesses) may all race to stop the same
    /// server safely.
    pub fn shutdown(&mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.shared.accepting.store(false, Ordering::SeqCst);
        // Closing wakes parked/waiting executors (pause is cleared — the
        // drain must run), fails blocked producers with ShuttingDown, and
        // lets each executor keep collecting single-venue batches until the
        // queue is empty before it exits.
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for LocalizationServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for LocalizationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LocalizationServer({:?}, venues={})", self.cfg, self.registry.len())
    }
}

/// A client-side handle: submit scans, get positions. Cloneable and
/// shareable across client threads.
#[derive(Clone)]
pub struct ServerHandle {
    queue: Arc<ShardedQueue>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    fn request(
        &self,
        venue: &str,
        rssi: &[f32],
        deadline: Option<Duration>,
    ) -> (Request, mpsc::Receiver<Result<LocateResponse, ServeError>>) {
        let (reply, rx) = mpsc::channel();
        // One Instant::now() stamps both: the deadline budget counts from
        // the moment of submission, queueing time included.
        let now = Instant::now();
        let req = Request {
            venue: venue.to_string(),
            rssi: rssi.to_vec(),
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            trace_id: fresh_trace_id(),
            reply: Reply::Channel(reply),
        };
        (req, rx)
    }

    /// Enqueues a scan, **blocking while the queue is full** (backpressure),
    /// and returns a ticket to collect the answer. Submitting without
    /// immediately waiting is how a client pipelines many scans into one
    /// coalescing window.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] when the server no longer
    /// accepts requests.
    pub fn submit(&self, venue: &str, rssi: &[f32]) -> Result<PendingLocate, ServeError> {
        self.submit_deadline(venue, rssi, None)
    }

    /// [`ServerHandle::submit`] with an optional deadline budget counted
    /// from now: if the request is still queued once the budget elapses, it
    /// is dropped at batch-collect time — before ever occupying a batch
    /// slot — and answered [`ServeError::DeadlineExceeded`]. `None` (and
    /// the plain [`ServerHandle::submit`]) never expires.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] when the server no longer
    /// accepts requests.
    pub fn submit_deadline(
        &self,
        venue: &str,
        rssi: &[f32],
        deadline: Option<Duration>,
    ) -> Result<PendingLocate, ServeError> {
        self.submit_deadline_inner(venue, &self.shared.stats.venue(venue), rssi, deadline)
    }

    /// The shared body of the blocking submits: takes the venue's stats
    /// block so [`VenueHandle`] can pass its cached `Arc` and skip the
    /// per-request map lookup.
    fn submit_deadline_inner(
        &self,
        venue: &str,
        vstats: &VenueStats,
        rssi: &[f32],
        deadline: Option<Duration>,
    ) -> Result<PendingLocate, ServeError> {
        if !self.shared.accepting.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let (req, rx) = self.request(venue, rssi, deadline);
        // Count the request in *before* the push: a fast executor may pull
        // and complete it before this thread runs again, and queue_depth
        // must never transiently underflow.
        self.shared.stats.record_enqueued();
        vstats.record_enqueued();
        if self.queue.push(req).is_err() {
            self.shared.stats.record_enqueue_aborted();
            vstats.record_enqueue_aborted();
            return Err(ServeError::ShuttingDown);
        }
        Ok(PendingLocate { rx })
    }

    /// Like [`ServerHandle::submit`], but fails fast with
    /// [`ServeError::QueueFull`] (shared capacity exhausted) or
    /// [`ServeError::VenueQueueFull`] (the venue's own cap hit) instead of
    /// blocking when the bounded queue has no slot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`], [`ServeError::VenueQueueFull`] or
    /// [`ServeError::ShuttingDown`].
    pub fn try_submit(&self, venue: &str, rssi: &[f32]) -> Result<PendingLocate, ServeError> {
        self.try_submit_deadline(venue, rssi, None)
    }

    /// [`ServerHandle::try_submit`] with an optional deadline budget (see
    /// [`ServerHandle::submit_deadline`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`], [`ServeError::VenueQueueFull`] or
    /// [`ServeError::ShuttingDown`].
    pub fn try_submit_deadline(
        &self,
        venue: &str,
        rssi: &[f32],
        deadline: Option<Duration>,
    ) -> Result<PendingLocate, ServeError> {
        self.try_submit_deadline_inner(venue, &self.shared.stats.venue(venue), rssi, deadline)
    }

    /// The shared body of the fail-fast ticket submits (see
    /// [`ServerHandle::submit_deadline_inner`] for why `vstats` is a
    /// parameter).
    fn try_submit_deadline_inner(
        &self,
        venue: &str,
        vstats: &VenueStats,
        rssi: &[f32],
        deadline: Option<Duration>,
    ) -> Result<PendingLocate, ServeError> {
        if !self.shared.accepting.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let (req, rx) = self.request(venue, rssi, deadline);
        // Same enqueue-before-push ordering as `submit`.
        self.shared.stats.record_enqueued();
        vstats.record_enqueued();
        match self.queue.try_push(req) {
            Ok(()) => Ok(PendingLocate { rx }),
            Err(e) => {
                self.shared.stats.record_enqueue_aborted();
                vstats.record_enqueue_aborted();
                match e {
                    TryPushError::GlobalFull(_) => {
                        self.shared.stats.record_rejected();
                        vstats.record_shed_global();
                        Err(ServeError::QueueFull)
                    }
                    TryPushError::VenueFull(_) => {
                        self.shared.stats.record_rejected();
                        vstats.record_shed_venue();
                        Err(ServeError::VenueQueueFull { venue: venue.to_string() })
                    }
                    TryPushError::Closed(_) => Err(ServeError::ShuttingDown),
                }
            }
        }
    }

    /// Like [`ServerHandle::try_submit`], but the answer is delivered by
    /// invoking `reply` from the executor thread instead of through a
    /// [`PendingLocate`] ticket — the submit path a wire front-end uses to
    /// write responses back in **completion order** (a shed response for a
    /// late request can overtake the answer to an earlier queued one).
    ///
    /// The callback is invoked **exactly once** for every call, including
    /// failed submits: on [`ServeError::QueueFull`] /
    /// [`ServeError::VenueQueueFull`] / [`ServeError::ShuttingDown`] it
    /// fires inline with that error (and the same error is also returned,
    /// so the caller can stop reading without inspecting responses). If the
    /// server is torn down with the request still queued, the callback
    /// fires with `ShuttingDown`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`], [`ServeError::VenueQueueFull`] or
    /// [`ServeError::ShuttingDown`]; the callback has already been invoked
    /// with the same error.
    pub fn try_submit_with<F>(&self, venue: &str, rssi: &[f32], reply: F) -> Result<(), ServeError>
    where
        F: FnOnce(Result<LocateResponse, ServeError>) + Send + 'static,
    {
        self.try_submit_with_deadline(venue, rssi, None, reply)
    }

    /// [`ServerHandle::try_submit_with`] with an optional deadline budget
    /// (see [`ServerHandle::submit_deadline`]) — the submit path the wire
    /// front-end uses for v2 requests carrying a deadline. An expired
    /// request's callback fires with [`ServeError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`], [`ServeError::VenueQueueFull`] or
    /// [`ServeError::ShuttingDown`]; the callback has already been invoked
    /// with the same error.
    pub fn try_submit_with_deadline<F>(
        &self,
        venue: &str,
        rssi: &[f32],
        deadline: Option<Duration>,
        reply: F,
    ) -> Result<(), ServeError>
    where
        F: FnOnce(Result<LocateResponse, ServeError>) + Send + 'static,
    {
        self.try_submit_with_deadline_traced(venue, rssi, deadline, 0, reply)
    }

    /// [`ServerHandle::try_submit_with_deadline`] carrying an explicit
    /// trace ID — the submit path a wire front-end uses to correlate a
    /// request's stage spans with the client that sent it. `trace_id = 0`
    /// means "untraced caller": a fresh ID is minted when tracing is
    /// enabled server-side, and the request stays untraced otherwise. A
    /// nonzero ID (a v3 wire frame's `trace_id` field) is carried through
    /// verbatim, so spans recorded here can be joined with client-side
    /// timings by ID.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`], [`ServeError::VenueQueueFull`] or
    /// [`ServeError::ShuttingDown`]; the callback has already been invoked
    /// with the same error.
    pub fn try_submit_with_deadline_traced<F>(
        &self,
        venue: &str,
        rssi: &[f32],
        deadline: Option<Duration>,
        trace_id: u64,
        reply: F,
    ) -> Result<(), ServeError>
    where
        F: FnOnce(Result<LocateResponse, ServeError>) + Send + 'static,
    {
        self.try_submit_with_deadline_traced_inner(
            venue,
            &self.shared.stats.venue(venue),
            rssi,
            deadline,
            trace_id,
            reply,
        )
    }

    /// The shared body of the callback submits (see
    /// [`ServerHandle::submit_deadline_inner`] for why `vstats` is a
    /// parameter).
    fn try_submit_with_deadline_traced_inner<F>(
        &self,
        venue: &str,
        vstats: &VenueStats,
        rssi: &[f32],
        deadline: Option<Duration>,
        trace_id: u64,
        reply: F,
    ) -> Result<(), ServeError>
    where
        F: FnOnce(Result<LocateResponse, ServeError>) + Send + 'static,
    {
        let cb = ReplyCallback::new(Box::new(reply));
        if !self.shared.accepting.load(Ordering::SeqCst) {
            cb.call(Err(ServeError::ShuttingDown));
            return Err(ServeError::ShuttingDown);
        }
        let now = Instant::now();
        let req = Request {
            venue: venue.to_string(),
            rssi: rssi.to_vec(),
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            trace_id: if trace_id != 0 { trace_id } else { fresh_trace_id() },
            reply: Reply::Callback(cb),
        };
        // Same enqueue-before-push ordering as `submit`.
        self.shared.stats.record_enqueued();
        vstats.record_enqueued();
        let reclaim = |req: Request| match req.reply {
            Reply::Callback(cb) => cb,
            Reply::Channel(_) => unreachable!("submitted request carries a callback reply"),
        };
        match self.queue.try_push(req) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.shared.stats.record_enqueue_aborted();
                vstats.record_enqueue_aborted();
                match e {
                    TryPushError::GlobalFull(req) => {
                        self.shared.stats.record_rejected();
                        vstats.record_shed_global();
                        reclaim(req).call(Err(ServeError::QueueFull));
                        Err(ServeError::QueueFull)
                    }
                    TryPushError::VenueFull(req) => {
                        self.shared.stats.record_rejected();
                        vstats.record_shed_venue();
                        let err = ServeError::VenueQueueFull { venue: venue.to_string() };
                        reclaim(req).call(Err(err.clone()));
                        Err(err)
                    }
                    TryPushError::Closed(req) => {
                        reclaim(req).call(Err(ServeError::ShuttingDown));
                        Err(ServeError::ShuttingDown)
                    }
                }
            }
        }
    }

    /// Submits one scan and blocks until its answer arrives.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] except `QueueFull`/`VenueQueueFull` (a full queue
    /// blocks instead).
    pub fn locate(&self, venue: &str, rssi: &[f32]) -> Result<LocateResponse, ServeError> {
        self.submit(venue, rssi)?.wait()
    }

    /// [`ServerHandle::locate`] with a deadline budget: blocks until the
    /// answer arrives or the request expires in queue.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] except `QueueFull`/`VenueQueueFull` (a full queue
    /// blocks instead); [`ServeError::DeadlineExceeded`] when the budget
    /// elapsed before a batch executed the request.
    pub fn locate_deadline(
        &self,
        venue: &str,
        rssi: &[f32],
        deadline: Duration,
    ) -> Result<LocateResponse, ServeError> {
        self.submit_deadline(venue, rssi, Some(deadline))?.wait()
    }

    /// Submits one scan, failing fast when the queue is full, and blocks
    /// until its answer arrives.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`], including `QueueFull`/`VenueQueueFull`.
    pub fn try_locate(&self, venue: &str, rssi: &[f32]) -> Result<LocateResponse, ServeError> {
        self.try_submit(venue, rssi)?.wait()
    }

    /// A point-in-time copy of the server's counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The current [`BreakerState`] of every venue a batch has touched,
    /// sorted by venue name — a pure observation (see
    /// [`BreakerState::Open`] for the non-transition caveat). What the
    /// wire admin endpoint exposes as the `stone_serve_breaker_state`
    /// gauge.
    #[must_use]
    pub fn breaker_states(&self) -> Vec<(String, BreakerState)> {
        self.shared.breakers.snapshot_states()
    }

    /// A handle pinned to one venue that caches the venue's stats block.
    ///
    /// Every plain submit pays one `RwLock` read + `Arc` clone on the
    /// shared per-venue stats map; a [`VenueHandle`] pays it **once, here**,
    /// and every subsequent submit records against the cached block
    /// lock-free. This is the hot-path handle for callers that send many
    /// requests to the same venue — a wire connection, a loadgen worker
    /// (the before/after is measured in docs/PERFORMANCE.md).
    #[must_use]
    pub fn venue_handle(&self, venue: &str) -> VenueHandle {
        VenueHandle {
            vstats: self.shared.stats.venue(venue),
            venue: venue.to_string(),
            handle: self.clone(),
        }
    }
}

/// A [`ServerHandle`] pinned to one venue, holding the venue's stats block
/// so submits skip the per-request stats-map read lock (see
/// [`ServerHandle::venue_handle`]). Cloneable; clones share the cache.
#[derive(Clone)]
pub struct VenueHandle {
    handle: ServerHandle,
    venue: String,
    vstats: Arc<VenueStats>,
}

impl VenueHandle {
    /// The venue this handle is pinned to.
    #[must_use]
    pub fn venue(&self) -> &str {
        &self.venue
    }

    /// [`ServerHandle::submit`] against the pinned venue.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] when the server no longer
    /// accepts requests.
    pub fn submit(&self, rssi: &[f32]) -> Result<PendingLocate, ServeError> {
        self.submit_deadline(rssi, None)
    }

    /// [`ServerHandle::submit_deadline`] against the pinned venue.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] when the server no longer
    /// accepts requests.
    pub fn submit_deadline(
        &self,
        rssi: &[f32],
        deadline: Option<Duration>,
    ) -> Result<PendingLocate, ServeError> {
        self.handle.submit_deadline_inner(&self.venue, &self.vstats, rssi, deadline)
    }

    /// [`ServerHandle::try_submit`] against the pinned venue.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`], [`ServeError::VenueQueueFull`] or
    /// [`ServeError::ShuttingDown`].
    pub fn try_submit(&self, rssi: &[f32]) -> Result<PendingLocate, ServeError> {
        self.try_submit_deadline(rssi, None)
    }

    /// [`ServerHandle::try_submit_deadline`] against the pinned venue.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`], [`ServeError::VenueQueueFull`] or
    /// [`ServeError::ShuttingDown`].
    pub fn try_submit_deadline(
        &self,
        rssi: &[f32],
        deadline: Option<Duration>,
    ) -> Result<PendingLocate, ServeError> {
        self.handle.try_submit_deadline_inner(&self.venue, &self.vstats, rssi, deadline)
    }

    /// [`ServerHandle::try_submit_with_deadline`] against the pinned venue.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`], [`ServeError::VenueQueueFull`] or
    /// [`ServeError::ShuttingDown`]; the callback has already been invoked
    /// with the same error.
    pub fn try_submit_with_deadline<F>(
        &self,
        rssi: &[f32],
        deadline: Option<Duration>,
        reply: F,
    ) -> Result<(), ServeError>
    where
        F: FnOnce(Result<LocateResponse, ServeError>) + Send + 'static,
    {
        self.try_submit_with_deadline_traced(rssi, deadline, 0, reply)
    }

    /// [`ServerHandle::try_submit_with_deadline_traced`] against the pinned
    /// venue — the per-connection hot path of the wire front-end.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`], [`ServeError::VenueQueueFull`] or
    /// [`ServeError::ShuttingDown`]; the callback has already been invoked
    /// with the same error.
    pub fn try_submit_with_deadline_traced<F>(
        &self,
        rssi: &[f32],
        deadline: Option<Duration>,
        trace_id: u64,
        reply: F,
    ) -> Result<(), ServeError>
    where
        F: FnOnce(Result<LocateResponse, ServeError>) + Send + 'static,
    {
        self.handle.try_submit_with_deadline_traced_inner(
            &self.venue,
            &self.vstats,
            rssi,
            deadline,
            trace_id,
            reply,
        )
    }

    /// [`ServerHandle::locate`] against the pinned venue.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] except `QueueFull`/`VenueQueueFull` (a full queue
    /// blocks instead).
    pub fn locate(&self, rssi: &[f32]) -> Result<LocateResponse, ServeError> {
        self.submit(rssi)?.wait()
    }

    /// [`ServerHandle::locate_deadline`] against the pinned venue.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] except `QueueFull`/`VenueQueueFull`;
    /// [`ServeError::DeadlineExceeded`] when the budget elapsed first.
    pub fn locate_deadline(
        &self,
        rssi: &[f32],
        deadline: Duration,
    ) -> Result<LocateResponse, ServeError> {
        self.submit_deadline(rssi, Some(deadline))?.wait()
    }

    /// [`ServerHandle::try_locate`] against the pinned venue.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`], including `QueueFull`/`VenueQueueFull`.
    pub fn try_locate(&self, rssi: &[f32]) -> Result<LocateResponse, ServeError> {
        self.try_submit(rssi)?.wait()
    }

    /// A point-in-time copy of the pinned venue's counters.
    #[must_use]
    pub fn stats(&self) -> VenueStatsSnapshot {
        self.vstats.snapshot(&self.venue)
    }
}

impl std::fmt::Debug for VenueHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VenueHandle({:?})", self.venue)
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerHandle(queue_depth={})", self.shared.stats.snapshot().queue_depth)
    }
}

/// A submitted request whose answer has not been collected yet.
#[derive(Debug)]
pub struct PendingLocate {
    rx: mpsc::Receiver<Result<LocateResponse, ServeError>>,
}

impl PendingLocate {
    /// Blocks until the answer arrives.
    ///
    /// # Errors
    ///
    /// The request's own [`ServeError`], or [`ServeError::ShuttingDown`]
    /// when the server died before answering.
    pub fn wait(self) -> Result<LocateResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}
