//! Per-venue circuit breakers over the batch-execution path.
//!
//! A batch whose model call panics is isolated (`catch_unwind` in
//! `scheduler.rs`) and answered with [`crate::ServeError::Internal`] — but
//! a *persistently* broken model (a bad publish) would then burn an
//! executor on every drain, panicking batch after batch while queued
//! requests pile up behind the doomed venue. The breaker turns that into a
//! bounded blast radius:
//!
//! ```text
//!            K consecutive batch failures
//!   Closed ────────────────────────────────▶ Open
//!     ▲                                       │ cooldown elapses
//!     │ probe batch succeeds                  ▼
//!     └─────────────────────────────────── HalfOpen
//!                 (a probe failure reopens: HalfOpen ──▶ Open)
//! ```
//!
//! * **Closed** — batches execute normally; a success resets the
//!   consecutive-failure count.
//! * **Open** — every batch for the venue **fast-fails** with
//!   [`crate::ServeError::VenueUnavailable`], without touching the model,
//!   until the cooldown elapses. The trip also triggers the registry's
//!   last-good rollback (see `scheduler.rs`), so by the time the breaker
//!   re-probes, the venue is usually serving its previous snapshot.
//! * **HalfOpen** — batches execute as *probes*: the first success closes
//!   the breaker, the first failure reopens it for another cooldown.
//!
//! The state machine is per venue behind a tiny mutex taken once per
//! *batch* (never per request), so it costs nothing on the request hot
//! path. A threshold of 0 disables the breaker entirely.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// What the breaker decided for the batch about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admit {
    /// Run the batch. `probe` marks a half-open trial whose outcome decides
    /// whether the breaker re-closes or re-opens.
    Execute {
        /// True when this batch is a half-open probe.
        probe: bool,
    },
    /// The breaker is open: fail the whole batch without touching the
    /// model.
    FastFail,
}

#[derive(Debug)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// A venue breaker's position in the state machine, as reported by
/// `BreakerSet::snapshot_states` (crate-private) — the read-only view the
/// admin/stats surfaces expose via `ServerHandle::breaker_states`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Batches execute normally.
    Closed,
    /// Batches fast-fail until the cooldown elapses. An Open breaker whose
    /// cooldown has already elapsed still reports Open here — the
    /// Open→HalfOpen transition happens on the next *batch admission*, not
    /// on observation.
    Open,
    /// The next batch is a probe deciding re-close vs. re-open.
    HalfOpen,
}

impl BreakerState {
    /// The state as a metrics gauge value: 0 closed, 1 half-open, 2 open.
    #[must_use]
    pub fn as_gauge(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::HalfOpen => "half_open",
            BreakerState::Open => "open",
        })
    }
}

/// The per-venue breaker map of one server.
#[derive(Debug)]
pub(crate) struct BreakerSet {
    /// Consecutive batch failures that trip a closed breaker; 0 disables.
    threshold: u32,
    /// How long an open breaker fast-fails before probing again.
    cooldown: Duration,
    venues: RwLock<HashMap<String, Arc<Mutex<State>>>>,
}

impl BreakerSet {
    pub(crate) fn new(threshold: u32, cooldown: Duration) -> Self {
        Self { threshold, cooldown, venues: RwLock::new(HashMap::new()) }
    }

    /// The venue's breaker cell, created Closed on first touch.
    fn slot(&self, venue: &str) -> Arc<Mutex<State>> {
        if let Some(s) = self.venues.read().unwrap_or_else(|e| e.into_inner()).get(venue) {
            return Arc::clone(s);
        }
        let mut venues = self.venues.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            venues
                .entry(venue.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(State::Closed { consecutive_failures: 0 }))),
        )
    }

    /// Gate for one batch about to execute for `venue`.
    pub(crate) fn admit(&self, venue: &str) -> Admit {
        if self.threshold == 0 {
            return Admit::Execute { probe: false };
        }
        let slot = self.slot(venue);
        let mut state = slot.lock().unwrap_or_else(|e| e.into_inner());
        match *state {
            State::Closed { .. } => Admit::Execute { probe: false },
            State::Open { until } => {
                if Instant::now() >= until {
                    *state = State::HalfOpen;
                    Admit::Execute { probe: true }
                } else {
                    Admit::FastFail
                }
            }
            State::HalfOpen => Admit::Execute { probe: true },
        }
    }

    /// Records a batch whose model call completed without panicking.
    pub(crate) fn record_success(&self, venue: &str) {
        if self.threshold == 0 {
            return;
        }
        let slot = self.slot(venue);
        let mut state = slot.lock().unwrap_or_else(|e| e.into_inner());
        *state = State::Closed { consecutive_failures: 0 };
    }

    /// Records a panicked batch; returns `true` when this failure
    /// transitioned the breaker to Open (the moment the scheduler rolls the
    /// venue back to its last-good model).
    pub(crate) fn record_failure(&self, venue: &str) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let slot = self.slot(venue);
        let mut state = slot.lock().unwrap_or_else(|e| e.into_inner());
        match *state {
            State::Closed { consecutive_failures } => {
                let failures = consecutive_failures + 1;
                if failures >= self.threshold {
                    *state = State::Open { until: Instant::now() + self.cooldown };
                    true
                } else {
                    *state = State::Closed { consecutive_failures: failures };
                    false
                }
            }
            // A failed probe reopens for another full cooldown.
            State::HalfOpen => {
                *state = State::Open { until: Instant::now() + self.cooldown };
                true
            }
            // Fast-failed batches never reach record_failure; a failure
            // while already Open (racing executors) just restarts the
            // cooldown without counting as a fresh trip.
            State::Open { .. } => {
                *state = State::Open { until: Instant::now() + self.cooldown };
                false
            }
        }
    }

    /// The current state of every venue breaker, sorted by venue name — a
    /// pure observation (no lazy Open→HalfOpen transition is applied; that
    /// belongs to batch admission). Venues never touched by a batch are
    /// absent.
    pub(crate) fn snapshot_states(&self) -> Vec<(String, BreakerState)> {
        let mut out: Vec<(String, BreakerState)> = self
            .venues
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(venue, slot)| {
                let state = match *slot.lock().unwrap_or_else(|e| e.into_inner()) {
                    State::Closed { .. } => BreakerState::Closed,
                    State::Open { .. } => BreakerState::Open,
                    State::HalfOpen => BreakerState::HalfOpen,
                };
                (venue.clone(), state)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_recovers_through_half_open() {
        let set = BreakerSet::new(2, Duration::from_millis(20));
        assert_eq!(set.admit("v"), Admit::Execute { probe: false });
        assert!(!set.record_failure("v"), "first failure must not trip");
        assert_eq!(set.admit("v"), Admit::Execute { probe: false });
        assert!(set.record_failure("v"), "second failure trips");
        assert_eq!(set.admit("v"), Admit::FastFail);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(set.admit("v"), Admit::Execute { probe: true });
        set.record_success("v");
        assert_eq!(set.admit("v"), Admit::Execute { probe: false });
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let set = BreakerSet::new(1, Duration::from_millis(15));
        assert!(set.record_failure("v"));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(set.admit("v"), Admit::Execute { probe: true });
        assert!(set.record_failure("v"), "failed probe re-trips");
        assert_eq!(set.admit("v"), Admit::FastFail);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let set = BreakerSet::new(2, Duration::from_millis(10));
        assert!(!set.record_failure("v"));
        set.record_success("v");
        assert!(!set.record_failure("v"), "count restarted after a success");
        assert!(set.record_failure("v"));
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let set = BreakerSet::new(0, Duration::from_millis(10));
        for _ in 0..10 {
            assert!(!set.record_failure("v"));
        }
        assert_eq!(set.admit("v"), Admit::Execute { probe: false });
    }

    #[test]
    fn snapshot_states_observe_without_transitioning() {
        let set = BreakerSet::new(1, Duration::from_millis(10));
        assert!(set.snapshot_states().is_empty());
        set.admit("ok");
        assert!(set.record_failure("bad"));
        let states = set.snapshot_states();
        assert_eq!(
            states,
            vec![("bad".to_string(), BreakerState::Open), ("ok".to_string(), BreakerState::Closed)]
        );
        std::thread::sleep(Duration::from_millis(15));
        // Observation alone never flips Open→HalfOpen, even past cooldown…
        assert_eq!(set.snapshot_states()[0].1, BreakerState::Open);
        // …the next batch admission does.
        assert_eq!(set.admit("bad"), Admit::Execute { probe: true });
        assert_eq!(set.snapshot_states()[0].1, BreakerState::HalfOpen);
    }

    #[test]
    fn breakers_are_per_venue() {
        let set = BreakerSet::new(1, Duration::from_secs(60));
        assert!(set.record_failure("bad"));
        assert_eq!(set.admit("bad"), Admit::FastFail);
        assert_eq!(set.admit("good"), Admit::Execute { probe: false });
    }
}
