//! The venue-sharded request queue.
//!
//! One [`ShardedQueue`] replaces the single shared `sync_channel` of the
//! pre-PR 8 server: every venue gets its own FIFO sub-queue, all of them
//! accounted against **one shared global capacity** (so the bounded-queue /
//! shed contract of the backpressure suites is preserved exactly), with an
//! optional per-venue cap on top so one hot venue cannot monopolize the
//! whole buffer.
//!
//! The payoff is on the *drain* side: [`ShardedQueue::collect`] hands an
//! executor one **single-venue** batch — the deepest backlog, unless some
//! venue's head request has aged past `max_wait`, in which case the oldest
//! such head goes first (starvation is bounded by `max_wait` per request).
//! A tie between equally deep venues resolves round-robin via a rotating
//! cursor. Under venue fan-out this keeps encoder batches fat per venue
//! instead of fragmenting a mixed drain into per-venue slivers (the
//! 16-venue regression of docs/PERFORMANCE.md).
//!
//! Pause (`start_paused`) and close (shutdown) live here too: a paused
//! queue accepts up to capacity but hands out nothing; a closed queue
//! refuses pushes while `collect` keeps handing out batches until empty —
//! the drain that answers everything accepted.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::server::{LocateResponse, ServeError};

/// How a request's answer travels back to whoever submitted it.
pub(crate) enum Reply {
    /// In-process submit: the sending half of a [`crate::PendingLocate`]
    /// ticket.
    Channel(mpsc::Sender<Result<LocateResponse, ServeError>>),
    /// Callback submit ([`crate::ServerHandle::try_submit_with`]): invoked
    /// exactly once from the executor thread — the wire front-end path,
    /// where the callback enqueues a response frame on the connection's
    /// writer.
    Callback(ReplyCallback),
}

impl Reply {
    pub(crate) fn send(self, result: Result<LocateResponse, ServeError>) {
        match self {
            // A client that gave up and dropped its ticket is not an error.
            Reply::Channel(tx) => drop(tx.send(result)),
            Reply::Callback(cb) => cb.call(result),
        }
    }
}

/// The boxed form of a [`crate::ServerHandle::try_submit_with`] callback.
type BoxedReply = Box<dyn FnOnce(Result<LocateResponse, ServeError>) + Send>;

/// An exactly-once reply callback with a drop guarantee: if the server ever
/// drops a request without answering it (torn down mid-flight), the callback
/// still fires with [`ServeError::ShuttingDown`], so a wire front-end can
/// always send *some* response frame and its writer never hangs.
pub(crate) struct ReplyCallback(Option<BoxedReply>);

impl ReplyCallback {
    pub(crate) fn new(f: BoxedReply) -> Self {
        Self(Some(f))
    }

    pub(crate) fn call(mut self, result: Result<LocateResponse, ServeError>) {
        if let Some(f) = self.0.take() {
            f(result);
        }
    }
}

impl Drop for ReplyCallback {
    fn drop(&mut self) {
        if let Some(f) = self.0.take() {
            f(Err(ServeError::ShuttingDown));
        }
    }
}

/// One queued localization request.
pub(crate) struct Request {
    pub(crate) venue: String,
    pub(crate) rssi: Vec<f32>,
    pub(crate) enqueued: Instant,
    /// Answer-by instant, stamped at submit from the client's deadline
    /// budget. A request still queued past this instant is dropped at
    /// [`ShardedQueue::collect`] time and answered
    /// [`ServeError::DeadlineExceeded`] without ever reaching the model.
    pub(crate) deadline: Option<Instant>,
    /// Tracing correlation ID: nonzero when the submitter carried one in
    /// from the wire or tracing was enabled at submit time, `0` otherwise
    /// (untraced — the executor records no spans for it).
    pub(crate) trace_id: u64,
    pub(crate) reply: Reply,
}

/// Why a [`ShardedQueue::try_push`] was refused. Each variant hands the
/// request back so the caller can reclaim its reply (the exactly-once
/// callback contract).
pub(crate) enum TryPushError {
    /// The shared global capacity is exhausted.
    GlobalFull(Request),
    /// The venue's own sub-queue cap is hit (global capacity had room).
    VenueFull(Request),
    /// The queue is closed (server shutting down).
    Closed(Request),
}

/// What [`ShardedQueue::collect`] handed out.
pub(crate) enum Collected {
    /// A single-venue batch: every request targets `venue`, FIFO order.
    Batch {
        /// The venue every request of this batch targets.
        venue: String,
        /// The drained live requests (up to `max_batch` of them; may be
        /// empty when every drained request had already expired).
        requests: Vec<Request>,
        /// Requests whose deadline passed while queued: already past
        /// saving, they are split out at drain time so expired work never
        /// occupies a batch slot or reaches the model. The executor answers
        /// each with [`ServeError::DeadlineExceeded`].
        expired: Vec<Request>,
        /// When the executor began draining this batch — the boundary
        /// between a request's queue-wait span and the collect span
        /// (requests enqueued *during* the straggler window use their own
        /// later enqueue instant instead).
        drained_at: Instant,
    },
    /// The queue is closed and fully drained: the executor exits.
    Closed,
}

/// One venue's FIFO sub-queue. Shards are created on a venue's first push
/// and retained (empty) afterwards, so shard indices stay stable.
struct Shard {
    venue: String,
    queue: VecDeque<Request>,
}

struct Inner {
    shards: Vec<Shard>,
    by_venue: HashMap<String, usize>,
    /// Total requests across all shards — the shared global accounting.
    queued: usize,
    closed: bool,
    paused: bool,
    /// Round-robin scan start for victim selection (fairness tie-break).
    cursor: usize,
}

impl Inner {
    fn shard_idx(&mut self, venue: &str) -> usize {
        if let Some(&i) = self.by_venue.get(venue) {
            return i;
        }
        let i = self.shards.len();
        self.shards.push(Shard { venue: venue.to_string(), queue: VecDeque::new() });
        self.by_venue.insert(venue.to_string(), i);
        i
    }

    /// The venue an executor should drain next, or `None` when nothing is
    /// queued. Priority: any head older than `max_wait` (oldest first — the
    /// per-request latency bound), otherwise the deepest backlog (fattest
    /// batch); ties go round-robin from the cursor.
    fn pick_victim(&self, max_wait: Duration) -> Option<usize> {
        let n = self.shards.len();
        let now = Instant::now();
        let mut best: Option<(usize, bool, Instant, usize)> = None;
        for off in 0..n {
            let i = (self.cursor + off) % n;
            let shard = &self.shards[i];
            let Some(head) = shard.queue.front() else { continue };
            let overdue = now.duration_since(head.enqueued) >= max_wait;
            let better = match best {
                None => true,
                Some((_, best_overdue, best_head, best_len)) => {
                    if overdue != best_overdue {
                        overdue
                    } else if overdue {
                        head.enqueued < best_head
                    } else {
                        shard.queue.len() > best_len
                    }
                }
            };
            if better {
                best = Some((i, overdue, head.enqueued, shard.queue.len()));
            }
        }
        best.map(|(i, ..)| i)
    }
}

/// The per-venue bounded queue shared by client handles and executors.
pub(crate) struct ShardedQueue {
    inner: Mutex<Inner>,
    /// Executors wait here for work (and for resume/close).
    work: Condvar,
    /// Blocking producers wait here for a slot (global or per-venue).
    space: Condvar,
    capacity: usize,
    venue_capacity: Option<usize>,
}

impl ShardedQueue {
    pub(crate) fn new(capacity: usize, venue_capacity: Option<usize>, paused: bool) -> Self {
        Self {
            inner: Mutex::new(Inner {
                shards: Vec::new(),
                by_venue: HashMap::new(),
                queued: 0,
                closed: false,
                paused,
                cursor: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            capacity,
            venue_capacity,
        }
    }

    /// Non-blocking push: fails fast when the global capacity or the
    /// venue's cap is exhausted, handing the request back.
    pub(crate) fn try_push(&self, req: Request) -> Result<(), TryPushError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(TryPushError::Closed(req));
        }
        if inner.queued >= self.capacity {
            return Err(TryPushError::GlobalFull(req));
        }
        let idx = inner.shard_idx(&req.venue);
        if let Some(cap) = self.venue_capacity {
            if inner.shards[idx].queue.len() >= cap {
                return Err(TryPushError::VenueFull(req));
            }
        }
        inner.shards[idx].queue.push_back(req);
        inner.queued += 1;
        drop(inner);
        self.work.notify_all();
        Ok(())
    }

    /// Blocking push: waits for a slot (backpressure). `Err` hands the
    /// request back — the queue closed while waiting (or before).
    pub(crate) fn push(&self, req: Request) -> Result<(), Request> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if inner.closed {
                return Err(req);
            }
            if inner.queued < self.capacity {
                let idx = inner.shard_idx(&req.venue);
                let venue_full =
                    self.venue_capacity.is_some_and(|cap| inner.shards[idx].queue.len() >= cap);
                if !venue_full {
                    inner.shards[idx].queue.push_back(req);
                    inner.queued += 1;
                    drop(inner);
                    self.work.notify_all();
                    return Ok(());
                }
            }
            inner = self.space.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Hands the calling executor its next single-venue batch, blocking
    /// while the queue is empty or paused. Once a venue is picked its whole
    /// sub-queue drains (up to `max_batch`); an under-full batch is held
    /// open for same-venue stragglers until its *oldest* request has waited
    /// `max_wait` — so no request's time-to-execution exceeds `max_wait`
    /// plus one batch execution, whatever venue it targets.
    ///
    /// Requests whose deadline has already passed are split into the
    /// batch's `expired` list as they are popped: expired work never
    /// occupies one of the `max_batch` live slots and never reaches
    /// `locate_batch`.
    pub(crate) fn collect(&self, max_batch: usize, max_wait: Duration) -> Collected {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let idx = loop {
            if inner.paused && !inner.closed {
                inner = self.work.wait(inner).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            if let Some(idx) = inner.pick_victim(max_wait) {
                break idx;
            }
            if inner.closed {
                return Collected::Closed;
            }
            inner = self.work.wait(inner).unwrap_or_else(|e| e.into_inner());
        };

        inner.cursor = (idx + 1) % inner.shards.len();
        let venue = inner.shards[idx].venue.clone();
        let drained_at = Instant::now();
        let mut requests = Vec::new();
        let mut expired = Vec::new();
        let drain = |inner: &mut Inner, requests: &mut Vec<Request>, expired: &mut Vec<Request>| {
            let now = Instant::now();
            let mut popped = false;
            while requests.len() < max_batch {
                let Some(req) = inner.shards[idx].queue.pop_front() else { break };
                inner.queued -= 1;
                if req.deadline.is_some_and(|d| now >= d) {
                    expired.push(req);
                } else {
                    requests.push(req);
                }
                popped = true;
            }
            popped
        };
        if drain(&mut inner, &mut requests, &mut expired) {
            self.space.notify_all();
        }

        // Straggler window: hold the under-full batch open for *this venue*
        // until its oldest request hits max_wait. Zero by default — adaptive
        // batching alone (whatever piled up during the previous batch) pays
        // for coalescing without adding latency. Skipped when every drained
        // request was expired: there is no live request to age against.
        if !inner.closed
            && !requests.is_empty()
            && requests.len() < max_batch
            && max_wait > Duration::ZERO
        {
            let deadline = requests[0].enqueued + max_wait;
            loop {
                if drain(&mut inner, &mut requests, &mut expired) {
                    self.space.notify_all();
                }
                if requests.len() >= max_batch || inner.closed {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .work
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }
        Collected::Batch { venue, requests, expired, drained_at }
    }

    /// Unparks executors parked by a paused start. Idempotent.
    pub(crate) fn resume(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.paused {
            inner.paused = false;
            drop(inner);
            self.work.notify_all();
        }
    }

    /// Closes the queue: pushes fail from here on, blocked producers wake
    /// with their request handed back, and executors drain what remains
    /// then receive [`Collected::Closed`]. Clears pause — a drain must run.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        inner.paused = false;
        drop(inner);
        self.work.notify_all();
        self.space.notify_all();
    }
}

impl std::fmt::Debug for ShardedQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        write!(
            f,
            "ShardedQueue(queued={}, venues={}, capacity={}, venue_capacity={:?})",
            inner.queued,
            inner.shards.len(),
            self.capacity,
            self.venue_capacity
        )
    }
}
