//! # stone-serve
//!
//! The online half of the reproduction: a long-running localization server
//! in front of [`stone::StoneLocalizer`], built only on std threads and
//! channels (the workspace builds offline — see the `shims/` policy).
//!
//! The offline pipeline (`stone-dataset` → `stone` → `stone-eval`) answers
//! "how accurate is the model months after deployment?"; this crate answers
//! the ROADMAP's other question — serving location queries to many phones
//! at once. Three pieces:
//!
//! * [`LocalizationServer`] — a **venue-sharded** bounded request queue
//!   (per-venue FIFO sub-queues under one shared global capacity, optional
//!   per-venue cap) plus batch executor threads that drain **single-venue**
//!   batches and **coalesce concurrent single-scan queries** into
//!   [`stone::StoneLocalizer::locate_batch`] calls (micro-batching with
//!   [`ServerConfig::max_batch`]/[`ServerConfig::max_wait`] knobs,
//!   backpressure via the bounded queue). A phone submits one scan; the
//!   server amortizes the encoder forward pass across every scan that
//!   arrived in the same window *for the same venue* — batches stay fat
//!   per venue however many venues fan out, and the scheduler drains the
//!   deepest backlog first while `max_wait` bounds how long any venue's
//!   oldest request can be passed over (no starvation).
//! * [`ModelRegistry`] — per-venue models behind atomic [`Arc`] swaps:
//!   publishing a retrained model is a **warm reload**. In-flight batches
//!   finish on the snapshot they started with, new batches see the new
//!   model, and no query is ever dropped. Models cross process boundaries
//!   via [`stone::StoneLocalizer::save`]/`load`
//!   ([`ModelRegistry::publish_bytes`]).
//! * [`StatsSnapshot`] — queue depth, a batch-size histogram (the direct
//!   observability of coalescing) and p50/p99 enqueue→reply latency
//!   (rank-interpolated within power-of-two buckets), in aggregate and
//!   broken down per venue ([`VenueStatsSnapshot`], which also splits
//!   shed-by-global-capacity from shed-by-venue-cap). Snapshots render as
//!   Prometheus-style text ([`StatsSnapshot::exposition`]) for the wire
//!   admin endpoint.
//!
//! # Observability
//!
//! The crate feeds the `stone-obs` tracing layer: every submit mints (or
//! carries, for wire requests) a trace ID, and when tracing is enabled
//! ([`stone_obs::set_tracing`]) each answered request records five
//! contiguous stage spans — queue wait, collect, snapshot, infer,
//! write-back — whose durations sum to its end-to-end latency. Hot-path
//! cost when disabled is one relaxed atomic load per request. Callers that
//! hammer one venue should use [`ServerHandle::venue_handle`] to skip the
//! per-request stats-map read lock, and [`ServerHandle::breaker_states`]
//! exposes each venue's [`BreakerState`] for the admin surfaces.
//!
//! # Resilience
//!
//! Failure is contained per layer (DESIGN.md, "Failure modes & degradation
//! ladder"): a request may carry a **deadline** budget — expired requests
//! are dropped at batch-collect time with [`ServeError::DeadlineExceeded`],
//! never reaching the model; a panicking model call is **isolated** to its
//! own batch ([`ServeError::Internal`], executor survives); consecutive
//! panics trip a per-venue **circuit breaker** that fast-fails the venue
//! ([`ServeError::VenueUnavailable`]) and rolls it back to the registry's
//! retained **last-good** snapshot ([`ModelRegistry::rollback`]); model
//! blobs are checksummed so a corrupt publish is rejected before it can
//! serve. Deterministic fault injection for all of this lives behind
//! [`ChaosConfig`] / the `STONE_CHAOS` env var.
//!
//! # Determinism
//!
//! Batching never changes answers: every response is bitwise identical to
//! a direct serial `Localizer::locate` call on the same model snapshot,
//! whatever the coalescing pattern, thread count or warm reload timing — each response carries the [`LocateResponse::model_version`]
//! that produced it, making the property testable (`tests/server_smoke.rs`).
//!
//! [`Arc`]: std::sync::Arc
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use stone::StoneBuilder;
//! use stone_dataset::{office_suite, SuiteConfig};
//! use stone_serve::{LocalizationServer, ModelRegistry, ServerConfig};
//!
//! let suite = office_suite(&SuiteConfig::tiny(1));
//! let registry = Arc::new(ModelRegistry::new());
//! registry.publish("office", StoneBuilder::quick().fit(&suite.train, 1));
//!
//! let mut server = LocalizationServer::start(Arc::clone(&registry), ServerConfig::default());
//! let handle = server.handle();
//!
//! // Clients submit single scans from any number of threads...
//! let resp = handle.locate("office", &suite.train.records()[0].rssi).unwrap();
//! println!("{} (model v{})", resp.position, resp.model_version);
//!
//! // ...and a retrain hot-swaps the venue without dropping a query.
//! registry.publish("office", StoneBuilder::quick().fit(&suite.train, 2));
//! println!("batches: {:?}", server.stats().batch_hist);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod chaos;
mod queue;
mod registry;
mod scheduler;
mod server;
mod stats;

pub use breaker::BreakerState;
pub use chaos::{corrupt_blob, ChaosConfig, ChaosFault, ChaosRule};
pub use registry::{ModelEntry, ModelRegistry};
pub use server::{
    LocalizationServer, LocateResponse, PendingLocate, ServeError, ServerConfig, ServerHandle,
    VenueHandle,
};
pub use stats::{StatsSnapshot, VenueStatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use stone::{KnnMode, StoneBuilder, StoneConfig, TrainerConfig};
    use stone_dataset::{office_suite, Localizer, SuiteConfig};

    fn tiny_localizer(seed: u64) -> stone::StoneLocalizer {
        let suite = office_suite(&SuiteConfig::tiny(seed));
        StoneBuilder::from_config(StoneConfig {
            trainer: TrainerConfig {
                embed_dim: 4,
                epochs: 2,
                triplets_per_epoch: 32,
                batch_size: 16,
                ..TrainerConfig::quick()
            },
            knn_k: 3,
            knn_mode: KnnMode::WeightedRegression,
        })
        .fit(&suite.train, seed)
    }

    fn quick_config() -> ServerConfig {
        ServerConfig { max_batch: 8, max_wait: Duration::from_millis(1), ..Default::default() }
    }

    #[test]
    fn served_answers_match_direct_locate() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("office", tiny_localizer(1));
        let mut server = LocalizationServer::start(Arc::clone(&registry), quick_config());
        let handle = server.handle();
        let snapshot = registry.snapshot("office").unwrap();
        for r in suite.train.records().iter().take(8) {
            let resp = handle.locate("office", &r.rssi).unwrap();
            assert_eq!(resp.position, snapshot.model().locate(&r.rssi));
            assert_eq!(resp.model_version, 1);
        }
        let stats = server.stats();
        server.shutdown();
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn unknown_venue_and_bad_scan_fail_per_request() {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("office", tiny_localizer(2));
        let mut server = LocalizationServer::start(Arc::clone(&registry), quick_config());
        let handle = server.handle();
        assert_eq!(
            handle.locate("warehouse", &[0.0; 4]).unwrap_err(),
            ServeError::UnknownVenue { venue: "warehouse".into() }
        );
        let expected = registry.snapshot("office").unwrap().model().encoder().codec().ap_count();
        assert_eq!(
            handle.locate("office", &[-60.0; 3]).unwrap_err(),
            ServeError::ScanDimensionMismatch { venue: "office".into(), expected, got: 3 }
        );
        // The server survives bad requests: a good one still works.
        let suite = office_suite(&SuiteConfig::tiny(2));
        assert!(handle.locate("office", &suite.train.records()[0].rssi).is_ok());
        server.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_requests_and_joins() {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("office", tiny_localizer(3));
        let mut server = LocalizationServer::start(registry, quick_config());
        let handle = server.handle();
        server.shutdown();
        // Idempotent: a second shutdown is a no-op, not a hang or a panic.
        server.shutdown();
        assert_eq!(handle.locate("office", &[0.0; 4]).unwrap_err(), ServeError::ShuttingDown);
    }

    #[test]
    fn registry_versions_are_monotonic_per_venue() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        assert_eq!(registry.publish("a", tiny_localizer(4)), 1);
        assert_eq!(registry.publish("b", tiny_localizer(5)), 1);
        assert_eq!(registry.publish("a", tiny_localizer(6)), 2);
        assert_eq!(registry.venues(), vec!["a".to_string(), "b".to_string()]);
        assert!(registry.remove("b"));
        assert!(!registry.remove("b"));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn publish_bytes_roundtrips_through_serialization() {
        let loc = tiny_localizer(7);
        let suite = office_suite(&SuiteConfig::tiny(7));
        let scan = &suite.train.records()[0].rssi;
        let direct = loc.locate(scan);
        let blob = loc.save();

        let registry = ModelRegistry::new();
        let version = registry.publish_bytes("office", &blob).unwrap();
        assert_eq!(version, 1);
        assert_eq!(registry.snapshot("office").unwrap().model().locate(scan), direct);
        assert!(registry.publish_bytes("office", &blob[..10]).is_err());
        // The failed publish left v1 in place.
        assert_eq!(registry.snapshot("office").unwrap().version(), 1);
    }
}
