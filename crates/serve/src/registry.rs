//! The per-venue model registry with atomic warm reload and last-good
//! fallback.
//!
//! Every venue (building / floorplan) maps to an [`Arc`]-shared
//! [`ModelEntry`]: an immutable `(version, StoneLocalizer)` snapshot.
//! [`ModelRegistry::publish`] swaps the venue's entry under a write lock, so
//! a retrained model becomes visible atomically; batch executors that
//! already cloned the previous `Arc` keep serving their in-flight requests
//! from the old snapshot and drop it when done — **warm reload with zero
//! dropped queries**. Every response carries the snapshot's version, so a
//! client (or a test) can attribute each answer to the exact model that
//! produced it.
//!
//! Since PR 9 each venue also retains its **previous** published snapshot:
//! when a freshly published model turns out to be broken at serve time (its
//! batches panic and trip the venue's circuit breaker — see
//! `scheduler.rs`), [`ModelRegistry::rollback`] restores the last-good
//! snapshot under its *original* version instead of leaving the venue dark.
//! Version numbers stay monotonic across a rollback: the next publish after
//! rolling back v2 → v1 is v3, never a second v2.
//!
//! All registry locks recover from poisoning (`PoisonError::into_inner`):
//! the guarded state is plain values that are never left half-updated, so a
//! panicking publisher must not cascade into every executor and connection
//! thread that touches the registry afterwards.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use stone::{ModelIoError, StoneLocalizer};

/// One immutable published model: the unit of atomic swap.
#[derive(Debug)]
pub struct ModelEntry {
    venue: String,
    version: u64,
    model: StoneLocalizer,
}

impl ModelEntry {
    /// The venue this model serves.
    #[must_use]
    pub fn venue(&self) -> &str {
        &self.venue
    }

    /// Monotonically increasing per-venue version (1 for the first
    /// publish). Echoed in every [`crate::LocateResponse`].
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The deployed model snapshot.
    #[must_use]
    pub fn model(&self) -> &StoneLocalizer {
        &self.model
    }
}

/// One venue's slot: the serving snapshot, the previous one (rollback
/// target), and the next version number to hand out.
#[derive(Debug)]
struct VenueSlot {
    current: Arc<ModelEntry>,
    /// The snapshot `current` replaced, kept as the rollback target until
    /// the next publish (or a rollback consumes it).
    last_good: Option<Arc<ModelEntry>>,
    /// Versions stay monotonic across rollbacks: this counter never rewinds.
    next_version: u64,
}

/// A thread-safe venue → model map with atomic publish and last-good
/// rollback.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use stone::StoneBuilder;
/// use stone_dataset::{office_suite, SuiteConfig};
/// use stone_serve::ModelRegistry;
///
/// let suite = office_suite(&SuiteConfig::tiny(1));
/// let registry = Arc::new(ModelRegistry::new());
/// let v1 = registry.publish("office", StoneBuilder::quick().fit(&suite.train, 1));
/// assert_eq!(v1, 1);
/// // Retrain and hot-swap: in-flight requests keep their old snapshot.
/// let v2 = registry.publish("office", StoneBuilder::quick().fit(&suite.train, 2));
/// assert_eq!(v2, 2);
/// assert_eq!(registry.snapshot("office").unwrap().version(), 2);
/// // v2 turns out bad: fall back to the retained v1 snapshot.
/// assert_eq!(registry.rollback("office"), Some(1));
/// assert_eq!(registry.snapshot("office").unwrap().version(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ModelRegistry {
    venues: RwLock<HashMap<String, VenueSlot>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or replaces) the venue's model and returns the new
    /// version. The swap is atomic: callers either see the old entry or the
    /// new one, never a mix, and snapshots taken before the swap stay valid
    /// until their last holder drops them. The replaced snapshot is
    /// retained as the venue's [`ModelRegistry::rollback`] target.
    pub fn publish(&self, venue: &str, model: StoneLocalizer) -> u64 {
        let mut venues = self.venues.write().unwrap_or_else(|e| e.into_inner());
        let slot = venues.get_mut(venue);
        let version = slot.as_ref().map_or(1, |s| s.next_version);
        let entry = Arc::new(ModelEntry { venue: venue.to_string(), version, model });
        match slot {
            Some(slot) => {
                slot.last_good = Some(std::mem::replace(&mut slot.current, entry));
                slot.next_version = version + 1;
            }
            None => {
                venues.insert(
                    venue.to_string(),
                    VenueSlot { current: entry, last_good: None, next_version: version + 1 },
                );
            }
        }
        version
    }

    /// Publishes a model from its serialized form ([`StoneLocalizer::save`])
    /// — the path a retrainer in another process (or on another machine)
    /// uses to ship a fresh model into a running server.
    ///
    /// # Errors
    ///
    /// Returns [`ModelIoError`] when the bytes do not decode — including
    /// [`ModelIoError::ChecksumMismatch`] for a corrupted blob; the venue's
    /// current model (if any) stays published untouched.
    pub fn publish_bytes(&self, venue: &str, bytes: &[u8]) -> Result<u64, ModelIoError> {
        let model = StoneLocalizer::load(bytes)?;
        Ok(self.publish(venue, model))
    }

    /// Restores the venue's previous snapshot under its **original**
    /// version, returning that version — the degradation path a tripped
    /// circuit breaker takes instead of leaving the venue dark. Returns
    /// `None` (and changes nothing) when the venue is unknown or has no
    /// retained previous snapshot; the rollback target is consumed, so a
    /// second rollback without an intervening publish is a no-op.
    pub fn rollback(&self, venue: &str) -> Option<u64> {
        let mut venues = self.venues.write().unwrap_or_else(|e| e.into_inner());
        let slot = venues.get_mut(venue)?;
        let previous = slot.last_good.take()?;
        let version = previous.version;
        slot.current = previous;
        Some(version)
    }

    /// The version of the venue's retained rollback target, if any.
    #[must_use]
    pub fn last_good_version(&self, venue: &str) -> Option<u64> {
        let venues = self.venues.read().unwrap_or_else(|e| e.into_inner());
        venues.get(venue)?.last_good.as_ref().map(|e| e.version)
    }

    /// The venue's current model snapshot, or `None` for an unknown venue.
    #[must_use]
    pub fn snapshot(&self, venue: &str) -> Option<Arc<ModelEntry>> {
        let venues = self.venues.read().unwrap_or_else(|e| e.into_inner());
        venues.get(venue).map(|s| Arc::clone(&s.current))
    }

    /// Unpublishes a venue; returns `true` when it existed. In-flight
    /// snapshots keep serving until dropped. The whole slot goes — a later
    /// re-publish starts a fresh version lineage at 1.
    pub fn remove(&self, venue: &str) -> bool {
        self.venues.write().unwrap_or_else(|e| e.into_inner()).remove(venue).is_some()
    }

    /// Registered venue names, sorted.
    #[must_use]
    pub fn venues(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.venues.read().unwrap_or_else(|e| e.into_inner()).keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered venues.
    #[must_use]
    pub fn len(&self) -> usize {
        self.venues.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Returns `true` when no venue is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
