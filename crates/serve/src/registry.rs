//! The per-venue model registry with atomic warm reload.
//!
//! Every venue (building / floorplan) maps to an [`Arc`]-shared
//! [`ModelEntry`]: an immutable `(version, StoneLocalizer)` snapshot.
//! [`ModelRegistry::publish`] swaps the venue's entry under a write lock, so
//! a retrained model becomes visible atomically; batch executors that
//! already cloned the previous `Arc` keep serving their in-flight requests
//! from the old snapshot and drop it when done — **warm reload with zero
//! dropped queries**. Every response carries the snapshot's version, so a
//! client (or a test) can attribute each answer to the exact model that
//! produced it.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use stone::{ModelIoError, StoneLocalizer};

/// One immutable published model: the unit of atomic swap.
#[derive(Debug)]
pub struct ModelEntry {
    venue: String,
    version: u64,
    model: StoneLocalizer,
}

impl ModelEntry {
    /// The venue this model serves.
    #[must_use]
    pub fn venue(&self) -> &str {
        &self.venue
    }

    /// Monotonically increasing per-venue version (1 for the first
    /// publish). Echoed in every [`crate::LocateResponse`].
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The deployed model snapshot.
    #[must_use]
    pub fn model(&self) -> &StoneLocalizer {
        &self.model
    }
}

/// A thread-safe venue → model map with atomic publish.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use stone::StoneBuilder;
/// use stone_dataset::{office_suite, SuiteConfig};
/// use stone_serve::ModelRegistry;
///
/// let suite = office_suite(&SuiteConfig::tiny(1));
/// let registry = Arc::new(ModelRegistry::new());
/// let v1 = registry.publish("office", StoneBuilder::quick().fit(&suite.train, 1));
/// assert_eq!(v1, 1);
/// // Retrain and hot-swap: in-flight requests keep their old snapshot.
/// let v2 = registry.publish("office", StoneBuilder::quick().fit(&suite.train, 2));
/// assert_eq!(v2, 2);
/// assert_eq!(registry.snapshot("office").unwrap().version(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ModelRegistry {
    venues: RwLock<HashMap<String, Arc<ModelEntry>>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or replaces) the venue's model and returns the new
    /// version. The swap is atomic: callers either see the old entry or the
    /// new one, never a mix, and snapshots taken before the swap stay valid
    /// until their last holder drops them.
    ///
    /// # Panics
    ///
    /// Panics when the registry lock is poisoned (a publisher panicked).
    pub fn publish(&self, venue: &str, model: StoneLocalizer) -> u64 {
        let mut venues = self.venues.write().expect("registry lock");
        let version = venues.get(venue).map_or(0, |e| e.version) + 1;
        venues.insert(
            venue.to_string(),
            Arc::new(ModelEntry { venue: venue.to_string(), version, model }),
        );
        version
    }

    /// Publishes a model from its serialized form ([`StoneLocalizer::save`])
    /// — the path a retrainer in another process (or on another machine)
    /// uses to ship a fresh model into a running server.
    ///
    /// # Errors
    ///
    /// Returns [`ModelIoError`] when the bytes do not decode; the venue's
    /// current model (if any) stays published untouched.
    pub fn publish_bytes(&self, venue: &str, bytes: &[u8]) -> Result<u64, ModelIoError> {
        let model = StoneLocalizer::load(bytes)?;
        Ok(self.publish(venue, model))
    }

    /// The venue's current model snapshot, or `None` for an unknown venue.
    ///
    /// # Panics
    ///
    /// Panics when the registry lock is poisoned.
    #[must_use]
    pub fn snapshot(&self, venue: &str) -> Option<Arc<ModelEntry>> {
        self.venues.read().expect("registry lock").get(venue).cloned()
    }

    /// Unpublishes a venue; returns `true` when it existed. In-flight
    /// snapshots keep serving until dropped.
    ///
    /// # Panics
    ///
    /// Panics when the registry lock is poisoned.
    pub fn remove(&self, venue: &str) -> bool {
        self.venues.write().expect("registry lock").remove(venue).is_some()
    }

    /// Registered venue names, sorted.
    ///
    /// # Panics
    ///
    /// Panics when the registry lock is poisoned.
    #[must_use]
    pub fn venues(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.venues.read().expect("registry lock").keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered venues.
    ///
    /// # Panics
    ///
    /// Panics when the registry lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.venues.read().expect("registry lock").len()
    }

    /// Returns `true` when no venue is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
