//! The venue-affine batch executors.
//!
//! Each executor thread loops: ask the [`ShardedQueue`] for its next
//! **single-venue** batch (deepest backlog first, `max_wait`-overdue heads
//! before that — see the queue's victim policy), snapshot that venue's
//! model once, run one [`stone::StoneLocalizer::locate_batch`], reply.
//! Because a batch never mixes venues, the encoder amortization that pays
//! for batching survives venue fan-out: 16 venues at depth 64 drain as 16
//! fat single-venue batches, not 16 four-scan slivers per drain.
//!
//! The registry snapshot is taken *per batch*: a warm reload
//! ([`crate::ModelRegistry::publish`]) between two batches of the same
//! venue is picked up by the second one, while the in-flight batch keeps
//! the `Arc` snapshot it started with — reload never tears a batch.
//! A venue removed from the registry while requests are queued fails those
//! requests per-request with [`ServeError::UnknownVenue`]; nothing panics
//! and no ticket hangs.

use stone_radio::Point2;

use crate::queue::{Collected, Request, ShardedQueue};
use crate::registry::ModelRegistry;
use crate::server::{LocateResponse, ServeError, ServerConfig, Shared};

/// One executor thread: pull a single-venue batch, execute, reply, repeat —
/// until the queue closes and drains dry.
pub(crate) fn executor_loop(
    queue: &ShardedQueue,
    registry: &ModelRegistry,
    shared: &Shared,
    cfg: ServerConfig,
) {
    loop {
        match queue.collect(cfg.max_batch, cfg.max_wait) {
            Collected::Closed => return,
            Collected::Batch { venue, requests } => {
                execute_batch(registry, shared, &cfg, &venue, requests);
            }
        }
    }
}

/// Answers every request of one single-venue batch: snapshot the venue's
/// model once (the consistency unit across warm reloads), one
/// `locate_batch` for every well-formed scan, per-request errors for the
/// rest — one bad query never takes down a batch, a worker, or the server.
fn execute_batch(
    registry: &ModelRegistry,
    shared: &Shared,
    cfg: &ServerConfig,
    venue: &str,
    batch: Vec<Request>,
) {
    let vstats = shared.stats.venue(venue);
    shared.stats.record_batch(batch.len());
    vstats.record_batch(batch.len());

    let mut results: Vec<Option<Result<LocateResponse, ServeError>>> = Vec::new();
    results.resize_with(batch.len(), || None);

    let entry = registry.snapshot(venue);
    match entry {
        // Unknown venue (never published, or removed with requests still
        // queued): every request fails individually — the regression pinned
        // by tests/scheduler_fairness.rs.
        None => {
            for r in &mut results {
                *r = Some(Err(ServeError::UnknownVenue { venue: venue.to_string() }));
            }
        }
        Some(entry) if entry.model().knn().is_empty() => {
            for r in &mut results {
                *r = Some(Err(ServeError::EmptyModel { venue: venue.to_string() }));
            }
        }
        Some(entry) => {
            let expected = entry.model().encoder().codec().ap_count();
            let mut ok_idx = Vec::with_capacity(batch.len());
            for (i, req) in batch.iter().enumerate() {
                let got = req.rssi.len();
                if got == expected {
                    ok_idx.push(i);
                } else {
                    results[i] = Some(Err(ServeError::ScanDimensionMismatch {
                        venue: venue.to_string(),
                        expected,
                        got,
                    }));
                }
            }
            if !ok_idx.is_empty() {
                let scans: Vec<&[f32]> = ok_idx.iter().map(|&i| batch[i].rssi.as_slice()).collect();
                let positions: Vec<Point2> = if cfg.workers > 1 {
                    // Several executors may be running batches concurrently:
                    // each keeps its kernels inline so the machine is not
                    // oversubscribed (see ServerConfig::workers).
                    stone_par::inline_scope(|| entry.model().locate_batch(&scans))
                } else {
                    entry.model().locate_batch(&scans)
                };
                for (&i, position) in ok_idx.iter().zip(positions) {
                    results[i] =
                        Some(Ok(LocateResponse { position, model_version: entry.version() }));
                }
            }
        }
    }

    for (req, result) in batch.into_iter().zip(results) {
        let result = result.expect("every request of the batch is answered");
        // Record completion *before* the reply lands: the moment a client's
        // wait() returns, a stats() snapshot must already account for its
        // request (the smoke test reads exact counts right after the last
        // reply).
        let latency = req.enqueued.elapsed();
        shared.stats.record_completed(latency);
        vstats.record_completed(latency);
        req.reply.send(result);
    }
}
