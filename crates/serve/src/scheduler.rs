//! The venue-affine batch executors.
//!
//! Each executor thread loops: ask the [`ShardedQueue`] for its next
//! **single-venue** batch (deepest backlog first, `max_wait`-overdue heads
//! before that — see the queue's victim policy), snapshot that venue's
//! model once, run one [`stone::StoneLocalizer::locate_batch`], reply.
//! Because a batch never mixes venues, the encoder amortization that pays
//! for batching survives venue fan-out: 16 venues at depth 64 drain as 16
//! fat single-venue batches, not 16 four-scan slivers per drain.
//!
//! The registry snapshot is taken *per batch*: a warm reload
//! ([`crate::ModelRegistry::publish`]) between two batches of the same
//! venue is picked up by the second one, while the in-flight batch keeps
//! the `Arc` snapshot it started with — reload never tears a batch.
//! A venue removed from the registry while requests are queued fails those
//! requests per-request with [`ServeError::UnknownVenue`]; nothing panics
//! and no ticket hangs.
//!
//! # Resilience (PR 9)
//!
//! The executor is the server's failure containment point:
//!
//! * **Expired requests** (deadline passed while queued) are split out by
//!   the queue at collect time and answered
//!   [`ServeError::DeadlineExceeded`] here — they never occupy a batch slot
//!   and never reach `locate_batch`.
//! * **The model call runs under `catch_unwind`**: a panicking model (a bad
//!   publish, a poisoned weight) fails only its own batch's requests with
//!   [`ServeError::Internal`]; the executor thread survives and keeps
//!   draining.
//! * **Consecutive panicked batches trip the venue's circuit breaker**
//!   ([`crate::ServerConfig::breaker_threshold`]): while open, the venue's
//!   batches fast-fail with [`ServeError::VenueUnavailable`] without
//!   touching the model, and the trip rolls the venue back to its
//!   last-good registry snapshot ([`crate::ModelRegistry::rollback`]) so
//!   the half-open probe after the cooldown usually lands on a healthy
//!   model. Other venues never notice.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use stone_obs::{record_span_between, Stage};
use stone_radio::Point2;

use crate::breaker::Admit;
use crate::queue::{Collected, Request, ShardedQueue};
use crate::registry::ModelRegistry;
use crate::server::{LocateResponse, ServeError, ServerConfig, Shared};
use crate::stats::VenueStats;

/// One executor thread: pull a single-venue batch, execute, reply, repeat —
/// until the queue closes and drains dry.
///
/// Each executor memoizes the venue → stats-block lookups it has done
/// (`shared.stats.venue` takes the stats map's read lock), so a venue's
/// steady-state batches record against a locally cached `Arc` — the
/// executor-side half of the hot-path fix measured in
/// docs/PERFORMANCE.md (the submit side is [`crate::VenueHandle`]).
pub(crate) fn executor_loop(
    queue: &ShardedQueue,
    registry: &ModelRegistry,
    shared: &Shared,
    cfg: ServerConfig,
) {
    let mut venue_stats: HashMap<String, Arc<VenueStats>> = HashMap::new();
    loop {
        match queue.collect(cfg.max_batch, cfg.max_wait) {
            Collected::Closed => return,
            Collected::Batch { venue, requests, expired, drained_at } => {
                let vstats = Arc::clone(
                    venue_stats.entry(venue.clone()).or_insert_with(|| shared.stats.venue(&venue)),
                );
                // Last-resort isolation: the model call has its own
                // catch_unwind below, but nothing anywhere in batch
                // handling may kill the executor. Requests dropped by a
                // panic here still answer — the reply channel's drop makes
                // wait() return ShuttingDown, and a ReplyCallback fires
                // ShuttingDown from its Drop impl.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    if !expired.is_empty() {
                        expire_requests(shared, &vstats, &venue, expired);
                    }
                    if !requests.is_empty() {
                        execute_batch(
                            registry, shared, &vstats, &cfg, &venue, requests, drained_at,
                        );
                    }
                }));
            }
        }
    }
}

/// Answers requests whose deadline passed while they were queued. They are
/// counted as completions (queue-depth accounting) and as expirations, but
/// never as a batch — no model was touched.
fn expire_requests(shared: &Shared, vstats: &VenueStats, venue: &str, expired: Vec<Request>) {
    for req in expired {
        let latency = req.enqueued.elapsed();
        shared.stats.record_expired();
        vstats.record_expired();
        shared.stats.record_completed(latency);
        vstats.record_completed(latency);
        req.reply.send(Err(ServeError::DeadlineExceeded { venue: venue.to_string() }));
    }
}

/// Fast-fails a whole batch because the venue's breaker is open: every
/// request answers [`ServeError::VenueUnavailable`] without the model being
/// touched.
fn fast_fail_batch(shared: &Shared, vstats: &VenueStats, venue: &str, batch: Vec<Request>) {
    for req in batch {
        let latency = req.enqueued.elapsed();
        vstats.record_fast_failed();
        shared.stats.record_completed(latency);
        vstats.record_completed(latency);
        req.reply.send(Err(ServeError::VenueUnavailable { venue: venue.to_string() }));
    }
}

/// Answers every request of one single-venue batch: snapshot the venue's
/// model once (the consistency unit across warm reloads), one
/// `locate_batch` for every well-formed scan, per-request errors for the
/// rest — one bad query never takes down a batch, a worker, or the server.
///
/// When tracing is enabled, every answered request of the batch gets five
/// contiguous stage spans whose durations sum to its end-to-end latency:
/// queue wait (enqueue → drain begin, or zero for a straggler that joined
/// mid-window), collect (drain begin → batch handed over), snapshot
/// (breaker admission + registry snapshot), infer (dimension checks + the
/// model call + result assembly) and write-back (results ready → this
/// request's reply sent). Expired and fast-failed requests record no
/// spans — they never ran the pipeline being attributed.
#[allow(clippy::too_many_lines)]
fn execute_batch(
    registry: &ModelRegistry,
    shared: &Shared,
    vstats: &VenueStats,
    cfg: &ServerConfig,
    venue: &str,
    batch: Vec<Request>,
    drained_at: Instant,
) {
    // Stage boundary: the batch is in the executor's hands from here.
    let collected_at = Instant::now();

    // Breaker admission is per *batch*, before any batch accounting: a
    // fast-failed batch is not a batch the model executed.
    if shared.breakers.admit(venue) == Admit::FastFail {
        fast_fail_batch(shared, vstats, venue, batch);
        return;
    }

    shared.stats.record_batch(batch.len());
    vstats.record_batch(batch.len());

    let mut results: Vec<Option<Result<LocateResponse, ServeError>>> = Vec::new();
    results.resize_with(batch.len(), || None);

    let entry = registry.snapshot(venue);
    // Stage boundary: the model snapshot (the batch's consistency unit)
    // is pinned; everything after is inference.
    let snapshotted_at = Instant::now();
    match entry {
        // Unknown venue (never published, or removed with requests still
        // queued): every request fails individually — the regression pinned
        // by tests/scheduler_fairness.rs. No model ran, so the breaker
        // state is left untouched (a half-open probe stays half-open).
        None => {
            for r in &mut results {
                *r = Some(Err(ServeError::UnknownVenue { venue: venue.to_string() }));
            }
        }
        Some(entry) if entry.model().knn().is_empty() => {
            for r in &mut results {
                *r = Some(Err(ServeError::EmptyModel { venue: venue.to_string() }));
            }
        }
        Some(entry) => {
            let expected = entry.model().encoder().codec().ap_count();
            let mut ok_idx = Vec::with_capacity(batch.len());
            for (i, req) in batch.iter().enumerate() {
                let got = req.rssi.len();
                if got == expected {
                    ok_idx.push(i);
                } else {
                    results[i] = Some(Err(ServeError::ScanDimensionMismatch {
                        venue: venue.to_string(),
                        expected,
                        got,
                    }));
                }
            }
            if !ok_idx.is_empty() {
                let scans: Vec<&[f32]> = ok_idx.iter().map(|&i| batch[i].rssi.as_slice()).collect();
                let version = entry.version();
                let model = entry.model();
                // The isolation boundary: a panic in the model call (or an
                // injected chaos fault, which fires exactly here) fails
                // only this batch. AssertUnwindSafe is sound — the model
                // snapshot is immutable and dropped with the batch, and
                // every mutable capture is written only after a normal
                // return.
                let outcome = catch_unwind(AssertUnwindSafe(|| -> Vec<Point2> {
                    shared.chaos.before_batch(venue, version);
                    if cfg.workers > 1 {
                        // Several executors may be running batches
                        // concurrently: each keeps its kernels inline so
                        // the machine is not oversubscribed (see
                        // ServerConfig::workers).
                        stone_par::inline_scope(|| model.locate_batch(&scans))
                    } else {
                        model.locate_batch(&scans)
                    }
                }));
                match outcome {
                    Ok(positions) => {
                        shared.breakers.record_success(venue);
                        for (&i, position) in ok_idx.iter().zip(positions) {
                            results[i] =
                                Some(Ok(LocateResponse { position, model_version: version }));
                        }
                    }
                    Err(_) => {
                        shared.stats.record_panicked_batch();
                        vstats.record_panicked_batch();
                        if shared.breakers.record_failure(venue) {
                            vstats.record_breaker_trip();
                            // The trip's degradation move: swap the venue
                            // back to the snapshot the bad publish
                            // replaced, so the post-cooldown probe lands on
                            // the last-good model instead of re-panicking.
                            let _ = registry.rollback(venue);
                        }
                        for &i in &ok_idx {
                            results[i] =
                                Some(Err(ServeError::Internal { venue: venue.to_string() }));
                        }
                    }
                }
            }
        }
    }

    // Stage boundary: every request's result is decided; what remains is
    // per-request accounting and reply delivery.
    let inferred_at = Instant::now();

    for (req, result) in batch.into_iter().zip(results) {
        let result = result.expect("every request of the batch is answered");
        // Record completion *before* the reply lands: the moment a client's
        // wait() returns, a stats() snapshot must already account for its
        // request (the smoke test reads exact counts right after the last
        // reply).
        let latency = req.enqueued.elapsed();
        shared.stats.record_completed(latency);
        vstats.record_completed(latency);
        if req.trace_id != 0 && stone_obs::tracing_enabled() {
            let (trace_id, enqueued) = (req.trace_id, req.enqueued);
            req.reply.send(result);
            let replied_at = Instant::now();
            // A straggler that joined during the collect window was
            // enqueued after the drain began: its queue wait is zero and
            // its collect span starts at its own (later) enqueue instant,
            // keeping the five spans contiguous from enqueue to reply.
            let qw_end = enqueued.max(drained_at);
            record_span_between(trace_id, Stage::QueueWait, enqueued, qw_end);
            record_span_between(trace_id, Stage::Collect, qw_end, collected_at);
            record_span_between(trace_id, Stage::Snapshot, collected_at, snapshotted_at);
            record_span_between(trace_id, Stage::Infer, snapshotted_at, inferred_at);
            record_span_between(trace_id, Stage::WriteBack, inferred_at, replied_at);
        } else {
            req.reply.send(result);
        }
    }
}
