//! Property-based tests for the STONE framework components.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stone::{ApDropoutAugmenter, FloorplanAwareSelector, ImageCodec, TrainIndex, TripletSelector};
use stone_dataset::{Fingerprint, FingerprintDataset, ReferencePoint, RpId};
use stone_radio::{Point2, SimTime};

fn arb_dataset(n_rps: u32, fpr: usize, n_aps: usize) -> FingerprintDataset {
    let rps: Vec<ReferencePoint> = (0..n_rps)
        .map(|k| ReferencePoint {
            id: RpId(k),
            pos: Point2::new(f64::from(k % 7), f64::from(k / 7)),
        })
        .collect();
    let mut ds = FingerprintDataset::new("prop", n_aps, rps.clone());
    for rp in &rps {
        for j in 0..fpr {
            ds.push(Fingerprint {
                rssi: (0..n_aps)
                    .map(|a| -30.0 - ((a as f32 + j as f32 + rp.id.0 as f32) % 60.0))
                    .collect(),
                rp: rp.id,
                pos: rp.pos,
                time: SimTime::start(),
                ci: 0,
            });
        }
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalize_maps_into_unit_interval(v in -200.0f32..50.0) {
        let n = ImageCodec::normalize(v);
        prop_assert!((0.0..=1.0).contains(&n));
    }

    #[test]
    fn normalize_is_monotone(a in -100.0f32..0.0, b in -100.0f32..0.0) {
        if a <= b {
            prop_assert!(ImageCodec::normalize(a) <= ImageCodec::normalize(b));
        }
    }

    #[test]
    fn codec_side_covers_ap_count(n in 1usize..500) {
        let codec = ImageCodec::new(n);
        prop_assert!(codec.pixels() >= n);
        prop_assert!((codec.side() - 1) * (codec.side() - 1) < n);
    }

    #[test]
    fn encode_preserves_ap_pixels(n in 2usize..40, seed in 0u64..100) {
        let codec = ImageCodec::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let rssi: Vec<f32> = (0..n).map(|_| rng.gen_range(-100.0f32..0.0)).collect();
        let img = codec.encode(&rssi);
        for (i, &v) in rssi.iter().enumerate() {
            prop_assert!((img[i] - ImageCodec::normalize(v)).abs() < 1e-6);
        }
        for &p in &img[n..] {
            prop_assert_eq!(p, 0.0);
        }
    }

    #[test]
    fn augmentation_only_zeroes(seed in 0u64..200, p_upper in 0.0f32..=1.0) {
        let aug = ApDropoutAugmenter::new(p_upper);
        let mut rng = StdRng::seed_from_u64(seed);
        let before: Vec<f32> = (0..30).map(|i| if i % 4 == 0 { 0.0 } else { 0.1 + 0.02 * i as f32 }).collect();
        let mut after = before.clone();
        aug.augment(&mut after, &mut rng);
        for (b, a) in before.iter().zip(&after) {
            // Each pixel is either untouched or zeroed — never altered.
            prop_assert!(*a == *b || *a == 0.0);
        }
    }

    #[test]
    fn selector_invariants(seed in 0u64..200, n_rps in 3u32..25, fpr in 1usize..5) {
        let ds = arb_dataset(n_rps, fpr, 9);
        let index = TrainIndex::new(&ds);
        let sel = FloorplanAwareSelector::new(2.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let t = sel.select(&index, &mut rng);
        let recs = ds.records();
        // Anchor and positive share an RP; negative differs.
        prop_assert_eq!(recs[t.anchor].rp, recs[t.positive].rp);
        prop_assert_ne!(recs[t.anchor].rp, recs[t.negative].rp);
        if fpr > 1 {
            prop_assert_ne!(t.anchor, t.positive);
        }
    }
}
