//! Whole-model serialization properties: `load(save(m))` preserves `embed`
//! and `locate_batch` outputs **bitwise** across hyperparameter variations,
//! and corrupted or truncated blobs are rejected with an error, never a
//! panic.

use proptest::prelude::*;
use stone::{KnnMode, StoneBuilder, StoneConfig, StoneLocalizer, TrainerConfig};
use stone_dataset::{office_suite, Localizer, SuiteConfig};

fn fit(seed: u64, embed_dim: usize, knn_k: usize, knn_mode: KnnMode) -> StoneLocalizer {
    let suite = office_suite(&SuiteConfig::tiny(seed));
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim,
            epochs: 2,
            triplets_per_epoch: 32,
            batch_size: 16,
            ..TrainerConfig::quick()
        },
        knn_k,
        knn_mode,
    })
    .fit(&suite.train, seed)
}

/// Query scans the training set never saw: the later evaluation buckets.
fn query_scans(seed: u64) -> Vec<Vec<f32>> {
    office_suite(&SuiteConfig::tiny(seed))
        .buckets
        .iter()
        .flat_map(|b| b.raw_scans())
        .take(24)
        .collect()
}

proptest! {
    // Each case trains an encoder, so keep the count small; the dimensions
    // and KNN head still vary enough to cover the format's moving parts.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn roundtrip_preserves_embed_and_locate_batch_bitwise(
        seed in 0u64..1000,
        embed_dim in 3usize..7,
        knn_k in 1usize..5,
        regression in 0u8..2,
    ) {
        let mode = if regression == 1 { KnnMode::WeightedRegression } else { KnnMode::Classify };
        let original = fit(seed, embed_dim, knn_k, mode);
        let blob = original.save();
        let loaded = StoneLocalizer::load(&blob).expect("roundtrip decodes");

        let scans = query_scans(seed);
        for scan in &scans {
            // f32 vectors compared with ==: bitwise, not approximate.
            prop_assert_eq!(original.embed(scan), loaded.embed(scan));
            prop_assert_eq!(original.locate(scan), loaded.locate(scan));
        }
        let refs: Vec<&[f32]> = scans.iter().map(|s| s.as_slice()).collect();
        prop_assert_eq!(original.locate_batch(&refs), loaded.locate_batch(&refs));

        // The loaded model re-serializes to the identical bytes.
        prop_assert_eq!(loaded.save(), blob);
    }
}

#[test]
fn every_truncation_is_rejected_without_panicking() {
    let original = fit(3, 4, 3, KnnMode::WeightedRegression);
    let blob = original.save();
    // Every prefix is invalid: either the header breaks or some declared
    // count no longer fits the remaining bytes. ~64 probes spread over the
    // blob cross every section boundary of the format without decoding
    // megabytes thousands of times.
    let stride = (blob.len() / 64).max(1);
    let mut lengths: Vec<usize> = (0..blob.len()).step_by(stride).collect();
    lengths.extend([1, 4, 7, 8, 37, 54, 59, blob.len() - 1]);
    for len in lengths {
        let result = StoneLocalizer::load(&blob[..len]);
        assert!(result.is_err(), "prefix of {len} bytes decoded successfully");
    }
}

#[test]
fn corrupted_bytes_never_panic_and_structural_damage_is_rejected() {
    let original = fit(4, 4, 3, KnnMode::Classify);
    let blob = original.save();

    // Structural fields must reject outright: the magic (0), the version
    // (5), the selector tag (36), the KNN mode tag (53) and the AP count
    // (54) — a 0xFF flip turns each into a value that contradicts the rest
    // of the blob (for the AP count, the weight block no longer matches
    // the architecture the header describes).
    for &offset in &[0usize, 5, 36, 53, 54] {
        let mut bad = blob.clone();
        bad[offset] ^= 0xFF;
        assert!(
            StoneLocalizer::load(&bad).is_err(),
            "flip at structural offset {offset} decoded successfully"
        );
    }

    // Arbitrary single-byte damage anywhere in the blob must never panic
    // (payload flips may still decode — to a different but valid model).
    for offset in (0..blob.len()).step_by((blob.len() / 32).max(1)) {
        let mut bad = blob.clone();
        bad[offset] ^= 0x55;
        let _ = StoneLocalizer::load(&bad);
    }

    // Garbage of various sizes must never panic either.
    for size in [0usize, 3, 8, 64, 1024] {
        let garbage: Vec<u8> = (0..size).map(|i| (i * 37 + 11) as u8).collect();
        assert!(StoneLocalizer::load(&garbage).is_err());
    }
}
