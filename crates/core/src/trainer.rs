//! The Siamese triplet-loss trainer (Sec. IV.A/IV.E of the paper).
//!
//! Weight sharing across the anchor/positive/negative towers is realized by
//! running the *same* [`Sequential`] over the three batches and summing the
//! three parameter-gradient sets before each optimizer step.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_dataset::FingerprintDataset;
use stone_nn::{Adam, Optimizer, Sequential, TripletLoss};
use stone_tensor::Tensor;

use crate::augment::ApDropoutAugmenter;
use crate::encoder::{build_encoder, EncoderConfig};
use crate::preprocess::ImageCodec;
use crate::triplet::{
    FloorplanAwareSelector, RssiHardSelector, SelectorKind, TrainIndex, TripletSelector,
    UniformSelector,
};

/// Hyperparameters of one STONE training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Embedding dimension `d` (paper: 3–10).
    pub embed_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Triplets drawn per epoch.
    pub triplets_per_epoch: usize,
    /// Triplets per optimizer step.
    pub batch_size: usize,
    /// Triplet margin `α` (Eq. 2).
    pub margin: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Upper bound of the AP turn-off augmentation (Eq. 4; paper: 0.90).
    pub p_upper: f32,
    /// Triplet selection strategy (paper: floorplan-aware).
    pub selector: SelectorKind,
    /// Spatial σ of the floorplan-aware selector, in meters.
    pub selector_sigma_m: f64,
    /// Extra AP-masked variants of each offline fingerprint enrolled into
    /// the embedding-KNN reference set (besides the clean embedding).
    ///
    /// The paper embeds "the RSSI fingerprints from the offline phase"
    /// (Fig. 2); enrolling augmented variants extends that set with the same
    /// Eq. 4 turn-off augmentation used in training, so that a query missing
    /// half its APs finds like-masked references of the correct RP. This is
    /// the enrollment-side counterpart of the long-term augmentation.
    pub enroll_augment: usize,
}

impl TrainerConfig {
    /// A configuration sized for the single-core machines this reproduction
    /// targets (see `DESIGN.md`); used by benches in quick mode.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            embed_dim: 8,
            epochs: 8,
            triplets_per_epoch: 320,
            batch_size: 32,
            margin: 0.4,
            learning_rate: 1e-3,
            p_upper: 0.90,
            selector: SelectorKind::FloorplanAware,
            selector_sigma_m: 4.0,
            enroll_augment: 2,
        }
    }

    /// The default figure-bench schedule: long enough for the encoder to
    /// converge on the evaluation suites, still minutes-scale on one core.
    #[must_use]
    pub fn standard() -> Self {
        Self { epochs: 12, triplets_per_epoch: 384, ..Self::quick() }
    }

    /// A longer schedule closer to the paper's training budget.
    #[must_use]
    pub fn paper() -> Self {
        Self { epochs: 20, triplets_per_epoch: 512, ..Self::quick() }
    }

    fn validate(&self) {
        assert!(self.epochs > 0, "epochs must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.triplets_per_epoch >= self.batch_size, "epoch must hold at least one batch");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
    }
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean triplet loss over the epoch.
    pub loss: f32,
    /// Mean fraction of margin-violating (gradient-contributing) triplets.
    pub active_fraction: f32,
}

/// A trained Siamese encoder plus its preprocessing codec.
pub struct TrainedEncoder {
    net: Sequential,
    codec: ImageCodec,
    history: Vec<EpochStats>,
}

impl TrainedEncoder {
    /// Reassembles a trained encoder from its parts — the deserialization
    /// hook of the model round-trip (`StoneLocalizer::save`/`load`).
    ///
    /// # Panics
    ///
    /// Panics when the network's input layout cannot match the codec (no
    /// parameters at all).
    #[must_use]
    pub fn from_parts(net: Sequential, codec: ImageCodec, history: Vec<EpochStats>) -> Self {
        assert!(!net.params().is_empty(), "encoder network has no parameters");
        Self { net, codec, history }
    }

    /// The preprocessing codec matching this encoder's input layout.
    #[must_use]
    pub fn codec(&self) -> &ImageCodec {
        &self.codec
    }

    /// The underlying network (e.g. for weight export via
    /// [`stone_nn::save_weights`]).
    #[must_use]
    pub fn net(&self) -> &Sequential {
        &self.net
    }

    /// Training history, one entry per epoch.
    #[must_use]
    pub fn history(&self) -> &[EpochStats] {
        &self.history
    }

    /// Embeds one raw dBm fingerprint onto the unit hypersphere.
    #[must_use]
    pub fn embed(&self, rssi: &[f32]) -> Vec<f32> {
        let x = self.codec.encode_batch(&[rssi]);
        self.net.predict(&x).into_vec()
    }

    /// Embeds a batch of raw fingerprints; returns `[n, d]`.
    #[must_use]
    pub fn embed_batch(&self, raw: &[&[f32]]) -> Tensor {
        let x = self.codec.encode_batch(raw);
        self.net.predict(&x)
    }
}

impl std::fmt::Debug for TrainedEncoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TrainedEncoder(side={}, params={}, epochs={})",
            self.codec.side(),
            self.net.param_count(),
            self.history.len()
        )
    }
}

/// Trains STONE encoders from fingerprint datasets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SiameseTrainer {
    cfg: TrainerConfig,
}

impl SiameseTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics on an internally inconsistent configuration.
    #[must_use]
    pub fn new(cfg: TrainerConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Trains an encoder on the offline dataset.
    ///
    /// # Panics
    ///
    /// Panics when the dataset has records at fewer than two RPs or an AP
    /// universe too small for the convolutional architecture.
    #[must_use]
    pub fn train(&self, ds: &FingerprintDataset, seed: u64) -> TrainedEncoder {
        let mut rng = StdRng::seed_from_u64(seed);
        let codec = ImageCodec::new(ds.ap_count());
        let enc_cfg = EncoderConfig::paper(codec.side(), self.cfg.embed_dim);
        let mut net = build_encoder(&enc_cfg, &mut rng);

        let index = TrainIndex::new(ds);
        let selector: Box<dyn TripletSelector> = match self.cfg.selector {
            SelectorKind::FloorplanAware => {
                Box::new(FloorplanAwareSelector::new(self.cfg.selector_sigma_m))
            }
            SelectorKind::Uniform => Box::new(UniformSelector),
            SelectorKind::RssiHard => Box::new(RssiHardSelector::new(ds, 5)),
        };
        let augmenter = ApDropoutAugmenter::new(self.cfg.p_upper);
        let loss_fn = TripletLoss::new(self.cfg.margin);
        let mut opt = Adam::with_lr(self.cfg.learning_rate);

        // Pre-encode every training record once; augmentation copies these.
        let images: Vec<Vec<f32>> = ds.records().iter().map(|r| codec.encode(&r.rssi)).collect();

        let steps = self.cfg.triplets_per_epoch / self.cfg.batch_size;
        let mut history = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            let mut loss_sum = 0.0;
            let mut active_sum = 0.0;
            for _ in 0..steps {
                let mut anchors = Vec::with_capacity(self.cfg.batch_size);
                let mut positives = Vec::with_capacity(self.cfg.batch_size);
                let mut negatives = Vec::with_capacity(self.cfg.batch_size);
                for _ in 0..self.cfg.batch_size {
                    let t = selector.select(&index, &mut rng);
                    let mut a = images[t.anchor].clone();
                    let mut p = images[t.positive].clone();
                    let mut n = images[t.negative].clone();
                    augmenter.augment(&mut a, &mut rng);
                    augmenter.augment(&mut p, &mut rng);
                    augmenter.augment(&mut n, &mut rng);
                    anchors.push(a);
                    positives.push(p);
                    negatives.push(n);
                }
                let xa = codec.batch_to_tensor(&anchors);
                let xp = codec.batch_to_tensor(&positives);
                let xn = codec.batch_to_tensor(&negatives);

                let (ya, ca) = net.forward_train(&xa, &mut rng);
                let (yp, cp) = net.forward_train(&xp, &mut rng);
                let (yn, cn) = net.forward_train(&xn, &mut rng);
                let (stats, grads) = loss_fn.loss(&ya, &yp, &yn);
                loss_sum += stats.loss;
                active_sum += stats.active_fraction;

                if stats.active_fraction > 0.0 {
                    // Shared weights: sum the three towers' gradients.
                    let mut back = net.backward(&ca, &grads.anchor);
                    back.accumulate(&net.backward(&cp, &grads.positive));
                    back.accumulate(&net.backward(&cn, &grads.negative));
                    let flat: Vec<Tensor> = back.param_grads.into_iter().flatten().collect();
                    opt.step(&mut net.params_mut(), &flat);
                }
            }
            history.push(EpochStats {
                epoch,
                loss: loss_sum / steps as f32,
                active_fraction: active_sum / steps as f32,
            });
        }

        TrainedEncoder { net, codec, history }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stone_dataset::{office_suite, SuiteConfig};

    fn tiny_trainer() -> SiameseTrainer {
        SiameseTrainer::new(TrainerConfig {
            embed_dim: 4,
            epochs: 2,
            triplets_per_epoch: 32,
            batch_size: 8,
            ..TrainerConfig::quick()
        })
    }

    #[test]
    fn training_produces_history_and_unit_embeddings() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let enc = tiny_trainer().train(&suite.train, 3);
        assert_eq!(enc.history().len(), 2);
        let e = enc.embed(&suite.train.records()[0].rssi);
        assert_eq!(e.len(), 4);
        let norm: f32 = e.iter().map(|&v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let suite = office_suite(&SuiteConfig::tiny(2));
        let a = tiny_trainer().train(&suite.train, 9);
        let b = tiny_trainer().train(&suite.train, 9);
        assert_eq!(
            a.embed(&suite.train.records()[0].rssi),
            b.embed(&suite.train.records()[0].rssi)
        );
        let c = tiny_trainer().train(&suite.train, 10);
        assert_ne!(
            a.embed(&suite.train.records()[0].rssi),
            c.embed(&suite.train.records()[0].rssi)
        );
    }

    #[test]
    fn loss_decreases_over_training() {
        let suite = office_suite(&SuiteConfig::tiny(3));
        let trainer = SiameseTrainer::new(TrainerConfig {
            embed_dim: 4,
            epochs: 6,
            triplets_per_epoch: 64,
            batch_size: 16,
            ..TrainerConfig::quick()
        });
        let enc = trainer.train(&suite.train, 4);
        let first = enc.history().first().unwrap().loss;
        let last = enc.history().last().unwrap().loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn config_validation() {
        let _ = SiameseTrainer::new(TrainerConfig {
            triplets_per_epoch: 4,
            batch_size: 32,
            ..TrainerConfig::quick()
        });
    }
}
