//! Non-parametric KNN over encoder embeddings (Sec. III/IV.A).
//!
//! After the Siamese encoder is trained, the offline fingerprints are
//! embedded and a KNN model over the embeddings predicts the user location
//! online. The paper uses a KNN *classifier* (predicting a known RP); a
//! distance-weighted regression mode is provided as well since it is the
//! common LearnLoc-style variant.

use std::collections::HashMap;

use stone_dataset::RpId;
use stone_radio::Point2;

/// How KNN turns neighbours into a position estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnMode {
    /// Majority vote over the k nearest labels; the predicted position is
    /// the winning RP's surveyed position (the paper's classifier).
    #[default]
    Classify,
    /// Inverse-distance-weighted average of the k nearest positions.
    WeightedRegression,
}

/// A KNN model over embedding vectors.
///
/// # Example
///
/// ```
/// use stone::{EmbeddingKnn, KnnMode};
/// use stone_dataset::RpId;
/// use stone_radio::Point2;
///
/// let mut knn = EmbeddingKnn::new(1, KnnMode::Classify);
/// knn.insert(vec![0.0, 1.0], RpId(0), Point2::new(0.0, 0.0));
/// knn.insert(vec![1.0, 0.0], RpId(1), Point2::new(5.0, 0.0));
/// let p = knn.locate(&[0.9, 0.1]);
/// assert_eq!(p, Point2::new(5.0, 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingKnn {
    k: usize,
    mode: KnnMode,
    embeddings: Vec<Vec<f32>>,
    labels: Vec<RpId>,
    positions: Vec<Point2>,
}

impl EmbeddingKnn {
    /// Creates an empty model.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    #[must_use]
    pub fn new(k: usize, mode: KnnMode) -> Self {
        assert!(k > 0, "k must be at least 1");
        Self { k, mode, embeddings: Vec::new(), labels: Vec::new(), positions: Vec::new() }
    }

    /// Number of stored reference embeddings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.embeddings.len()
    }

    /// Returns `true` when no reference embeddings are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.embeddings.is_empty()
    }

    /// The neighbour count `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured position-estimation mode.
    #[must_use]
    pub fn mode(&self) -> KnnMode {
        self.mode
    }

    /// Iterates the stored reference entries `(embedding, label, position)`
    /// in insertion order — the order that decides exact-distance ties, so
    /// replaying these entries into a fresh model via
    /// [`EmbeddingKnn::insert`] reproduces every prediction bitwise (the
    /// model-serialization contract).
    pub fn entries(&self) -> impl Iterator<Item = (&[f32], RpId, Point2)> {
        self.embeddings
            .iter()
            .zip(&self.labels)
            .zip(&self.positions)
            .map(|((e, &l), &p)| (e.as_slice(), l, p))
    }

    /// Adds one reference embedding.
    ///
    /// # Panics
    ///
    /// Panics when the embedding dimension differs from previously inserted
    /// entries.
    pub fn insert(&mut self, embedding: Vec<f32>, label: RpId, pos: Point2) {
        if let Some(first) = self.embeddings.first() {
            assert_eq!(first.len(), embedding.len(), "embedding dimension mismatch");
        }
        self.embeddings.push(embedding);
        self.labels.push(label);
        self.positions.push(pos);
    }

    /// Multiply-accumulate count (references × embedding dim) above which
    /// the brute-force distance sweep is split across threads. Re-derived
    /// against the worker pool (PR 6): a fork-join region now costs
    /// ~3.3 µs (`stone-par`'s `spawn_probe`), and at the sweep's scalar
    /// ~1.5 MAC/ns, halving the sweep breaks even near 10K MACs; 2¹⁴
    /// (~11 µs of sweep work) keeps a comfortable margin while engaging
    /// the parallel sweep on venue-sized registries that the spawn-era
    /// 2¹⁸ threshold left serial. Each distance depends only on its own
    /// reference entry, so the parallel sweep is bitwise identical to the
    /// serial one; the stable selection that follows is always serial.
    const PAR_MIN_SWEEP_MACS: usize = 1 << 14;

    /// Squared distance between a stored embedding and the query.
    fn dist2(e: &[f32], query: &[f32]) -> f32 {
        e.iter().zip(query).map(|(&a, &b)| (a - b) * (a - b)).sum()
    }

    /// Indices and squared distances of the k nearest stored embeddings.
    ///
    /// Selection is O(N) + O(k log k), not a full O(N log N) sort: a
    /// quickselect partition around the k-th entry, then a sort of the
    /// k-prefix only. The comparator is total over `(distance, index)`, so
    /// equal distances resolve by insertion order — exactly the order the
    /// previous full *stable* distance sort produced, making the switch
    /// invisible to predictions.
    fn nearest(&self, query: &[f32]) -> Vec<(usize, f32)> {
        let sweep_macs = self.embeddings.len().saturating_mul(query.len());
        let mut dists: Vec<(usize, f32)> = if sweep_macs >= Self::PAR_MIN_SWEEP_MACS {
            stone_par::par_map(&self.embeddings, |i, e| (i, Self::dist2(e, query)))
        } else {
            self.embeddings.iter().enumerate().map(|(i, e)| (i, Self::dist2(e, query))).collect()
        };
        let cmp = |a: &(usize, f32), b: &(usize, f32)| {
            a.1.partial_cmp(&b.1).expect("finite distances").then(a.0.cmp(&b.0))
        };
        if dists.len() > self.k {
            dists.select_nth_unstable_by(self.k - 1, cmp);
            dists.truncate(self.k);
        }
        dists.sort_unstable_by(cmp);
        dists
    }

    /// Squared embedding distance to the single nearest reference entry — a
    /// cheap match-confidence proxy for self-training heuristics.
    ///
    /// # Panics
    ///
    /// Panics when the model is empty.
    #[must_use]
    pub fn nearest_distance(&self, query: &[f32]) -> f32 {
        assert!(!self.is_empty(), "KNN model has no reference embeddings");
        self.nearest(query)[0].1
    }

    /// Predicts the RP label (majority vote; nearest-neighbour distance
    /// breaks ties, then the smallest RP id).
    ///
    /// The comparator is total: an exact `(votes, best-distance)` tie
    /// resolves to the smallest [`RpId`], never to `HashMap` iteration
    /// order (which is randomized per map and made repeated runs of the
    /// same query disagree).
    ///
    /// # Panics
    ///
    /// Panics when the model is empty.
    #[must_use]
    pub fn classify(&self, query: &[f32]) -> RpId {
        assert!(!self.is_empty(), "KNN model has no reference embeddings");
        let neigh = self.nearest(query);
        let mut votes: HashMap<RpId, (usize, f32)> = HashMap::new();
        for &(i, d) in &neigh {
            let e = votes.entry(self.labels[i]).or_insert((0, f32::INFINITY));
            e.0 += 1;
            e.1 = e.1.min(d);
        }
        votes
            .into_iter()
            .max_by(|a, b| {
                // More votes wins; then the smaller best-distance; then the
                // smaller RP id (a total order — keys are unique, so no two
                // entries compare Equal and iteration order is irrelevant).
                a.1 .0
                    .cmp(&b.1 .0)
                    .then(b.1 .1.partial_cmp(&a.1 .1).expect("finite"))
                    .then(b.0.cmp(&a.0))
            })
            .map(|(rp, _)| rp)
            .expect("votes non-empty")
    }

    /// Predicts a position according to the configured [`KnnMode`].
    ///
    /// # Panics
    ///
    /// Panics when the model is empty.
    #[must_use]
    pub fn locate(&self, query: &[f32]) -> Point2 {
        assert!(!self.is_empty(), "KNN model has no reference embeddings");
        match self.mode {
            KnnMode::Classify => {
                let rp = self.classify(query);
                let idx = self.labels.iter().position(|&l| l == rp).expect("label stored");
                self.positions[idx]
            }
            KnnMode::WeightedRegression => {
                let neigh = self.nearest(query);
                let mut wx = 0.0;
                let mut wy = 0.0;
                let mut wsum = 0.0;
                for &(i, d) in &neigh {
                    let w = 1.0 / (f64::from(d) + 1e-6);
                    wx += self.positions[i].x * w;
                    wy += self.positions[i].y * w;
                    wsum += w;
                }
                Point2::new(wx / wsum, wy / wsum)
            }
        }
    }

    /// Minimum `queries × references` pairs before [`EmbeddingKnn::locate_batch`]
    /// goes parallel; below this the ~3.3 µs pool-dispatch cost per
    /// fork-join region (PR 6, `stone-par`'s `spawn_probe` — down from
    /// ~tens of µs when regions spawned threads) outweighs the sub-µs
    /// per-query sweeps. 2¹² pairs is ~40 µs of sweep work at a typical
    /// embedding dim; the spawn-era threshold was 2¹⁵, which kept
    /// serve-sized coalesced batches serial.
    const PAR_MIN_BATCH_WORK: usize = 1 << 12;

    /// Predicts positions for a batch of queries, one thread per block of
    /// queries (`STONE_THREADS` controls the budget) once the total work
    /// crosses `PAR_MIN_BATCH_WORK` (2¹²) query·reference pairs.
    /// Queries are independent, so the result equals calling
    /// [`EmbeddingKnn::locate`] per query, in order — on either path.
    ///
    /// # Panics
    ///
    /// Panics when the model is empty and `queries` is non-empty.
    ///
    /// # Example
    ///
    /// ```
    /// use stone::{EmbeddingKnn, KnnMode};
    /// use stone_dataset::RpId;
    /// use stone_radio::Point2;
    ///
    /// let mut knn = EmbeddingKnn::new(1, KnnMode::Classify);
    /// knn.insert(vec![0.0, 1.0], RpId(0), Point2::new(0.0, 0.0));
    /// knn.insert(vec![1.0, 0.0], RpId(1), Point2::new(5.0, 0.0));
    /// let ps = knn.locate_batch(&[vec![0.9, 0.1], vec![0.1, 0.9]]);
    /// assert_eq!(ps, vec![Point2::new(5.0, 0.0), Point2::new(0.0, 0.0)]);
    /// ```
    #[must_use]
    pub fn locate_batch(&self, queries: &[Vec<f32>]) -> Vec<Point2> {
        if queries.len().saturating_mul(self.len()) >= Self::PAR_MIN_BATCH_WORK {
            stone_par::par_map(queries, |_, q| self.locate(q))
        } else {
            queries.iter().map(|q| self.locate(q)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(mode: KnnMode, k: usize) -> EmbeddingKnn {
        let mut knn = EmbeddingKnn::new(k, mode);
        // Two clusters: RP0 near (0,0) in embedding space, RP1 near (1,1).
        knn.insert(vec![0.0, 0.0], RpId(0), Point2::new(0.0, 0.0));
        knn.insert(vec![0.1, 0.0], RpId(0), Point2::new(0.0, 0.0));
        knn.insert(vec![1.0, 1.0], RpId(1), Point2::new(10.0, 0.0));
        knn.insert(vec![0.9, 1.0], RpId(1), Point2::new(10.0, 0.0));
        knn
    }

    #[test]
    fn classify_majority() {
        let knn = model(KnnMode::Classify, 3);
        assert_eq!(knn.classify(&[0.05, 0.0]), RpId(0));
        assert_eq!(knn.classify(&[0.95, 1.0]), RpId(1));
    }

    #[test]
    fn locate_classify_returns_rp_position() {
        let knn = model(KnnMode::Classify, 1);
        assert_eq!(knn.locate(&[0.0, 0.1]), Point2::new(0.0, 0.0));
        assert_eq!(knn.locate(&[1.0, 0.9]), Point2::new(10.0, 0.0));
    }

    #[test]
    fn weighted_regression_interpolates() {
        let knn = model(KnnMode::WeightedRegression, 4);
        let p = knn.locate(&[0.5, 0.5]);
        assert!(p.x > 0.5 && p.x < 9.5, "expected interpolation, got {p}");
    }

    #[test]
    fn regression_near_cluster_sticks_to_it() {
        let knn = model(KnnMode::WeightedRegression, 2);
        let p = knn.locate(&[0.01, 0.0]);
        assert!(p.x < 1.0, "got {p}");
    }

    #[test]
    #[should_panic(expected = "no reference embeddings")]
    fn empty_model_panics() {
        let knn = EmbeddingKnn::new(1, KnnMode::Classify);
        let _ = knn.locate(&[0.0]);
    }

    #[test]
    fn locate_batch_matches_per_query_locate() {
        let knn = model(KnnMode::WeightedRegression, 2);
        let queries = vec![vec![0.05, 0.0], vec![0.95, 1.0], vec![0.5, 0.5]];
        let batch = knn.locate_batch(&queries);
        let single: Vec<_> = queries.iter().map(|q| knn.locate(q)).collect();
        assert_eq!(batch, single);
    }

    #[test]
    fn parallel_distance_sweep_is_bitwise_identical() {
        // Enough refs × dim MACs that the parallel sweep actually engages.
        let mut knn = EmbeddingKnn::new(7, KnnMode::WeightedRegression);
        for i in 0..(EmbeddingKnn::PAR_MIN_SWEEP_MACS / 2 + 500) {
            let a = (i as f32 * 0.37).sin();
            let b = (i as f32 * 0.11).cos();
            knn.insert(
                vec![a, b],
                RpId((i % 40) as u32),
                Point2::new((i % 7) as f64, (i % 13) as f64),
            );
        }
        let q = vec![0.2, -0.4];
        let serial = stone_par::with_threads(1, || knn.locate(&q));
        for nt in [2, 8] {
            assert_eq!(stone_par::with_threads(nt, || knn.locate(&q)), serial, "{nt} threads");
        }
    }

    #[test]
    fn exact_vote_tie_resolves_to_smallest_rp_id() {
        // k = 2, one vote per RP, identical distances: an exact
        // (votes, best-distance) tie. Before the total-order tie-break this
        // was decided by HashMap iteration order — randomized per map, so
        // repeated constructions could disagree. 100 fresh models (each
        // HashMap gets fresh hash keys) must all agree on the smaller RpId.
        for _ in 0..100 {
            let mut knn = EmbeddingKnn::new(2, KnnMode::Classify);
            knn.insert(vec![0.0, 1.0], RpId(7), Point2::new(0.0, 0.0));
            knn.insert(vec![1.0, 0.0], RpId(2), Point2::new(5.0, 0.0));
            assert_eq!(knn.classify(&[0.5, 0.5]), RpId(2));
            // Position lookup goes through the same tie-break.
            assert_eq!(knn.locate(&[0.5, 0.5]), Point2::new(5.0, 0.0));
        }
    }

    #[test]
    fn vote_tie_still_prefers_closer_cluster() {
        // Equal votes but unequal best distance: distance must win before
        // the RpId tie-break kicks in, even when the id order disagrees.
        let mut knn = EmbeddingKnn::new(2, KnnMode::Classify);
        knn.insert(vec![0.0, 0.0], RpId(9), Point2::new(0.0, 0.0));
        knn.insert(vec![1.0, 0.0], RpId(1), Point2::new(5.0, 0.0));
        assert_eq!(knn.classify(&[0.1, 0.0]), RpId(9));
    }

    #[test]
    fn selection_matches_full_stable_sort() {
        // The quickselect top-k must reproduce the old full stable sort
        // exactly, including insertion-order resolution of duplicate
        // distances that straddle the k boundary.
        let mut knn = EmbeddingKnn::new(4, KnnMode::WeightedRegression);
        // Six refs at only two distinct distances from the query (0,0):
        // d=1 for indices 0,2,4 and d=4 for indices 1,3,5.
        for i in 0..6u32 {
            let d = if i % 2 == 0 { 1.0 } else { 2.0 };
            knn.insert(vec![d, 0.0], RpId(i), Point2::new(f64::from(i), 0.0));
        }
        let got = knn.nearest(&[0.0, 0.0]);
        // Stable order: all d=1 refs by index, then d=4 refs by index.
        let idx: Vec<usize> = got.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![0, 2, 4, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn insert_rejects_dim_change() {
        let mut knn = EmbeddingKnn::new(1, KnnMode::Classify);
        knn.insert(vec![0.0, 1.0], RpId(0), Point2::new(0.0, 0.0));
        knn.insert(vec![0.0], RpId(1), Point2::new(1.0, 0.0));
    }
}
