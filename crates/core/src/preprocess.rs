//! RSSI fingerprint preprocessing (Sec. IV.B of the paper).
//!
//! RSSI values in `[-100, 0]` dBm are normalized to `[0, 1]` (0 = no
//! signal), zero-padded to the nearest square length, and reshaped into a
//! single-channel square image for the convolutional encoder.

use stone_dataset::MISSING_RSSI_DBM;
use stone_tensor::Tensor;

/// Converts raw dBm fingerprints into normalized square fingerprint images.
///
/// # Example
///
/// ```
/// use stone::ImageCodec;
///
/// let codec = ImageCodec::new(7); // 7 APs -> 3x3 image with 2 padded pixels
/// assert_eq!(codec.side(), 3);
/// let img = codec.encode(&[-100.0, -50.0, 0.0, -75.0, -100.0, -25.0, -60.0]);
/// assert_eq!(img.len(), 9);
/// assert_eq!(img[0], 0.0); // -100 dBm -> no signal
/// assert_eq!(img[2], 1.0); // 0 dBm -> full signal
/// assert_eq!(img[7], 0.0); // padding
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageCodec {
    ap_count: usize,
    side: usize,
}

impl ImageCodec {
    /// Creates a codec for an AP universe of the given size.
    ///
    /// # Panics
    ///
    /// Panics when `ap_count` is zero.
    #[must_use]
    pub fn new(ap_count: usize) -> Self {
        assert!(ap_count > 0, "AP universe must be non-empty");
        let side = (ap_count as f64).sqrt().ceil() as usize;
        Self { ap_count, side }
    }

    /// Number of APs in the universe.
    #[must_use]
    pub fn ap_count(&self) -> usize {
        self.ap_count
    }

    /// Side of the square fingerprint image.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Total pixels of the image (`side²`, ≥ `ap_count`).
    #[must_use]
    pub fn pixels(&self) -> usize {
        self.side * self.side
    }

    /// Normalizes one RSSI value from `[-100, 0]` dBm to `[0, 1]`.
    #[must_use]
    pub fn normalize(rssi_dbm: f32) -> f32 {
        ((rssi_dbm.clamp(MISSING_RSSI_DBM, 0.0) - MISSING_RSSI_DBM) / -MISSING_RSSI_DBM)
            .clamp(0.0, 1.0)
    }

    /// Encodes one raw fingerprint into a normalized, padded image buffer of
    /// length [`ImageCodec::pixels`].
    ///
    /// # Panics
    ///
    /// Panics when the fingerprint length differs from the AP universe.
    #[must_use]
    pub fn encode(&self, rssi: &[f32]) -> Vec<f32> {
        assert_eq!(rssi.len(), self.ap_count, "fingerprint AP-universe mismatch");
        let mut img = vec![0.0f32; self.pixels()];
        for (o, &v) in img.iter_mut().zip(rssi) {
            *o = Self::normalize(v);
        }
        img
    }

    /// Stacks pre-encoded image buffers into an NCHW tensor
    /// `[n, 1, side, side]`.
    ///
    /// # Panics
    ///
    /// Panics when any buffer has the wrong length or `images` is empty.
    #[must_use]
    pub fn batch_to_tensor(&self, images: &[Vec<f32>]) -> Tensor {
        assert!(!images.is_empty(), "batch must be non-empty");
        let px = self.pixels();
        let mut data = Vec::with_capacity(images.len() * px);
        for img in images {
            assert_eq!(img.len(), px, "image buffer length mismatch");
            data.extend_from_slice(img);
        }
        Tensor::from_vec(vec![images.len(), 1, self.side, self.side], data)
            .expect("length checked above")
    }

    /// Convenience: encodes raw fingerprints straight into an NCHW tensor.
    ///
    /// # Panics
    ///
    /// Panics when `raw` is empty or any fingerprint has the wrong length.
    #[must_use]
    pub fn encode_batch(&self, raw: &[&[f32]]) -> Tensor {
        let images: Vec<Vec<f32>> = raw.iter().map(|r| self.encode(r)).collect();
        self.batch_to_tensor(&images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_is_ceil_sqrt() {
        assert_eq!(ImageCodec::new(1).side(), 1);
        assert_eq!(ImageCodec::new(4).side(), 2);
        assert_eq!(ImageCodec::new(5).side(), 3);
        assert_eq!(ImageCodec::new(81).side(), 9);
        assert_eq!(ImageCodec::new(82).side(), 10);
    }

    #[test]
    fn normalize_endpoints() {
        assert_eq!(ImageCodec::normalize(-100.0), 0.0);
        assert_eq!(ImageCodec::normalize(0.0), 1.0);
        assert_eq!(ImageCodec::normalize(-50.0), 0.5);
        // Out-of-range values clamp.
        assert_eq!(ImageCodec::normalize(-120.0), 0.0);
        assert_eq!(ImageCodec::normalize(10.0), 1.0);
    }

    #[test]
    fn encode_pads_with_zeros() {
        let codec = ImageCodec::new(3);
        let img = codec.encode(&[-100.0, -40.0, -80.0]);
        assert_eq!(img.len(), 4);
        assert_eq!(img[0], 0.0);
        assert!((img[1] - 0.6).abs() < 1e-6);
        assert_eq!(img[3], 0.0);
    }

    #[test]
    fn batch_tensor_shape() {
        let codec = ImageCodec::new(5);
        let a = codec.encode(&[-40.0; 5]);
        let b = codec.encode(&[-90.0; 5]);
        let t = codec.batch_to_tensor(&[a, b]);
        assert_eq!(t.shape(), &[2, 1, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn encode_rejects_wrong_length() {
        let codec = ImageCodec::new(4);
        let _ = codec.encode(&[-40.0; 3]);
    }
}
