//! The deployable STONE localizer (the paper's Fig. 2 pipeline).

use stone_dataset::{FingerprintDataset, Framework, Localizer};
use stone_radio::Point2;

use crate::knn::{EmbeddingKnn, KnnMode};
use crate::trainer::{SiameseTrainer, TrainedEncoder, TrainerConfig};

/// A [`StoneConfig`] field that failed validation, with enough detail to fix
/// it — returned by [`StoneConfig::validate`] *before* any training time is
/// spent, instead of a panic deep inside the trainer or the KNN head.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `knn_k` is zero (the KNN head needs at least one neighbour).
    ZeroKnnK,
    /// `trainer.embed_dim` is zero (embeddings need at least one dimension).
    ZeroEmbedDim,
    /// `trainer.margin` is not a finite, non-negative number.
    BadMargin {
        /// The offending value.
        margin: f32,
    },
    /// `trainer.learning_rate` is not a finite, positive number.
    BadLearningRate {
        /// The offending value.
        learning_rate: f32,
    },
    /// `trainer.p_upper` is outside `[0, 1]` (it is a probability bound).
    BadPUpper {
        /// The offending value.
        p_upper: f32,
    },
    /// `trainer.epochs` is zero.
    ZeroEpochs,
    /// `trainer.batch_size` is zero.
    ZeroBatchSize,
    /// `trainer.triplets_per_epoch` is smaller than `trainer.batch_size`,
    /// so an epoch would hold no optimizer step at all.
    EpochSmallerThanBatch {
        /// Triplets drawn per epoch.
        triplets_per_epoch: usize,
        /// Triplets per optimizer step.
        batch_size: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroKnnK => write!(f, "knn_k must be at least 1"),
            ConfigError::ZeroEmbedDim => write!(f, "trainer.embed_dim must be at least 1"),
            ConfigError::BadMargin { margin } => {
                write!(f, "trainer.margin must be finite and non-negative, got {margin}")
            }
            ConfigError::BadLearningRate { learning_rate } => {
                write!(f, "trainer.learning_rate must be finite and positive, got {learning_rate}")
            }
            ConfigError::BadPUpper { p_upper } => {
                write!(f, "trainer.p_upper must be a probability in [0, 1], got {p_upper}")
            }
            ConfigError::ZeroEpochs => write!(f, "trainer.epochs must be at least 1"),
            ConfigError::ZeroBatchSize => write!(f, "trainer.batch_size must be at least 1"),
            ConfigError::EpochSmallerThanBatch { triplets_per_epoch, batch_size } => write!(
                f,
                "trainer.triplets_per_epoch ({triplets_per_epoch}) must be at least \
                 trainer.batch_size ({batch_size}) so an epoch holds one optimizer step"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full STONE configuration: trainer hyperparameters plus the KNN head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoneConfig {
    /// Siamese-encoder training configuration.
    pub trainer: TrainerConfig,
    /// Neighbour count of the embedding-space KNN.
    pub knn_k: usize,
    /// Position-estimation mode of the KNN head.
    pub knn_mode: KnnMode,
}

impl StoneConfig {
    /// Quick configuration (single-core bench scale).
    ///
    /// The KNN head defaults to distance-weighted regression over the
    /// embeddings: unlike the pure classifier, a single embedding confusion
    /// then costs a blended position instead of a full jump to the wrong
    /// RP, which matters once the channel has drifted for months. The
    /// paper's plain classifier remains available via
    /// [`StoneBuilder::with_knn_mode`].
    #[must_use]
    pub fn quick() -> Self {
        Self { trainer: TrainerConfig::quick(), knn_k: 5, knn_mode: KnnMode::WeightedRegression }
    }

    /// Paper-scale configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self { trainer: TrainerConfig::paper(), ..Self::quick() }
    }

    /// Checks every field that would otherwise only blow up mid-training
    /// (or, worse, *after* training, when the KNN head is first built).
    ///
    /// [`StoneBuilder::fit`] calls this up front, and the serving layer's
    /// retraining paths can call it before spending minutes of encoder
    /// training on a configuration that cannot be deployed.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.knn_k == 0 {
            return Err(ConfigError::ZeroKnnK);
        }
        let t = &self.trainer;
        if t.embed_dim == 0 {
            return Err(ConfigError::ZeroEmbedDim);
        }
        if !t.margin.is_finite() || t.margin < 0.0 {
            return Err(ConfigError::BadMargin { margin: t.margin });
        }
        if !t.learning_rate.is_finite() || t.learning_rate <= 0.0 {
            return Err(ConfigError::BadLearningRate { learning_rate: t.learning_rate });
        }
        if !t.p_upper.is_finite() || !(0.0..=1.0).contains(&t.p_upper) {
            return Err(ConfigError::BadPUpper { p_upper: t.p_upper });
        }
        if t.epochs == 0 {
            return Err(ConfigError::ZeroEpochs);
        }
        if t.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if t.triplets_per_epoch < t.batch_size {
            return Err(ConfigError::EpochSmallerThanBatch {
                triplets_per_epoch: t.triplets_per_epoch,
                batch_size: t.batch_size,
            });
        }
        Ok(())
    }
}

impl Default for StoneConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Builder/trainer for [`StoneLocalizer`]; implements
/// [`stone_dataset::Framework`] so it can be evaluated side-by-side with the
/// baselines.
///
/// # Example
///
/// ```no_run
/// use stone::StoneBuilder;
/// use stone_dataset::{office_suite, Localizer, SuiteConfig};
///
/// let suite = office_suite(&SuiteConfig::tiny(1));
/// let localizer = StoneBuilder::quick().with_embed_dim(6).fit(&suite.train, 1);
/// let _ = localizer.locate(&suite.train.records()[0].rssi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StoneBuilder {
    cfg: StoneConfig,
}

impl StoneBuilder {
    /// Builder with [`StoneConfig::quick`] defaults.
    #[must_use]
    pub fn quick() -> Self {
        Self { cfg: StoneConfig::quick() }
    }

    /// Builder with [`StoneConfig::paper`] defaults.
    #[must_use]
    pub fn paper() -> Self {
        Self { cfg: StoneConfig::paper() }
    }

    /// Builder from an explicit configuration.
    #[must_use]
    pub fn from_config(cfg: StoneConfig) -> Self {
        Self { cfg }
    }

    /// The current configuration.
    #[must_use]
    pub fn config(&self) -> &StoneConfig {
        &self.cfg
    }

    /// Sets the embedding dimension `d`.
    #[must_use]
    pub fn with_embed_dim(mut self, d: usize) -> Self {
        self.cfg.trainer.embed_dim = d;
        self
    }

    /// Sets the triplet margin `α`.
    #[must_use]
    pub fn with_margin(mut self, margin: f32) -> Self {
        self.cfg.trainer.margin = margin;
        self
    }

    /// Sets the augmentation upper bound `p_upper` (Eq. 4).
    #[must_use]
    pub fn with_p_upper(mut self, p_upper: f32) -> Self {
        self.cfg.trainer.p_upper = p_upper;
        self
    }

    /// Sets the triplet-selection strategy.
    #[must_use]
    pub fn with_selector(mut self, selector: crate::SelectorKind) -> Self {
        self.cfg.trainer.selector = selector;
        self
    }

    /// Sets the number of training epochs.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.cfg.trainer.epochs = epochs;
        self
    }

    /// Sets the KNN neighbour count.
    #[must_use]
    pub fn with_knn_k(mut self, k: usize) -> Self {
        self.cfg.knn_k = k;
        self
    }

    /// Sets the KNN position mode.
    #[must_use]
    pub fn with_knn_mode(mut self, mode: KnnMode) -> Self {
        self.cfg.knn_mode = mode;
        self
    }

    /// Runs the full offline phase: trains the Siamese encoder, embeds the
    /// offline fingerprints, and fits the KNN head.
    ///
    /// # Panics
    ///
    /// Panics **before any training work** when the configuration is invalid
    /// (see [`StoneConfig::validate`] — e.g. a zero `knn_k` used to survive
    /// the whole encoder training only to panic while fitting the KNN head),
    /// and when the dataset has records at fewer than two RPs.
    #[must_use]
    pub fn fit(&self, train: &FingerprintDataset, seed: u64) -> StoneLocalizer {
        use rand::SeedableRng;

        if let Err(e) = self.cfg.validate() {
            panic!("invalid StoneConfig: {e}");
        }
        let encoder = SiameseTrainer::new(self.cfg.trainer).train(train, seed);
        let mut knn = EmbeddingKnn::new(self.cfg.knn_k, self.cfg.knn_mode);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xE7_20_11);
        let augmenter = crate::ApDropoutAugmenter::new(self.cfg.trainer.p_upper);
        let codec = *encoder.codec();

        // Embed in batches to amortize the forward pass: each record's clean
        // image plus `enroll_augment` AP-masked variants (see
        // `TrainerConfig::enroll_augment`).
        let records = train.records();
        for chunk in records.chunks(32) {
            let mut images: Vec<Vec<f32>> = Vec::new();
            let mut meta = Vec::new();
            for r in chunk {
                let pos = train.rp_position(r.rp).expect("record RP is registered");
                let clean = codec.encode(&r.rssi);
                for k in 0..=self.cfg.trainer.enroll_augment {
                    let mut img = clean.clone();
                    if k > 0 {
                        augmenter.augment(&mut img, &mut rng);
                    }
                    images.push(img);
                    meta.push((r.rp, pos));
                }
            }
            let x = codec.batch_to_tensor(&images);
            let emb = encoder.net().predict(&x);
            for (i, (rp, pos)) in meta.into_iter().enumerate() {
                knn.insert(emb.row(i).to_vec(), rp, pos);
            }
        }
        StoneLocalizer { cfg: self.cfg, encoder, knn }
    }
}

impl Framework for StoneBuilder {
    fn name(&self) -> &str {
        "STONE"
    }

    fn fit(&self, train: &FingerprintDataset, seed: u64) -> Box<dyn Localizer> {
        Box::new(StoneBuilder::fit(self, train, seed))
    }
}

/// A deployed STONE model: Siamese encoder + embedding KNN. Requires **no
/// re-training** after deployment — the paper's headline property.
pub struct StoneLocalizer {
    cfg: StoneConfig,
    encoder: TrainedEncoder,
    knn: EmbeddingKnn,
}

impl StoneLocalizer {
    /// Reassembles a localizer from its parts — the deserialization hook of
    /// [`StoneLocalizer::load`].
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid or disagrees with the KNN
    /// head (`knn_k`, `knn_mode`).
    #[must_use]
    pub fn from_parts(cfg: StoneConfig, encoder: TrainedEncoder, knn: EmbeddingKnn) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid StoneConfig: {e}");
        }
        assert_eq!(cfg.knn_k, knn.k(), "config knn_k disagrees with the KNN head");
        assert_eq!(cfg.knn_mode, knn.mode(), "config knn_mode disagrees with the KNN head");
        Self { cfg, encoder, knn }
    }

    /// The configuration this model was trained with.
    #[must_use]
    pub fn config(&self) -> &StoneConfig {
        &self.cfg
    }

    /// The trained encoder (for weight export or embedding inspection).
    #[must_use]
    pub fn encoder(&self) -> &TrainedEncoder {
        &self.encoder
    }

    /// The KNN head.
    #[must_use]
    pub fn knn(&self) -> &EmbeddingKnn {
        &self.knn
    }

    /// Serializes the whole deployable model — configuration, encoder
    /// weights and the reference-embedding set — into the versioned binary
    /// format of [`crate::model_io`]. [`StoneLocalizer::load`] restores a
    /// model whose `embed`, `locate` and `locate_batch` outputs are
    /// **bitwise identical** to this one's.
    #[must_use]
    pub fn save(&self) -> Vec<u8> {
        crate::model_io::save(self)
    }

    /// Deserializes a model produced by [`StoneLocalizer::save`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelIoError`] when the bytes are truncated,
    /// corrupted, of an unknown version, or describe an invalid
    /// configuration. A failed load never panics — the serving layer feeds
    /// this from disk and from the network.
    pub fn load(bytes: &[u8]) -> Result<Self, crate::ModelIoError> {
        crate::model_io::load(bytes)
    }

    /// Embeds a raw fingerprint (unit-norm vector of length `d`).
    #[must_use]
    pub fn embed(&self, rssi: &[f32]) -> Vec<f32> {
        self.encoder.embed(rssi)
    }

    /// Scans per encoder forward pass in the batched online path: large
    /// enough to amortize per-call overhead across the convolution lowering,
    /// small enough to bound the im2col working set.
    const LOCATE_BATCH: usize = 64;

    /// Embeds a batch of raw fingerprints in one encoder forward pass.
    ///
    /// Every layer of the encoder is row-independent at inference time, so
    /// each returned embedding is bitwise identical to what
    /// [`StoneLocalizer::embed`] produces for that fingerprint alone — the
    /// batch only amortizes the per-pass overhead (and unlocks the parallel
    /// matmul once the batched product crosses the size threshold).
    ///
    /// # Example
    ///
    /// ```no_run
    /// use stone::StoneBuilder;
    /// use stone_dataset::{office_suite, SuiteConfig};
    ///
    /// let suite = office_suite(&SuiteConfig::tiny(1));
    /// let loc = StoneBuilder::quick().fit(&suite.train, 1);
    /// let raws: Vec<&[f32]> =
    ///     suite.train.records().iter().take(8).map(|r| r.rssi.as_slice()).collect();
    /// let embeddings = loc.embed_batch(&raws);
    /// assert_eq!(embeddings.len(), 8);
    /// assert_eq!(embeddings[0], loc.embed(raws[0]));
    /// ```
    #[must_use]
    pub fn embed_batch(&self, rssi: &[&[f32]]) -> Vec<Vec<f32>> {
        if rssi.is_empty() {
            return Vec::new();
        }
        let emb = self.encoder.embed_batch(rssi);
        (0..emb.rows()).map(|i| emb.row(i).to_vec()).collect()
    }

    /// Predicts positions for a batch of scans: chunked batched encoder
    /// forward passes followed by a parallel KNN sweep. Equal to calling
    /// [`Localizer::locate`] per scan, in order.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use stone::StoneBuilder;
    /// use stone_dataset::{office_suite, Localizer, SuiteConfig};
    ///
    /// let suite = office_suite(&SuiteConfig::tiny(1));
    /// let loc = StoneBuilder::quick().fit(&suite.train, 1);
    /// let raws: Vec<&[f32]> =
    ///     suite.train.records().iter().map(|r| r.rssi.as_slice()).collect();
    /// assert_eq!(loc.locate_batch(&raws)[0], loc.locate(raws[0]));
    /// ```
    #[must_use]
    pub fn locate_batch(&self, rssi: &[&[f32]]) -> Vec<Point2> {
        let mut out = Vec::with_capacity(rssi.len());
        for chunk in rssi.chunks(Self::LOCATE_BATCH) {
            out.extend(self.knn.locate_batch(&self.embed_batch(chunk)));
        }
        out
    }
}

impl Localizer for StoneLocalizer {
    fn name(&self) -> &str {
        "STONE"
    }

    fn locate(&self, rssi: &[f32]) -> Point2 {
        self.knn.locate(&self.embed(rssi))
    }

    fn locate_trajectory(&mut self, traj: &stone_dataset::Trajectory) -> Vec<Point2> {
        // Batched override of the default scan-by-scan walk: one encoder
        // forward pass per LOCATE_BATCH scans. Same results, amortized cost
        // (this is what the parallel experiment runner leans on).
        let raws: Vec<&[f32]> = traj.fingerprints.iter().map(|f| f.rssi.as_slice()).collect();
        self.locate_batch(&raws)
    }
}

impl std::fmt::Debug for StoneLocalizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StoneLocalizer({:?}, knn_entries={})", self.encoder, self.knn.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::TrainerConfig;
    use stone_dataset::{office_suite, SuiteConfig};

    fn tiny_builder() -> StoneBuilder {
        StoneBuilder::from_config(StoneConfig {
            trainer: TrainerConfig {
                embed_dim: 4,
                epochs: 3,
                triplets_per_epoch: 64,
                batch_size: 16,
                ..TrainerConfig::quick()
            },
            knn_k: 3,
            knn_mode: KnnMode::Classify,
        })
    }

    #[test]
    fn fit_and_locate_returns_floorplan_position() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let loc = tiny_builder().fit(&suite.train, 1);
        let p = loc.locate(&suite.train.records()[0].rssi);
        let b = suite.env.floorplan().bounds();
        assert!(b.contains(p), "{p} outside floorplan");
    }

    #[test]
    fn training_fingerprints_locate_near_their_rp() {
        // On its own training data a localizer must be decently accurate.
        let suite = office_suite(&SuiteConfig::tiny(2));
        let loc = tiny_builder().fit(&suite.train, 2);
        let mut total = 0.0;
        let records = suite.train.records();
        for r in records {
            total += loc.locate(&r.rssi).distance(r.pos);
        }
        let mean = total / records.len() as f64;
        // RPs are 6 m apart in the tiny suite; training error must beat a
        // random guess (which would be tens of meters) comfortably.
        assert!(mean < 8.0, "training-set mean error {mean:.2} m");
    }

    #[test]
    fn builder_setters_apply() {
        let b = StoneBuilder::quick()
            .with_embed_dim(5)
            .with_margin(0.7)
            .with_p_upper(0.3)
            .with_epochs(2)
            .with_knn_k(7)
            .with_knn_mode(KnnMode::WeightedRegression)
            .with_selector(crate::SelectorKind::Uniform);
        assert_eq!(b.config().trainer.embed_dim, 5);
        assert_eq!(b.config().trainer.margin, 0.7);
        assert_eq!(b.config().trainer.p_upper, 0.3);
        assert_eq!(b.config().trainer.epochs, 2);
        assert_eq!(b.config().knn_k, 7);
        assert_eq!(b.config().knn_mode, KnnMode::WeightedRegression);
        assert_eq!(b.config().trainer.selector, crate::SelectorKind::Uniform);
    }

    #[test]
    fn validate_catches_every_degenerate_field() {
        let ok = StoneConfig::quick();
        assert_eq!(ok.validate(), Ok(()));

        let cases: Vec<(StoneConfig, &str)> = vec![
            (StoneConfig { knn_k: 0, ..ok }, "knn_k"),
            (
                StoneConfig { trainer: TrainerConfig { embed_dim: 0, ..ok.trainer }, ..ok },
                "embed_dim",
            ),
            (
                StoneConfig { trainer: TrainerConfig { margin: f32::NAN, ..ok.trainer }, ..ok },
                "margin",
            ),
            (
                StoneConfig {
                    trainer: TrainerConfig { margin: f32::INFINITY, ..ok.trainer },
                    ..ok
                },
                "margin",
            ),
            (
                StoneConfig { trainer: TrainerConfig { learning_rate: 0.0, ..ok.trainer }, ..ok },
                "learning_rate",
            ),
            (
                StoneConfig { trainer: TrainerConfig { p_upper: 1.5, ..ok.trainer }, ..ok },
                "p_upper",
            ),
            (StoneConfig { trainer: TrainerConfig { epochs: 0, ..ok.trainer }, ..ok }, "epochs"),
            (
                StoneConfig { trainer: TrainerConfig { batch_size: 0, ..ok.trainer }, ..ok },
                "batch_size",
            ),
            (
                StoneConfig {
                    trainer: TrainerConfig { triplets_per_epoch: 4, batch_size: 32, ..ok.trainer },
                    ..ok
                },
                "triplets_per_epoch",
            ),
        ];
        for (cfg, field) in cases {
            let err = cfg.validate().expect_err(field);
            assert!(err.to_string().contains(field), "error for {field} not descriptive: {err}");
        }
    }

    #[test]
    fn fit_rejects_zero_knn_k_before_training() {
        // A zero k used to survive the entire encoder training and only
        // panic while fitting the KNN head; now fit refuses up front with
        // the field name in the message.
        let suite = office_suite(&SuiteConfig::tiny(4));
        let builder = StoneBuilder::from_config(StoneConfig { knn_k: 0, ..StoneConfig::quick() });
        let err = std::panic::catch_unwind(|| builder.fit(&suite.train, 1))
            .expect_err("fit must reject knn_k = 0");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("knn_k"), "panic message not descriptive: {msg}");
    }

    #[test]
    fn localizer_exposes_its_config() {
        let suite = office_suite(&SuiteConfig::tiny(5));
        let builder = tiny_builder();
        let loc = builder.fit(&suite.train, 1);
        assert_eq!(loc.config(), builder.config());
    }

    #[test]
    fn framework_trait_object_works() {
        let suite = office_suite(&SuiteConfig::tiny(3));
        let fw: Box<dyn Framework> = Box::new(tiny_builder());
        assert_eq!(fw.name(), "STONE");
        let mut loc = fw.fit(&suite.train, 3);
        assert!(!loc.requires_retraining());
        let out = loc.locate_trajectory(&suite.buckets[0].trajectories[0]);
        assert_eq!(out.len(), suite.buckets[0].trajectories[0].len());
    }
}
