//! Long-term fingerprint augmentation (Sec. IV.C, Eq. 4 of the paper).
//!
//! At batch-generation time a random fraction `p_turn_off ~ U(0, p_upper)`
//! of the *observable* APs in each fingerprint image is turned off (pixel
//! set to 0), emulating the post-deployment removal or replacement of APs
//! that the offline phase cannot foresee. The paper uses the aggressive
//! `p_upper = 0.90`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Randomly turns off observable APs in normalized fingerprint images.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApDropoutAugmenter {
    p_upper: f32,
}

impl ApDropoutAugmenter {
    /// Creates an augmenter with the given `p_upper` (the paper's Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p_upper <= 1.0`.
    #[must_use]
    pub fn new(p_upper: f32) -> Self {
        assert!((0.0..=1.0).contains(&p_upper), "p_upper must be in [0, 1], got {p_upper}");
        Self { p_upper }
    }

    /// The paper's default (`p_upper = 0.90`).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(0.90)
    }

    /// Upper bound of the turn-off fraction.
    #[must_use]
    pub fn p_upper(&self) -> f32 {
        self.p_upper
    }

    /// Augments one normalized image buffer in place: draws
    /// `p ~ U(0, p_upper)` and zeroes `round(p × #visible)` of the visible
    /// (non-zero) pixels, chosen uniformly without replacement.
    pub fn augment(&self, image: &mut [f32], rng: &mut StdRng) {
        if self.p_upper == 0.0 {
            return;
        }
        let mut visible: Vec<usize> =
            image.iter().enumerate().filter_map(|(i, &v)| (v > 0.0).then_some(i)).collect();
        if visible.is_empty() {
            return;
        }
        let p: f32 = rng.gen_range(0.0..=self.p_upper);
        let k = ((visible.len() as f32) * p).round() as usize;
        visible.shuffle(rng);
        for &idx in visible.iter().take(k) {
            image[idx] = 0.0;
        }
    }

    /// Augments a whole batch of image buffers in place.
    pub fn augment_batch(&self, images: &mut [Vec<f32>], rng: &mut StdRng) {
        for img in images {
            self.augment(img, rng);
        }
    }
}

impl Default for ApDropoutAugmenter {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn visible(img: &[f32]) -> usize {
        img.iter().filter(|&&v| v > 0.0).count()
    }

    #[test]
    fn zero_p_upper_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let aug = ApDropoutAugmenter::new(0.0);
        let mut img = vec![0.5, 0.0, 0.9, 0.1];
        let before = img.clone();
        aug.augment(&mut img, &mut rng);
        assert_eq!(img, before);
    }

    #[test]
    fn never_turns_on_pixels() {
        let mut rng = StdRng::seed_from_u64(1);
        let aug = ApDropoutAugmenter::paper_default();
        for _ in 0..50 {
            let mut img = vec![0.0, 0.4, 0.0, 0.8, 0.2, 0.0];
            aug.augment(&mut img, &mut rng);
            assert_eq!(img[0], 0.0);
            assert_eq!(img[2], 0.0);
            assert_eq!(img[5], 0.0);
            for &v in &img {
                assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn removes_at_most_p_upper_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let aug = ApDropoutAugmenter::new(0.5);
        for _ in 0..100 {
            let mut img = vec![0.5; 40];
            aug.augment(&mut img, &mut rng);
            let removed = 40 - visible(&img);
            assert!(removed <= 20, "removed {removed} > p_upper bound");
        }
    }

    #[test]
    fn mean_removal_matches_uniform_expectation() {
        // E[p] = p_upper / 2, so the mean removed fraction over many draws
        // must approach p_upper/2.
        let mut rng = StdRng::seed_from_u64(3);
        let aug = ApDropoutAugmenter::new(0.9);
        let trials = 2000;
        let mut total_removed = 0usize;
        for _ in 0..trials {
            let mut img = vec![0.5; 50];
            aug.augment(&mut img, &mut rng);
            total_removed += 50 - visible(&img);
        }
        let mean_frac = total_removed as f64 / (trials * 50) as f64;
        assert!((mean_frac - 0.45).abs() < 0.03, "mean removed fraction {mean_frac}");
    }

    #[test]
    fn handles_all_missing_image() {
        let mut rng = StdRng::seed_from_u64(4);
        let aug = ApDropoutAugmenter::paper_default();
        let mut img = vec![0.0; 9];
        aug.augment(&mut img, &mut rng);
        assert!(img.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "p_upper")]
    fn rejects_invalid_p_upper() {
        let _ = ApDropoutAugmenter::new(1.5);
    }
}
