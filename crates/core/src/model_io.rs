//! Whole-model serialization for [`StoneLocalizer`] — the deployment format
//! of the serving layer.
//!
//! [`stone_nn::save_weights`] ships *encoder weights*; a warm model reload
//! needs the whole deployable artifact to cross a process boundary:
//! configuration (to rebuild the exact architecture), encoder weights, and
//! the enrolled reference-embedding set of the KNN head (whose insertion
//! order decides exact-distance ties). This module packs all three into one
//! versioned, little-endian binary blob:
//!
//! ```text
//! magic "STNL" | u32 version |
//!   trainer config  (u32 embed_dim, epochs, triplets_per_epoch, batch_size;
//!                    f32 margin, learning_rate, p_upper;
//!                    u8 selector tag; f64 selector_sigma_m;
//!                    u32 enroll_augment)
//!   knn config      (u32 knn_k; u8 mode tag)
//!   u32 ap_count
//!   history         (u32 count; per epoch: u32 epoch, f32 loss, f32 active)
//!   weights         (u32 byte length; stone_nn::save_weights blob)
//!   knn entries     (u32 count, u32 dim; per entry: u32 rp,
//!                    f64 x, f64 y, dim × f32 embedding)
//!   u32 crc32       (version ≥ 2: IEEE CRC32 of every preceding byte)
//! ```
//!
//! Floats are stored by bit pattern (`to_le_bytes`/`from_le_bytes`), so
//! `load(save(m))` reproduces `embed`, `locate` and `locate_batch` outputs
//! **bitwise** — pinned by the workspace round-trip tests. A failed load
//! returns [`ModelIoError`] and never panics: the serving layer feeds this
//! decoder from disk and from the network, where truncated and corrupted
//! blobs are a fact of life. Every count field is checked against the bytes
//! actually remaining before any allocation, so a corrupted header cannot
//! request a gigantic buffer.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_dataset::RpId;
use stone_nn::{load_weights, save_weights, WeightIoError};
use stone_radio::Point2;

use crate::encoder::{build_encoder, EncoderConfig};
use crate::knn::{EmbeddingKnn, KnnMode};
use crate::localizer::{ConfigError, StoneConfig, StoneLocalizer};
use crate::preprocess::ImageCodec;
use crate::trainer::{EpochStats, TrainedEncoder, TrainerConfig};
use crate::triplet::SelectorKind;

const MAGIC: &[u8; 4] = b"STNL";
/// Current format version. Version 2 appends a little-endian IEEE CRC32 of
/// every preceding byte, so a flipped bit anywhere in the blob — header,
/// weights, reference set — fails [`load`] with
/// [`ModelIoError::ChecksumMismatch`] instead of silently deploying a
/// corrupted model. Version-1 blobs (no checksum) are still accepted.
const VERSION: u32 = 2;
/// Oldest format version [`load`] still accepts.
const MIN_VERSION: u32 = 1;

/// IEEE CRC32 (reflected, polynomial 0xEDB88320) — the checksum sealing a
/// version-2 blob. Bitwise implementation: model blobs are published rarely
/// and are at most a few hundred KiB, so a lookup table buys nothing here.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(crc & 1));
        }
    }
    !crc
}

/// Errors produced when loading a serialized [`StoneLocalizer`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelIoError {
    /// The byte stream does not start with the `STNL` magic.
    BadHeader,
    /// The stored format version is not supported by this build.
    UnsupportedVersion {
        /// The version found in the header.
        version: u32,
    },
    /// The byte stream ended before the declared content did.
    Truncated,
    /// Extra bytes follow the end of the model — the blob was concatenated
    /// with something or the length fields are corrupted.
    TrailingBytes {
        /// Number of unread bytes past the model's end.
        extra: usize,
    },
    /// A stored field holds a value no writer produces (bad enum tag,
    /// mismatched embedding dimension, zero AP universe, ...).
    InvalidField {
        /// Description of what disagreed.
        detail: String,
    },
    /// The stored configuration fails [`StoneConfig::validate`].
    InvalidConfig(ConfigError),
    /// The encoder weight block is malformed or does not match the
    /// architecture the stored configuration describes.
    Weights(WeightIoError),
    /// The blob's trailing CRC32 does not match its content — the bytes
    /// were corrupted in transit or at rest (version ≥ 2 blobs only).
    ChecksumMismatch {
        /// The checksum stored in the blob's trailer.
        stored: u32,
        /// The checksum computed over the blob's content.
        computed: u32,
    },
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::BadHeader => write!(f, "bad model-file header"),
            ModelIoError::UnsupportedVersion { version } => {
                write!(
                    f,
                    "unsupported model format version {version} \
                     (supported: {MIN_VERSION}..={VERSION})"
                )
            }
            ModelIoError::Truncated => write!(f, "model data truncated"),
            ModelIoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after model end")
            }
            ModelIoError::InvalidField { detail } => write!(f, "invalid model field: {detail}"),
            ModelIoError::InvalidConfig(e) => write!(f, "stored configuration invalid: {e}"),
            ModelIoError::Weights(e) => write!(f, "encoder weights: {e}"),
            ModelIoError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "model blob corrupted: stored CRC32 {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<WeightIoError> for ModelIoError {
    fn from(e: WeightIoError) -> Self {
        ModelIoError::Weights(e)
    }
}

fn selector_tag(s: SelectorKind) -> u8 {
    match s {
        SelectorKind::FloorplanAware => 0,
        SelectorKind::Uniform => 1,
        SelectorKind::RssiHard => 2,
    }
}

fn selector_from_tag(t: u8) -> Result<SelectorKind, ModelIoError> {
    match t {
        0 => Ok(SelectorKind::FloorplanAware),
        1 => Ok(SelectorKind::Uniform),
        2 => Ok(SelectorKind::RssiHard),
        _ => Err(ModelIoError::InvalidField { detail: format!("selector tag {t}") }),
    }
}

fn mode_tag(m: KnnMode) -> u8 {
    match m {
        KnnMode::Classify => 0,
        KnnMode::WeightedRegression => 1,
    }
}

fn mode_from_tag(t: u8) -> Result<KnnMode, ModelIoError> {
    match t {
        0 => Ok(KnnMode::Classify),
        1 => Ok(KnnMode::WeightedRegression),
        _ => Err(ModelIoError::InvalidField { detail: format!("knn mode tag {t}") }),
    }
}

struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelIoError> {
        let end = self.pos.checked_add(n).ok_or(ModelIoError::Truncated)?;
        let chunk = self.bytes.get(self.pos..end).ok_or(ModelIoError::Truncated)?;
        self.pos = end;
        Ok(chunk)
    }
    fn u8(&mut self) -> Result<u8, ModelIoError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, ModelIoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte chunk")))
    }
    fn f32(&mut self) -> Result<f32, ModelIoError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4-byte chunk")))
    }
    fn f64(&mut self) -> Result<f64, ModelIoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8-byte chunk")))
    }
    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }
    /// Validates that `count` records of `record_size` bytes can still be
    /// read, *before* any allocation sized by `count`.
    fn check_records(&self, count: usize, record_size: usize) -> Result<(), ModelIoError> {
        let need = count.checked_mul(record_size).ok_or(ModelIoError::Truncated)?;
        if need > self.remaining() {
            return Err(ModelIoError::Truncated);
        }
        Ok(())
    }
}

/// Trainable parameter count of the paper encoder, in checked arithmetic —
/// mirrors the `build_encoder` layer stack (conv1 + conv2 + fc + embed
/// head, weights and biases; the formula `crates/core/src/encoder.rs`
/// pins in its `param_count_is_plausible` test). `None` on overflow, which
/// only a corrupted header can produce.
fn architecture_f32_count(cfg: &EncoderConfig) -> Option<usize> {
    let kk = cfg.kernel.checked_mul(cfg.kernel)?;
    let conv1 = cfg.conv1_filters.checked_mul(kk)?.checked_add(cfg.conv1_filters)?;
    let conv2 = cfg
        .conv2_filters
        .checked_mul(cfg.conv1_filters.checked_mul(kk)?)?
        .checked_add(cfg.conv2_filters)?;
    let fc = cfg.flat_features().checked_mul(cfg.fc_units)?.checked_add(cfg.fc_units)?;
    let head = cfg.fc_units.checked_mul(cfg.embed_dim)?.checked_add(cfg.embed_dim)?;
    conv1.checked_add(conv2)?.checked_add(fc)?.checked_add(head)
}

/// Serializes a localizer (see the module docs for the format).
#[must_use]
pub fn save(loc: &StoneLocalizer) -> Vec<u8> {
    let cfg = loc.config();
    let t = &cfg.trainer;
    let mut w = Writer { bytes: Vec::new() };
    w.bytes.extend_from_slice(MAGIC);
    w.u32(VERSION);

    w.u32(t.embed_dim as u32);
    w.u32(t.epochs as u32);
    w.u32(t.triplets_per_epoch as u32);
    w.u32(t.batch_size as u32);
    w.f32(t.margin);
    w.f32(t.learning_rate);
    w.f32(t.p_upper);
    w.u8(selector_tag(t.selector));
    w.f64(t.selector_sigma_m);
    w.u32(t.enroll_augment as u32);

    w.u32(cfg.knn_k as u32);
    w.u8(mode_tag(cfg.knn_mode));

    w.u32(loc.encoder().codec().ap_count() as u32);

    let history = loc.encoder().history();
    w.u32(history.len() as u32);
    for h in history {
        w.u32(h.epoch as u32);
        w.f32(h.loss);
        w.f32(h.active_fraction);
    }

    let weights = save_weights(loc.encoder().net());
    w.u32(weights.len() as u32);
    w.bytes.extend_from_slice(&weights);

    let knn = loc.knn();
    w.u32(knn.len() as u32);
    w.u32(t.embed_dim as u32);
    for (emb, rp, pos) in knn.entries() {
        w.u32(rp.0);
        w.f64(pos.x);
        w.f64(pos.y);
        for &v in emb {
            w.f32(v);
        }
    }

    // Version-2 trailer: CRC32 of everything above, so any corruption of
    // the blob — including flipped weight bits that would otherwise decode
    // fine — fails load() instead of deploying silently.
    let crc = crc32(&w.bytes);
    w.u32(crc);
    w.bytes
}

/// Deserializes a localizer produced by [`save`].
///
/// # Errors
///
/// Returns [`ModelIoError`]; never panics on hostile input (see the module
/// docs).
pub fn load(bytes: &[u8]) -> Result<StoneLocalizer, ModelIoError> {
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(ModelIoError::BadHeader);
    }
    let mut r = Reader { bytes, pos: 4 };
    let version = r.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ModelIoError::UnsupportedVersion { version });
    }
    if version >= 2 {
        // The checksum is verified over the whole content *before* any
        // field is trusted; the reader is then re-bounded to the content so
        // the trailer itself never parses as model data.
        let content_len =
            bytes.len().checked_sub(4).filter(|&n| n >= 8).ok_or(ModelIoError::Truncated)?;
        let stored = u32::from_le_bytes(bytes[content_len..].try_into().expect("4-byte trailer"));
        let computed = crc32(&bytes[..content_len]);
        if stored != computed {
            return Err(ModelIoError::ChecksumMismatch { stored, computed });
        }
        r = Reader { bytes: &bytes[..content_len], pos: 8 };
    }

    let trainer = TrainerConfig {
        embed_dim: r.u32()? as usize,
        epochs: r.u32()? as usize,
        triplets_per_epoch: r.u32()? as usize,
        batch_size: r.u32()? as usize,
        margin: r.f32()?,
        learning_rate: r.f32()?,
        p_upper: r.f32()?,
        selector: selector_from_tag(r.u8()?)?,
        selector_sigma_m: r.f64()?,
        enroll_augment: r.u32()? as usize,
    };
    let cfg = StoneConfig { trainer, knn_k: r.u32()? as usize, knn_mode: mode_from_tag(r.u8()?)? };
    cfg.validate().map_err(ModelIoError::InvalidConfig)?;

    let ap_count = r.u32()? as usize;
    if ap_count == 0 {
        return Err(ModelIoError::InvalidField { detail: "zero AP universe".into() });
    }
    let codec = ImageCodec::new(ap_count);
    // The paper architecture applies two 2×2 valid convolutions; a codec
    // side below 4 cannot have produced a trained encoder.
    if codec.side() < 4 {
        return Err(ModelIoError::InvalidField {
            detail: format!("AP universe of {ap_count} too small for the encoder architecture"),
        });
    }

    let history_len = r.u32()? as usize;
    r.check_records(history_len, 12)?;
    let mut history = Vec::with_capacity(history_len);
    for _ in 0..history_len {
        history.push(EpochStats {
            epoch: r.u32()? as usize,
            loss: r.f32()?,
            active_fraction: r.f32()?,
        });
    }

    let weights_len = r.u32()? as usize;
    let weights = r.take(weights_len)?;
    let enc_cfg = EncoderConfig::paper(codec.side(), trainer.embed_dim);
    // Building the network allocates every weight tensor, so the stored
    // architecture must be plausible *before* we build it: a corrupted
    // ap_count/embed_dim would otherwise request gigabytes here. The blob
    // stores exactly the architecture's f32s (plus small headers), so a
    // weight block too short to hold them proves the header lies.
    let expected_f32s = architecture_f32_count(&enc_cfg).ok_or_else(|| {
        ModelIoError::InvalidField { detail: "stored architecture size overflows".into() }
    })?;
    if weights.len() / 4 < expected_f32s {
        return Err(ModelIoError::InvalidField {
            detail: format!(
                "weight block of {} bytes cannot hold the {expected_f32s}-parameter \
                 architecture the header describes",
                weights.len()
            ),
        });
    }
    // The RNG only seeds the soon-to-be-overwritten init; any value works.
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = build_encoder(&enc_cfg, &mut rng);
    load_weights(&mut net, weights)?;

    let entry_count = r.u32()? as usize;
    let dim = r.u32()? as usize;
    if entry_count > 0 && dim != trainer.embed_dim {
        return Err(ModelIoError::InvalidField {
            detail: format!("knn dim {dim} disagrees with embed_dim {}", trainer.embed_dim),
        });
    }
    r.check_records(entry_count, 4 + 16 + dim * 4)?;
    let mut knn = EmbeddingKnn::new(cfg.knn_k, cfg.knn_mode);
    for _ in 0..entry_count {
        let rp = RpId(r.u32()?);
        let pos = Point2::new(r.f64()?, r.f64()?);
        let mut emb = Vec::with_capacity(dim);
        for _ in 0..dim {
            emb.push(r.f32()?);
        }
        knn.insert(emb, rp, pos);
    }

    if r.remaining() > 0 {
        return Err(ModelIoError::TrailingBytes { extra: r.remaining() });
    }

    Ok(StoneLocalizer::from_parts(cfg, TrainedEncoder::from_parts(net, codec, history), knn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localizer::StoneBuilder;
    use stone_dataset::{office_suite, SuiteConfig};

    fn tiny_localizer(seed: u64) -> StoneLocalizer {
        let suite = office_suite(&SuiteConfig::tiny(seed));
        StoneBuilder::from_config(StoneConfig {
            trainer: TrainerConfig {
                embed_dim: 4,
                epochs: 2,
                triplets_per_epoch: 32,
                batch_size: 16,
                ..TrainerConfig::quick()
            },
            knn_k: 3,
            knn_mode: KnnMode::WeightedRegression,
        })
        .fit(&suite.train, seed)
    }

    #[test]
    fn reserialization_is_byte_identical() {
        let loc = tiny_localizer(1);
        let blob = save(&loc);
        let loaded = load(&blob).expect("roundtrip");
        assert_eq!(save(&loaded), blob, "save ∘ load must be the identity on bytes");
        assert_eq!(loaded.config(), loc.config());
        assert_eq!(loaded.encoder().history(), loc.encoder().history());
        assert_eq!(loaded.knn().len(), loc.knn().len());
    }

    /// Recomputes the version-2 CRC32 trailer after a test deliberately
    /// corrupted some field, so the *structural* validation under test is
    /// reached instead of the checksum tripping first.
    fn reseal(blob: &mut [u8]) {
        let n = blob.len() - 4;
        let crc = crc32(&blob[..n]);
        blob[n..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert_eq!(load(b"").unwrap_err(), ModelIoError::BadHeader);
        assert_eq!(load(b"NOPE\x01\x00\x00\x00").unwrap_err(), ModelIoError::BadHeader);
        let mut blob = save(&tiny_localizer(2));
        blob[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(load(&blob).unwrap_err(), ModelIoError::UnsupportedVersion { version: 99 });
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut blob = save(&tiny_localizer(3));
        blob.extend_from_slice(b"junk");
        reseal(&mut blob);
        assert_eq!(load(&blob).unwrap_err(), ModelIoError::TrailingBytes { extra: 4 });
    }

    #[test]
    fn rejects_bad_enum_tags() {
        let blob = save(&tiny_localizer(4));
        // Selector tag sits right after the seven u32/f32 trainer fields:
        // 8 (header) + 4*4 + 3*4 = 36.
        let mut bad = blob.clone();
        bad[36] = 7;
        reseal(&mut bad);
        assert!(matches!(load(&bad).unwrap_err(), ModelIoError::InvalidField { .. }));
        // KNN mode tag: selector (1) + sigma (8) + enroll (4) + knn_k (4)
        // further along.
        let mut bad = blob;
        bad[36 + 1 + 8 + 4 + 4] = 9;
        reseal(&mut bad);
        assert!(matches!(load(&bad).unwrap_err(), ModelIoError::InvalidField { .. }));
    }

    #[test]
    fn rejects_invalid_stored_config() {
        let mut blob = save(&tiny_localizer(5));
        // Zero out knn_k (offset 36 + 1 + 8 + 4).
        blob[49..53].copy_from_slice(&0u32.to_le_bytes());
        reseal(&mut blob);
        assert!(matches!(
            load(&blob).unwrap_err(),
            ModelIoError::InvalidConfig(ConfigError::ZeroKnnK)
        ));
    }

    #[test]
    fn huge_ap_count_rejected_before_building_the_network() {
        // ap_count (offset 54) blown up to u32::MAX describes a network of
        // ~5e13 parameters; the decoder must reject from the weight-block
        // length alone, before build_encoder can allocate gigabytes.
        let mut blob = save(&tiny_localizer(7));
        blob[54..58].copy_from_slice(&u32::MAX.to_le_bytes());
        reseal(&mut blob);
        assert!(matches!(load(&blob).unwrap_err(), ModelIoError::InvalidField { .. }));
    }

    #[test]
    fn corrupt_count_fields_cannot_allocate_unbounded() {
        // Blow the history count up to u32::MAX: the decoder must bounds-
        // check against the remaining bytes, not allocate 4 billion entries.
        let blob = save(&tiny_localizer(6));
        // History count offset: 36 + 1 + 8 + 4 (trainer tail) + 4 + 1
        // (knn cfg) + 4 (ap_count) = 58.
        let mut bad = blob;
        bad[58..62].copy_from_slice(&u32::MAX.to_le_bytes());
        reseal(&mut bad);
        assert_eq!(load(&bad).unwrap_err(), ModelIoError::Truncated);
    }

    #[test]
    fn flipped_weight_byte_fails_the_checksum() {
        // A bit flip deep in the weight block decodes as a perfectly valid
        // (wrong) f32 — only the CRC can catch it. Before version 2 this
        // blob would have loaded and served silently-corrupted answers.
        let blob = save(&tiny_localizer(8));
        let mut bad = blob.clone();
        let mid = blob.len() * 2 / 3; // deep inside the weight/knn payload
        bad[mid] ^= 0x40;
        match load(&bad).unwrap_err() {
            ModelIoError::ChecksumMismatch { stored, computed } => {
                assert_ne!(stored, computed);
                assert_eq!(stored, u32::from_le_bytes(blob[blob.len() - 4..].try_into().unwrap()));
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v1_blobs_without_checksum_still_load() {
        // A version-1 blob is the version-2 content minus the CRC trailer
        // with the version field rewound — published by any pre-CRC build.
        let loc = tiny_localizer(9);
        let v2 = save(&loc);
        let mut v1 = v2[..v2.len() - 4].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let loaded = load(&v1).expect("legacy blob loads");
        // Re-serializing the legacy load produces today's sealed format.
        assert_eq!(save(&loaded), v2);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical check value of IEEE CRC32: crc("123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
