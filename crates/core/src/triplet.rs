//! Triplet selection strategies (Sec. IV.E of the paper).
//!
//! Evaluating FaceNet's argmax/argmin hard-mining over the whole dataset is
//! infeasible (Sec. III, Eq. 3), so STONE exploits domain structure instead:
//! *RPs that are physically close on the floorplan produce the hardest-to-
//! discern fingerprints*. [`FloorplanAwareSelector`] therefore samples the
//! hard-negative RP from a bivariate Gaussian centered at the anchor RP
//! (Eq. 5, with `P(anchor) = 0`). [`UniformSelector`] and
//! [`RssiHardSelector`] exist as ablation comparators.

use rand::rngs::StdRng;
use rand::Rng;
use stone_dataset::{FingerprintDataset, RpId};
use stone_radio::Point2;

/// Indices (into the training records) of one anchor/positive/negative
/// triplet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triplet {
    /// Anchor record index.
    pub anchor: usize,
    /// Positive record index (same RP as the anchor).
    pub positive: usize,
    /// Negative record index (different RP).
    pub negative: usize,
}

/// Pre-grouped view of a training set used by the selectors.
#[derive(Debug, Clone)]
pub struct TrainIndex {
    /// Record indices grouped by dense RP index.
    pub by_rp: Vec<Vec<usize>>,
    /// RP positions by dense RP index.
    pub positions: Vec<Point2>,
    /// RP ids by dense RP index.
    pub ids: Vec<RpId>,
}

impl TrainIndex {
    /// Builds the index from a dataset, keeping only RPs that actually have
    /// records.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two RPs have records (triplets need a
    /// negative class).
    #[must_use]
    pub fn new(ds: &FingerprintDataset) -> Self {
        let mut by_rp: Vec<Vec<usize>> = vec![Vec::new(); ds.rps().len()];
        for (i, r) in ds.records().iter().enumerate() {
            let idx = ds.rp_index(r.rp).expect("record RP is registered");
            by_rp[idx].push(i);
        }
        let mut keep_by_rp = Vec::new();
        let mut positions = Vec::new();
        let mut ids = Vec::new();
        for (idx, rec) in by_rp.into_iter().enumerate() {
            if !rec.is_empty() {
                keep_by_rp.push(rec);
                positions.push(ds.rps()[idx].pos);
                ids.push(ds.rps()[idx].id);
            }
        }
        assert!(keep_by_rp.len() >= 2, "triplet selection needs records at >= 2 RPs");
        Self { by_rp: keep_by_rp, positions, ids }
    }

    /// Number of RPs with records.
    #[must_use]
    pub fn rp_count(&self) -> usize {
        self.by_rp.len()
    }

    fn random_record(&self, rp: usize, rng: &mut StdRng) -> usize {
        let recs = &self.by_rp[rp];
        recs[rng.gen_range(0..recs.len())]
    }

    /// A positive record for `anchor_rp` distinct from `anchor_rec` when the
    /// RP has more than one fingerprint; with a single fingerprint per RP
    /// the anchor doubles as its own positive (the FPR = 1 regime of
    /// Fig. 7).
    fn positive_record(&self, rp: usize, anchor_rec: usize, rng: &mut StdRng) -> usize {
        let recs = &self.by_rp[rp];
        if recs.len() == 1 {
            return recs[0];
        }
        loop {
            let cand = recs[rng.gen_range(0..recs.len())];
            if cand != anchor_rec {
                return cand;
            }
        }
    }
}

/// A strategy choosing anchor/positive/negative training triplets.
pub trait TripletSelector {
    /// Short name used in reports and ablations.
    fn name(&self) -> &'static str;

    /// Selects the negative RP (dense index) for the given anchor RP.
    fn select_negative_rp(&self, index: &TrainIndex, anchor_rp: usize, rng: &mut StdRng) -> usize;

    /// Selects one full triplet.
    fn select(&self, index: &TrainIndex, rng: &mut StdRng) -> Triplet {
        let anchor_rp = rng.gen_range(0..index.rp_count());
        let anchor = index.random_record(anchor_rp, rng);
        let positive = index.positive_record(anchor_rp, anchor, rng);
        let neg_rp = self.select_negative_rp(index, anchor_rp, rng);
        debug_assert_ne!(neg_rp, anchor_rp, "negative RP must differ from anchor");
        let negative = index.random_record(neg_rp, rng);
        Triplet { anchor, positive, negative }
    }
}

/// The paper's floorplan-aware strategy (Eq. 5): the negative RP is drawn
/// with probability proportional to a bivariate Gaussian
/// `N₂(μ_anchor, σ²I)` evaluated at each candidate RP, with the anchor
/// itself excluded (`P(RP_a) = 0`). Physically-near RPs — the hardest
/// negatives — are sampled most often.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloorplanAwareSelector {
    sigma_m: f64,
    uniform_mix: f64,
}

impl FloorplanAwareSelector {
    /// Creates the selector with spatial scale `sigma_m` (meters) and the
    /// default uniform mixture (0.25).
    ///
    /// The Gaussian of Eq. 5 concentrates negatives near the anchor; the
    /// uniform component guarantees that *every* RP pair is eventually
    /// pushed apart — without it, RPs far apart on large floorplans would
    /// never appear in a triplet together and could collide in embedding
    /// space.
    ///
    /// # Panics
    ///
    /// Panics when `sigma_m` is not strictly positive.
    #[must_use]
    pub fn new(sigma_m: f64) -> Self {
        Self::with_uniform_mix(sigma_m, 0.25)
    }

    /// Creates the selector with an explicit uniform mixture weight in
    /// `[0, 1]` (0 = pure Eq. 5, 1 = uniform).
    ///
    /// # Panics
    ///
    /// Panics when `sigma_m` is not strictly positive or `uniform_mix` is
    /// outside `[0, 1]`.
    #[must_use]
    pub fn with_uniform_mix(sigma_m: f64, uniform_mix: f64) -> Self {
        assert!(sigma_m > 0.0, "sigma must be positive, got {sigma_m}");
        assert!((0.0..=1.0).contains(&uniform_mix), "uniform_mix must be in [0, 1]");
        Self { sigma_m, uniform_mix }
    }

    /// The spatial scale, in meters.
    #[must_use]
    pub fn sigma_m(&self) -> f64 {
        self.sigma_m
    }

    /// The uniform mixture weight.
    #[must_use]
    pub fn uniform_mix(&self) -> f64 {
        self.uniform_mix
    }
}

impl Default for FloorplanAwareSelector {
    fn default() -> Self {
        // A few RP pitches: near neighbours dominate, but the tail still
        // visits the rest of the floorplan.
        Self::new(4.0)
    }
}

impl TripletSelector for FloorplanAwareSelector {
    fn name(&self) -> &'static str {
        "floorplan-aware"
    }

    fn select_negative_rp(&self, index: &TrainIndex, anchor_rp: usize, rng: &mut StdRng) -> usize {
        if rng.gen::<f64>() < self.uniform_mix {
            return UniformSelector.select_negative_rp(index, anchor_rp, rng);
        }
        let mu = index.positions[anchor_rp];
        let inv_two_sigma_sq = 1.0 / (2.0 * self.sigma_m * self.sigma_m);
        let weights: Vec<f64> = index
            .positions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if i == anchor_rp {
                    0.0 // Eq. 5: P(RP_a) = 0
                } else {
                    (-p.sq_distance(mu) * inv_two_sigma_sq).exp()
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= f64::MIN_POSITIVE {
            // Degenerate geometry (all other RPs extremely far): uniform.
            let mut cand = rng.gen_range(0..index.rp_count() - 1);
            if cand >= anchor_rp {
                cand += 1;
            }
            return cand;
        }
        let mut u = rng.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
        // Floating-point slack: fall back to the last non-anchor RP.
        if anchor_rp == index.rp_count() - 1 {
            index.rp_count() - 2
        } else {
            index.rp_count() - 1
        }
    }
}

/// Ablation baseline: the negative RP is uniform over all non-anchor RPs
/// (no floorplan awareness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UniformSelector;

impl TripletSelector for UniformSelector {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn select_negative_rp(&self, index: &TrainIndex, anchor_rp: usize, rng: &mut StdRng) -> usize {
        let mut cand = rng.gen_range(0..index.rp_count() - 1);
        if cand >= anchor_rp {
            cand += 1;
        }
        cand
    }
}

/// Ablation baseline approximating FaceNet-style hard mining without
/// embedding evaluations: the negative RP is chosen among the `top_k` RPs
/// whose *RSSI-space* centroids are closest to the anchor RP's centroid.
#[derive(Debug, Clone)]
pub struct RssiHardSelector {
    top_k: usize,
    /// Row-major `[rp_count][rp_count]` centroid-distance ranking: for each
    /// RP, the other RPs sorted by ascending fingerprint distance.
    ranking: Vec<Vec<usize>>,
}

impl RssiHardSelector {
    /// Builds the selector from a dataset by ranking RP fingerprint
    /// centroids.
    ///
    /// # Panics
    ///
    /// Panics when `top_k` is zero or the dataset has fewer than two RPs
    /// with records.
    #[must_use]
    pub fn new(ds: &FingerprintDataset, top_k: usize) -> Self {
        assert!(top_k > 0, "top_k must be positive");
        let index = TrainIndex::new(ds);
        let dim = ds.ap_count();
        let centroids: Vec<Vec<f32>> = index
            .by_rp
            .iter()
            .map(|recs| {
                let mut c = vec![0.0f32; dim];
                for &ri in recs {
                    for (cv, &v) in c.iter_mut().zip(&ds.records()[ri].rssi) {
                        *cv += v;
                    }
                }
                for cv in &mut c {
                    *cv /= recs.len() as f32;
                }
                c
            })
            .collect();
        let ranking = (0..centroids.len())
            .map(|i| {
                let mut others: Vec<usize> = (0..centroids.len()).filter(|&j| j != i).collect();
                others.sort_by(|&a, &b| {
                    let da: f32 = centroids[i]
                        .iter()
                        .zip(&centroids[a])
                        .map(|(&x, &y)| (x - y) * (x - y))
                        .sum();
                    let db: f32 = centroids[i]
                        .iter()
                        .zip(&centroids[b])
                        .map(|(&x, &y)| (x - y) * (x - y))
                        .sum();
                    da.partial_cmp(&db).expect("finite distances")
                });
                others
            })
            .collect();
        Self { top_k, ranking }
    }
}

impl TripletSelector for RssiHardSelector {
    fn name(&self) -> &'static str {
        "rssi-hard"
    }

    fn select_negative_rp(&self, index: &TrainIndex, anchor_rp: usize, rng: &mut StdRng) -> usize {
        let ranked = &self.ranking[anchor_rp];
        debug_assert_eq!(ranked.len() + 1, index.rp_count());
        let k = self.top_k.min(ranked.len());
        ranked[rng.gen_range(0..k)]
    }
}

/// Selector choice exposed through [`crate::TrainerConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectorKind {
    /// The paper's floorplan-aware bivariate-Gaussian sampler.
    #[default]
    FloorplanAware,
    /// Uniform negative RPs (ablation).
    Uniform,
    /// RSSI-space hard negatives (ablation).
    RssiHard,
}

impl std::fmt::Display for SelectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectorKind::FloorplanAware => write!(f, "floorplan-aware"),
            SelectorKind::Uniform => write!(f, "uniform"),
            SelectorKind::RssiHard => write!(f, "rssi-hard"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use stone_dataset::{office_suite, Fingerprint, ReferencePoint, SuiteConfig};
    use stone_radio::SimTime;

    fn line_dataset(n_rps: u32, fpr: usize) -> FingerprintDataset {
        let rps: Vec<ReferencePoint> = (0..n_rps)
            .map(|k| ReferencePoint { id: RpId(k), pos: Point2::new(f64::from(k), 0.0) })
            .collect();
        let mut ds = FingerprintDataset::new("line", 4, rps.clone());
        for rp in &rps {
            for j in 0..fpr {
                ds.push(Fingerprint {
                    rssi: vec![-40.0 - j as f32; 4],
                    rp: rp.id,
                    pos: rp.pos,
                    time: SimTime::start(),
                    ci: 0,
                });
            }
        }
        ds
    }

    #[test]
    fn floorplan_aware_never_selects_anchor() {
        let ds = line_dataset(10, 2);
        let index = TrainIndex::new(&ds);
        let sel = FloorplanAwareSelector::new(2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..500 {
            let anchor = rng.gen_range(0..index.rp_count());
            let neg = sel.select_negative_rp(&index, anchor, &mut rng);
            assert_ne!(neg, anchor);
        }
    }

    #[test]
    fn floorplan_aware_prefers_near_rps() {
        let ds = line_dataset(20, 1);
        let index = TrainIndex::new(&ds);
        // Pure Eq. 5 (no uniform mixture) for the distribution check.
        let sel = FloorplanAwareSelector::with_uniform_mix(2.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let anchor = 10;
        let mut near = 0;
        let mut far = 0;
        for _ in 0..2000 {
            let neg = sel.select_negative_rp(&index, anchor, &mut rng);
            let d = index.positions[neg].distance(index.positions[anchor]);
            if d <= 3.0 {
                near += 1;
            } else if d >= 7.0 {
                far += 1;
            }
        }
        assert!(near > 10 * far.max(1), "near {near}, far {far}");
    }

    #[test]
    fn uniform_mix_gives_far_rps_support() {
        // With the default mixture, even the farthest RP must eventually be
        // drawn as a negative — the property that keeps distant RPs
        // separated in embedding space.
        let ds = line_dataset(20, 1);
        let index = TrainIndex::new(&ds);
        let sel = FloorplanAwareSelector::new(2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_far = false;
        for _ in 0..3000 {
            let neg = sel.select_negative_rp(&index, 0, &mut rng);
            if index.positions[neg].distance(index.positions[0]) > 15.0 {
                seen_far = true;
                break;
            }
        }
        assert!(seen_far, "mixture never sampled a far negative");
    }

    #[test]
    fn uniform_covers_all_rps() {
        let ds = line_dataset(6, 1);
        let index = TrainIndex::new(&ds);
        let sel = UniformSelector;
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[sel.select_negative_rp(&index, 2, &mut rng)] = true;
        }
        assert!(!seen[2]);
        assert_eq!(seen.iter().filter(|&&s| s).count(), 5);
    }

    #[test]
    fn triplet_positive_shares_anchor_rp() {
        let ds = line_dataset(5, 3);
        let index = TrainIndex::new(&ds);
        let sel = FloorplanAwareSelector::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let t = sel.select(&index, &mut rng);
            let recs = ds.records();
            assert_eq!(recs[t.anchor].rp, recs[t.positive].rp);
            assert_ne!(recs[t.anchor].rp, recs[t.negative].rp);
            assert_ne!(t.anchor, t.positive, "fpr>1 must use a distinct positive");
        }
    }

    #[test]
    fn single_fpr_reuses_anchor_as_positive() {
        let ds = line_dataset(4, 1);
        let index = TrainIndex::new(&ds);
        let sel = UniformSelector;
        let mut rng = StdRng::seed_from_u64(4);
        let t = sel.select(&index, &mut rng);
        assert_eq!(t.anchor, t.positive);
    }

    #[test]
    fn rssi_hard_picks_similar_centroids() {
        // RPs 0/1 share similar fingerprints; RP 2 is very different.
        let rps: Vec<ReferencePoint> = (0..3)
            .map(|k| ReferencePoint { id: RpId(k), pos: Point2::new(f64::from(k) * 10.0, 0.0) })
            .collect();
        let mut ds = FingerprintDataset::new("c", 2, rps);
        let mk = |v: f32, rp: u32| Fingerprint {
            rssi: vec![v, v],
            rp: RpId(rp),
            pos: Point2::new(f64::from(rp) * 10.0, 0.0),
            time: SimTime::start(),
            ci: 0,
        };
        ds.push(mk(-40.0, 0));
        ds.push(mk(-42.0, 1));
        ds.push(mk(-90.0, 2));
        let sel = RssiHardSelector::new(&ds, 1);
        let index = TrainIndex::new(&ds);
        let mut rng = StdRng::seed_from_u64(5);
        // Hardest negative for RP0 must be RP1 (closest centroid).
        assert_eq!(sel.select_negative_rp(&index, 0, &mut rng), 1);
        assert_eq!(sel.select_negative_rp(&index, 2, &mut rng), 1);
    }

    #[test]
    fn works_on_real_suite_train_set() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let index = TrainIndex::new(&suite.train);
        assert!(index.rp_count() >= 2);
        let sel = FloorplanAwareSelector::default();
        let mut rng = StdRng::seed_from_u64(6);
        let t = sel.select(&index, &mut rng);
        assert_ne!(suite.train.records()[t.anchor].rp, suite.train.records()[t.negative].rp);
    }

    #[test]
    #[should_panic(expected = ">= 2 RPs")]
    fn index_rejects_single_rp() {
        let rps = vec![ReferencePoint { id: RpId(0), pos: Point2::new(0.0, 0.0) }];
        let mut ds = FingerprintDataset::new("one", 1, rps);
        ds.push(Fingerprint {
            rssi: vec![-40.0],
            rp: RpId(0),
            pos: Point2::new(0.0, 0.0),
            time: SimTime::start(),
            ci: 0,
        });
        let _ = TrainIndex::new(&ds);
    }
}
