//! The convolutional Siamese encoder architecture (Sec. IV.D, Fig. 1).

use rand::rngs::StdRng;
use stone_nn::{Conv2d, Dense, Dropout, Flatten, GaussianNoise, L2Normalize, Relu, Sequential};

/// Architecture hyperparameters of the STONE encoder.
///
/// Paper values (Sec. IV.D): two 2×2 stride-1 convolutions with 64 and 128
/// filters, a 100-unit FC layer, Gaussian input noise σ = 0.10, dropout
/// between convolutions, and an embedding length chosen in `[3, 10]` per
/// floorplan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    /// Side of the square input fingerprint image.
    pub input_side: usize,
    /// Embedding dimension `d` (paper: 3–10).
    pub embed_dim: usize,
    /// Filters in the first convolution (paper: 64).
    pub conv1_filters: usize,
    /// Filters in the second convolution (paper: 128).
    pub conv2_filters: usize,
    /// Units in the fully-connected layer (paper: 100).
    pub fc_units: usize,
    /// Convolution kernel side (paper: 2).
    pub kernel: usize,
    /// Dropout probability between the convolutions.
    pub dropout: f32,
    /// Gaussian input-noise standard deviation (paper: 0.10).
    pub noise_sigma: f32,
}

impl EncoderConfig {
    /// The paper's architecture for a given input image side.
    ///
    /// # Panics
    ///
    /// Panics when the input side is too small for two 2×2 convolutions.
    #[must_use]
    pub fn paper(input_side: usize, embed_dim: usize) -> Self {
        let cfg = Self {
            input_side,
            embed_dim,
            conv1_filters: 64,
            conv2_filters: 128,
            fc_units: 100,
            kernel: 2,
            dropout: 0.25,
            noise_sigma: 0.10,
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(self.embed_dim >= 1, "embedding dimension must be >= 1");
        assert!(
            self.input_side >= 2 * self.kernel,
            "input side {} too small for two {}x{} convolutions",
            self.input_side,
            self.kernel,
            self.kernel
        );
    }

    /// Spatial side after the two valid convolutions.
    #[must_use]
    pub fn conv_out_side(&self) -> usize {
        self.input_side - 2 * (self.kernel - 1)
    }

    /// Flattened feature count entering the FC head.
    #[must_use]
    pub fn flat_features(&self) -> usize {
        self.conv2_filters * self.conv_out_side() * self.conv_out_side()
    }
}

/// Builds the encoder network of Fig. 1:
///
/// `GaussianNoise → Conv(1→c1) → ReLU → Dropout → Conv(c1→c2) → ReLU →
/// Dropout → Flatten → Dense(fc) → ReLU → Dense(d) → L2Normalize`.
///
/// # Panics
///
/// Panics when the configuration is internally inconsistent (see
/// [`EncoderConfig::paper`]).
#[must_use]
pub fn build_encoder(cfg: &EncoderConfig, rng: &mut StdRng) -> Sequential {
    cfg.validate();
    Sequential::new(vec![
        Box::new(GaussianNoise::new(cfg.noise_sigma)),
        Box::new(Conv2d::new(1, cfg.conv1_filters, cfg.kernel, 1, rng)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(cfg.dropout)),
        Box::new(Conv2d::new(cfg.conv1_filters, cfg.conv2_filters, cfg.kernel, 1, rng)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(cfg.dropout)),
        Box::new(Flatten::new()),
        Box::new(Dense::new(cfg.flat_features(), cfg.fc_units, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(cfg.fc_units, cfg.embed_dim, rng)),
        Box::new(L2Normalize::new()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use stone_tensor::Tensor;

    #[test]
    fn paper_architecture_shapes() {
        let cfg = EncoderConfig::paper(9, 8);
        assert_eq!(cfg.conv_out_side(), 7);
        assert_eq!(cfg.flat_features(), 128 * 49);
        let mut rng = StdRng::seed_from_u64(0);
        let net = build_encoder(&cfg, &mut rng);
        let x = Tensor::ones(vec![2, 1, 9, 9]);
        let y = net.predict(&x);
        assert_eq!(y.shape(), &[2, 8]);
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let cfg = EncoderConfig::paper(5, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let net = build_encoder(&cfg, &mut rng);
        let x = stone_tensor::rng::uniform_tensor(&mut rng, vec![3, 1, 5, 5], 0.0, 1.0);
        let y = net.predict(&x);
        for i in 0..3 {
            let n: f32 = y.row(i).iter().map(|&v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "row {i} norm {n}");
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_inputs() {
        let _ = EncoderConfig::paper(3, 4);
    }

    #[test]
    fn param_count_is_plausible() {
        let cfg = EncoderConfig::paper(9, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let net = build_encoder(&cfg, &mut rng);
        // conv1: 64*(1*2*2)+64; conv2: 128*(64*2*2)+128; fc: 6272*100+100;
        // embed: 100*8+8.
        let expected =
            64 * 4 + 64 + 128 * 256 + 128 + cfg.flat_features() * 100 + 100 + 100 * 8 + 8;
        assert_eq!(net.param_count(), expected);
    }
}
