//! # stone
//!
//! The STONE framework — *Siamese neural encoders for long-term indoor
//! localization with mobile devices* (Tiku & Pasricha, DATE 2022) — built on
//! the workspace substrates (`stone-tensor`, `stone-nn`, `stone-radio`,
//! `stone-dataset`).
//!
//! STONE's offline phase (Fig. 2 of the paper):
//!
//! 1. preprocess RSSI fingerprints into square images ([`ImageCodec`],
//!    Sec. IV.B);
//! 2. train a convolutional Siamese encoder with triplet loss (Sec. IV.D),
//!    using **long-term fingerprint augmentation** — random AP turn-off with
//!    `p_turn_off ~ U(0, p_upper)` ([`ApDropoutAugmenter`], Sec. IV.C,
//!    Eq. 4) — and **floorplan-aware triplet selection** — hard negatives
//!    sampled from a bivariate Gaussian around the anchor RP
//!    ([`FloorplanAwareSelector`], Sec. IV.E, Eq. 5);
//! 3. embed the offline fingerprints and fit a non-parametric KNN model
//!    ([`EmbeddingKnn`]).
//!
//! The online phase is [`StoneLocalizer`]: encode the user's scan, KNN over
//! the embeddings, report the position — with **no re-training ever**.
//!
//! # Example
//!
//! ```no_run
//! use stone::StoneBuilder;
//! use stone_dataset::{office_suite, Localizer, SuiteConfig};
//!
//! let suite = office_suite(&SuiteConfig::tiny(7));
//! let localizer = StoneBuilder::quick().fit(&suite.train, 7);
//! let test = &suite.buckets[3].trajectories[0].fingerprints[0];
//! let predicted = localizer.locate(&test.rssi);
//! println!("true {} predicted {}", test.pos, predicted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod encoder;
mod knn;
mod localizer;
pub mod model_io;
mod preprocess;
mod trainer;
mod triplet;

pub use augment::ApDropoutAugmenter;
pub use encoder::{build_encoder, EncoderConfig};
pub use knn::{EmbeddingKnn, KnnMode};
pub use localizer::{ConfigError, StoneBuilder, StoneConfig, StoneLocalizer};
pub use model_io::ModelIoError;
pub use preprocess::ImageCodec;
pub use trainer::{EpochStats, SiameseTrainer, TrainedEncoder, TrainerConfig};
pub use triplet::{
    FloorplanAwareSelector, RssiHardSelector, SelectorKind, TrainIndex, Triplet, TripletSelector,
    UniformSelector,
};
