//! Property-based tests for the tensor substrate.

use std::sync::{Mutex, MutexGuard, PoisonError};

use proptest::prelude::*;
use stone_tensor::{
    col2im, fma_available, im2col, matmul, matmul_a_bt, matmul_at_b, with_backend, Conv2dGeometry,
    MatmulBackend, Tensor,
};

/// `with_backend` installs a process-wide override, so the tests here that
/// pin a backend serialize through this lock (cargo runs test fns in this
/// binary concurrently).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn backend_lock() -> MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity_left_right(a in tensor_strategy(4, 4)) {
        let i = Tensor::eye(4);
        prop_assert_eq!(&matmul(&a, &i), &a);
        prop_assert_eq!(&matmul(&i, &a), &a);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        let lhs = matmul(&a, &(&b + &c));
        let rhs = &matmul(&a, &b) + &matmul(&a, &c);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_variants_agree(
        a in tensor_strategy(3, 5),
        b in tensor_strategy(3, 4),
    ) {
        let direct = matmul(&a.transposed(), &b);
        let fused = matmul_at_b(&a, &b);
        for (x, y) in direct.as_slice().iter().zip(fused.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn a_bt_agrees_with_transpose(
        a in tensor_strategy(3, 5),
        b in tensor_strategy(2, 5),
    ) {
        let direct = matmul(&a, &b.transposed());
        let fused = matmul_a_bt(&a, &b);
        for (x, y) in direct.as_slice().iter().zip(fused.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_is_involutive(a in tensor_strategy(5, 3)) {
        prop_assert_eq!(&a.transposed().transposed(), &a);
    }

    #[test]
    fn reshape_preserves_elements(a in tensor_strategy(4, 6)) {
        let r = a.reshape(vec![3, 8]).unwrap();
        prop_assert_eq!(r.as_slice(), a.as_slice());
    }

    #[test]
    fn im2col_col2im_adjoint(
        xs in proptest::collection::vec(-5.0f32..5.0, 2 * 5 * 4),
        ys in proptest::collection::vec(-5.0f32..5.0, (2 * 2 * 2) * (4 * 3)),
    ) {
        let g = Conv2dGeometry::new(2, 5, 4, 2, 2, 1).unwrap();
        let y = Tensor::from_vec(vec![g.col_rows(), g.col_cols()], ys).unwrap();
        let ax = im2col(&xs, &g);
        let lhs: f32 = ax.as_slice().iter().zip(y.as_slice()).map(|(&a, &b)| a * b).sum();
        let mut aty = vec![0.0f32; xs.len()];
        col2im(&y, &g, &mut aty);
        let rhs: f32 = xs.iter().zip(&aty).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn solve_recovers_solution(
        xs in proptest::collection::vec(-3.0f32..3.0, 9),
        sol in proptest::collection::vec(-3.0f32..3.0, 3),
    ) {
        // Make the matrix diagonally dominant so it is well-conditioned.
        let mut a = Tensor::from_vec(vec![3, 3], xs).unwrap();
        for i in 0..3 {
            let v = a.at2(i, i);
            a.set2(i, i, v + 12.0);
        }
        let b: Vec<f32> = (0..3)
            .map(|i| a.row(i).iter().zip(&sol).map(|(&m, &s)| m * s).sum())
            .collect();
        let x = stone_tensor::linalg::solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&sol) {
            prop_assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_strategy(4, 6)) {
        let s = stone_tensor::softmax_rows(&a);
        for i in 0..4 {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

/// Deterministic pseudo-random matrix from a salt. The proptest shim has no
/// dynamic-length `vec` strategy, so random-*shape* tests draw dimensions
/// and a salt instead and derive the data hash-style.
fn salted(rows: usize, cols: usize, salt: u32) -> Tensor {
    Tensor::from_fn(vec![rows, cols], |i| {
        let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt.wrapping_mul(97));
        (h % 2003) as f32 / 1001.5 - 1.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every kernel variant — register-tiled, narrow-path, either
    /// non-contracting SIMD backend — must match the naive triple loop
    /// **bitwise**, not approximately: tiling and packing regroup which
    /// elements are computed together but never reorder any element's own
    /// sum (the canonical accumulation order of `docs/PERFORMANCE.md`).
    /// Shapes are drawn so every combination of full and ragged register
    /// tiles, and outputs narrower than one tile, comes up. Pinned to the
    /// portable backend so a `STONE_FMA=1` environment (whose opt-in
    /// backend contracts the multiply-add and is exempt from bitwise
    /// equality by design) does not fail it; the FMA envelope has its own
    /// property below.
    #[test]
    fn kernel_variants_match_naive_triple_loop_bitwise(
        m in 1usize..35,
        k in 1usize..41,
        n in 1usize..35,
        salt in 0u32..1_000_000,
    ) {
        let _g = backend_lock();
        let a = salted(m, k, salt);
        let b = salted(k, n, salt.wrapping_add(1));
        let at = salted(k, m, salt.wrapping_add(2));
        let bt = salted(n, k, salt.wrapping_add(3));

        let (c, c_atb, c_abt) = with_backend(MatmulBackend::Portable, || {
            (matmul(&a, &b), matmul_at_b(&at, &b), matmul_a_bt(&a, &bt))
        });
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                prop_assert_eq!(c.at2(i, j), acc, "matmul ({},{})", i, j);
            }
        }

        let c = c_atb;
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += at.at2(p, i) * b.at2(p, j);
                }
                prop_assert_eq!(c.at2(i, j), acc, "matmul_at_b ({},{})", i, j);
            }
        }

        let c = c_abt;
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at2(i, p) * bt.at2(j, p);
                }
                prop_assert_eq!(c.at2(i, j), acc, "matmul_a_bt ({},{})", i, j);
            }
        }
    }

    /// The `STONE_FMA=1` accuracy envelope (documented on
    /// `MatmulBackend::Fma`): the contracted kernel keeps the canonical
    /// accumulation order, so each element differs from the portable
    /// result by at most one rounding per inner step —
    /// `|fma - portable| ≤ k · ε · Σₚ|a[i,p]|·|b[p,j]|`. Random shapes
    /// include ragged register tiles in every dimension; the narrow
    /// (< one tile) paths never contract, so outputs in that regime must
    /// be **bit-equal** regardless of backend. Vacuous on machines
    /// without AVX2+FMA, where `STONE_FMA` is a no-op (pinned separately
    /// by `backend_flag_policy_covers_every_combination`).
    #[test]
    fn fma_backend_stays_within_documented_error_envelope(
        m in 1usize..35,
        k in 1usize..41,
        n in 1usize..35,
        salt in 0u32..1_000_000,
    ) {
        if !fma_available() {
            return Ok(());
        }
        let _g = backend_lock();
        let a = salted(m, k, salt.wrapping_add(7));
        let b = salted(k, n, salt.wrapping_add(8));
        let at = salted(k, m, salt.wrapping_add(9));
        let bt = salted(n, k, salt.wrapping_add(10));

        let run = || (matmul(&a, &b), matmul_at_b(&at, &b), matmul_a_bt(&a, &bt));
        let portable = with_backend(MatmulBackend::Portable, run);
        let fma = with_backend(MatmulBackend::Fma, run);

        // Per-element |a|·|b| dot products for the three variants.
        let abs_dot = |i: usize, j: usize, variant: usize| -> f32 {
            (0..k)
                .map(|p| match variant {
                    0 => (a.at2(i, p) * b.at2(p, j)).abs(),
                    1 => (at.at2(p, i) * b.at2(p, j)).abs(),
                    _ => (a.at2(i, p) * bt.at2(j, p)).abs(),
                })
                .sum()
        };
        for (variant, (p, f), name) in [
            (0, (&portable.0, &fma.0), "matmul"),
            (1, (&portable.1, &fma.1), "matmul_at_b"),
            (2, (&portable.2, &fma.2), "matmul_a_bt"),
        ] {
            for i in 0..m {
                for j in 0..n {
                    let (pv, fv) = (p.at2(i, j), f.at2(i, j));
                    let bound = k as f32 * f32::EPSILON * abs_dot(i, j, variant);
                    prop_assert!(
                        (pv - fv).abs() <= bound,
                        "{} ({},{}): |{} - {}| > {}", name, i, j, pv, fv, bound
                    );
                }
            }
        }
    }

    /// The batched im2col window writer must place each sample's columns
    /// exactly where the one-sample lowering puts them, shifted by the
    /// window offset (the `Conv2d` batching contract).
    #[test]
    fn im2col_into_window_matches_single_sample(salt in 0u32..1_000_000) {
        let g = Conv2dGeometry::new(2, 5, 4, 2, 2, 1).unwrap();
        let samples: Vec<Tensor> =
            (0..3).map(|s| salted(1, 2 * 5 * 4, salt.wrapping_add(s))).collect();
        let wide_cols = 3 * g.col_cols();
        let mut wide = vec![f32::NAN; g.col_rows() * wide_cols];
        for (s, sample) in samples.iter().enumerate() {
            stone_tensor::im2col_into(sample.as_slice(), &g, &mut wide, wide_cols, s * g.col_cols());
        }
        for (s, sample) in samples.iter().enumerate() {
            let single = im2col(sample.as_slice(), &g);
            for r in 0..g.col_rows() {
                for c in 0..g.col_cols() {
                    prop_assert_eq!(
                        wide[r * wide_cols + s * g.col_cols() + c],
                        single.at2(r, c),
                        "sample {} row {} col {}", s, r, c
                    );
                }
            }
        }
    }
}
