//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use stone_tensor::{col2im, im2col, matmul, matmul_a_bt, matmul_at_b, Conv2dGeometry, Tensor};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity_left_right(a in tensor_strategy(4, 4)) {
        let i = Tensor::eye(4);
        prop_assert_eq!(&matmul(&a, &i), &a);
        prop_assert_eq!(&matmul(&i, &a), &a);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        let lhs = matmul(&a, &(&b + &c));
        let rhs = &matmul(&a, &b) + &matmul(&a, &c);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_variants_agree(
        a in tensor_strategy(3, 5),
        b in tensor_strategy(3, 4),
    ) {
        let direct = matmul(&a.transposed(), &b);
        let fused = matmul_at_b(&a, &b);
        for (x, y) in direct.as_slice().iter().zip(fused.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn a_bt_agrees_with_transpose(
        a in tensor_strategy(3, 5),
        b in tensor_strategy(2, 5),
    ) {
        let direct = matmul(&a, &b.transposed());
        let fused = matmul_a_bt(&a, &b);
        for (x, y) in direct.as_slice().iter().zip(fused.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_is_involutive(a in tensor_strategy(5, 3)) {
        prop_assert_eq!(&a.transposed().transposed(), &a);
    }

    #[test]
    fn reshape_preserves_elements(a in tensor_strategy(4, 6)) {
        let r = a.reshape(vec![3, 8]).unwrap();
        prop_assert_eq!(r.as_slice(), a.as_slice());
    }

    #[test]
    fn im2col_col2im_adjoint(
        xs in proptest::collection::vec(-5.0f32..5.0, 2 * 5 * 4),
        ys in proptest::collection::vec(-5.0f32..5.0, (2 * 2 * 2) * (4 * 3)),
    ) {
        let g = Conv2dGeometry::new(2, 5, 4, 2, 2, 1).unwrap();
        let y = Tensor::from_vec(vec![g.col_rows(), g.col_cols()], ys).unwrap();
        let ax = im2col(&xs, &g);
        let lhs: f32 = ax.as_slice().iter().zip(y.as_slice()).map(|(&a, &b)| a * b).sum();
        let mut aty = vec![0.0f32; xs.len()];
        col2im(&y, &g, &mut aty);
        let rhs: f32 = xs.iter().zip(&aty).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn solve_recovers_solution(
        xs in proptest::collection::vec(-3.0f32..3.0, 9),
        sol in proptest::collection::vec(-3.0f32..3.0, 3),
    ) {
        // Make the matrix diagonally dominant so it is well-conditioned.
        let mut a = Tensor::from_vec(vec![3, 3], xs).unwrap();
        for i in 0..3 {
            let v = a.at2(i, i);
            a.set2(i, i, v + 12.0);
        }
        let b: Vec<f32> = (0..3)
            .map(|i| a.row(i).iter().zip(&sol).map(|(&m, &s)| m * s).sum())
            .collect();
        let x = stone_tensor::linalg::solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&sol) {
            prop_assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_strategy(4, 6)) {
        let s = stone_tensor::softmax_rows(&a);
        for i in 0..4 {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
