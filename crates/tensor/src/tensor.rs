use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use crate::{Result, TensorError};

/// An owned, dense, row-major `f32` tensor of arbitrary rank.
///
/// `Tensor` is intentionally simple: it owns its data, all operations either
/// allocate a fresh result or mutate in place, and there are no views or
/// strides. The neural-network layers in `stone-nn` interpret rank-4 tensors
/// as `[batch, channels, height, width]` and rank-2 tensors as
/// `[rows, cols]`.
///
/// # Example
///
/// ```
/// use stone_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.at2(1, 2), 6.0);
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and flat row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the product of `shape`
    /// does not equal `data.len()`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::LengthMismatch { expected, got: data.len() });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor filled with zeros.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        Self { shape, data: vec![0.0; n] }
    }

    /// Creates a tensor filled with ones.
    #[must_use]
    pub fn ones(shape: Vec<usize>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    #[must_use]
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n: usize = shape.iter().product();
        Self { shape, data: vec![value; n] }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor from a slice.
    #[must_use]
    pub fn from_slice(data: &[f32]) -> Self {
        Self { shape: vec![data.len()], data: data.to_vec() }
    }

    /// Creates a tensor by evaluating `f` at each flat (row-major) index.
    #[must_use]
    pub fn from_fn(shape: Vec<usize>, mut f: impl FnMut(usize) -> f32) -> Self {
        let n: usize = shape.iter().product();
        Self { shape, data: (0..n).map(&mut f).collect() }
    }

    /// The shape of the tensor.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The rank (number of dimensions).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the flat row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat row-major data.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank 2.
    #[must_use]
    pub fn rows(&self) -> usize {
        assert_eq!(self.rank(), 2, "rows() requires a rank-2 tensor, got rank {}", self.rank());
        self.shape[0]
    }

    /// Number of columns of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank 2.
    #[must_use]
    pub fn cols(&self) -> usize {
        assert_eq!(self.rank(), 2, "cols() requires a rank-2 tensor, got rank {}", self.rank());
        self.shape[1]
    }

    /// Element access for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank 2 or the index is out of bounds.
    #[must_use]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        let cols = self.cols();
        self.data[r * cols + c]
    }

    /// Sets one element of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank 2 or the index is out of bounds.
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        let cols = self.cols();
        self.data[r * cols + c] = v;
    }

    /// Borrows row `r` of a rank-2 tensor as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank 2 or `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        let cols = self.cols();
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutably borrows row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank 2 or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let cols = self.cols();
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Returns a new tensor with the given shape sharing this tensor's data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the new shape implies a
    /// different number of elements.
    pub fn reshape(&self, shape: Vec<usize>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch { expected, got: self.data.len() });
        }
        Ok(Self { shape, data: self.data.clone() })
    }

    /// In-place variant of [`Tensor::reshape`], avoiding the data clone.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the new shape implies a
    /// different number of elements.
    pub fn reshape_in_place(&mut self, shape: Vec<usize>) -> Result<()> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch { expected, got: self.data.len() });
        }
        self.shape = shape;
        Ok(())
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank 2.
    #[must_use]
    pub fn transposed(&self) -> Self {
        let (m, n) = (self.rows(), self.cols());
        let mut out = Self::zeros(vec![n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Applies `f` elementwise, returning a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` elementwise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Self { shape: self.shape.clone(), data })
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns the tensor scaled by `s`.
    #[must_use]
    pub fn scaled(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Adds `other * alpha` into `self` (axpy).
    ///
    /// # Panics
    ///
    /// Panics when shapes differ; this is a hot path used by the optimizers
    /// where a shape mismatch is a programming error.
    pub fn axpy_in_place(&mut self, alpha: f32, other: &Self) {
        assert_eq!(
            self.shape, other.shape,
            "axpy_in_place requires matching shapes ({:?} vs {:?})",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    #[must_use]
    pub fn dot(&self, other: &Self) -> f32 {
        assert_eq!(self.len(), other.len(), "dot requires equal lengths");
        self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum()
    }

    /// Euclidean (L2) norm of the tensor viewed as a flat vector.
    #[must_use]
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Squared Euclidean distance to `other` viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    #[must_use]
    pub fn sq_distance(&self, other: &Self) -> f32 {
        assert_eq!(self.len(), other.len(), "sq_distance requires equal lengths");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Stacks rank-1 tensors (or slices) of equal length into a rank-2
    /// tensor, one input per row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when rows have differing
    /// lengths, or [`TensorError::InvalidDimension`] when `rows` is empty.
    pub fn stack_rows(rows: &[&[f32]]) -> Result<Self> {
        let first =
            rows.first().ok_or(TensorError::InvalidDimension { what: "empty row stack" })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    left: vec![rows.len(), cols],
                    right: vec![r.len()],
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self { shape: vec![rows.len(), cols], data })
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, ...; {} elems])",
                self.data[0],
                self.data[1],
                self.len()
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self { shape: vec![0], data: Vec::new() }
    }
}

impl Add for &Tensor {
    type Output = Tensor;

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b).expect("operand shapes must match for +")
    }
}

impl Sub for &Tensor {
    type Output = Tensor;

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b).expect("operand shapes must match for -")
    }
}

impl Mul for &Tensor {
    type Output = Tensor;

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a * b).expect("operand shapes must match for *")
    }
}

impl AddAssign<&Tensor> for Tensor {
    /// Elementwise accumulate.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy_in_place(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![1.0; 3]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 4, got: 3 });
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(vec![3]).as_slice().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(vec![3]).as_slice().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(vec![3], 2.5).as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at2(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn rank2_accessors() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.row(1), &[4., 5., 6.]);
        assert_eq!(t.at2(0, 2), 3.0);
    }

    #[test]
    fn reshape_checks_and_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = t.transposed().transposed();
        assert_eq!(tt, t);
    }

    #[test]
    fn transpose_values() {
        let t = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        let tr = t.transposed();
        assert_eq!(tr.as_slice(), &[1., 3., 2., 4.]);
    }

    #[test]
    fn elementwise_operators() {
        let a = Tensor::from_slice(&[1., 2., 3.]);
        let b = Tensor::from_slice(&[4., 5., 6.]);
        assert_eq!((&a + &b).as_slice(), &[5., 7., 9.]);
        assert_eq!((&b - &a).as_slice(), &[3., 3., 3.]);
        assert_eq!((&a * &b).as_slice(), &[4., 10., 18.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1., 1.]);
        let g = Tensor::from_slice(&[2., 4.]);
        a.axpy_in_place(0.5, &g);
        assert_eq!(a.as_slice(), &[2., 3.]);
    }

    #[test]
    fn dot_and_norms() {
        let a = Tensor::from_slice(&[3., 4.]);
        assert_eq!(a.norm_l2(), 5.0);
        let b = Tensor::from_slice(&[1., 0.]);
        assert_eq!(a.dot(&b), 3.0);
        assert_eq!(a.sq_distance(&b), 4.0 + 16.0);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let m = Tensor::stack_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]).unwrap();
        assert_eq!(m.shape(), &[3, 2]);
        assert_eq!(m.row(2), &[5., 6.]);
        assert!(Tensor::stack_rows(&[&[1., 2.], &[3.]]).is_err());
        assert!(Tensor::stack_rows(&[]).is_err());
    }

    #[test]
    fn zip_map_shape_mismatch() {
        let a = Tensor::zeros(vec![2]);
        let b = Tensor::zeros(vec![3]);
        assert!(a.zip_map(&b, |x, y| x + y).is_err());
    }

    #[test]
    fn debug_is_never_empty() {
        let t = Tensor::zeros(vec![100]);
        let s = format!("{t:?}");
        assert!(s.contains("shape"));
    }
}
