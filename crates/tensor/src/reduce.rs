//! Reductions and row-wise transforms.

use crate::Tensor;

/// Sum of all elements.
///
/// # Example
///
/// ```
/// use stone_tensor::{sum_all, Tensor};
/// assert_eq!(sum_all(&Tensor::from_slice(&[1.0, 2.0, 3.0])), 6.0);
/// ```
#[must_use]
pub fn sum_all(t: &Tensor) -> f32 {
    t.as_slice().iter().sum()
}

/// Mean of all elements; `0.0` for an empty tensor.
#[must_use]
pub fn mean_all(t: &Tensor) -> f32 {
    if t.is_empty() {
        0.0
    } else {
        sum_all(t) / t.len() as f32
    }
}

/// Sums a rank-2 tensor over its rows, producing one value per column.
///
/// This is the reduction used for bias gradients over a batch.
///
/// # Panics
///
/// Panics when `t` is not rank 2.
#[must_use]
pub fn sum_axis0(t: &Tensor) -> Tensor {
    let (m, n) = (t.rows(), t.cols());
    let mut out = Tensor::zeros(vec![n]);
    let o = out.as_mut_slice();
    for i in 0..m {
        for (ov, &v) in o.iter_mut().zip(t.row(i)) {
            *ov += v;
        }
    }
    out
}

/// Index of the maximum element of a slice (first occurrence on ties).
///
/// # Panics
///
/// Panics when `xs` is empty.
#[must_use]
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Row-wise numerically-stable softmax of a rank-2 tensor.
///
/// # Panics
///
/// Panics when `t` is not rank 2.
#[must_use]
pub fn softmax_rows(t: &Tensor) -> Tensor {
    let (m, n) = (t.rows(), t.cols());
    let mut out = Tensor::zeros(vec![m, n]);
    for i in 0..m {
        let row = t.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let orow = out.row_mut(i);
        let mut sum = 0.0;
        for (o, &v) in orow.iter_mut().zip(row) {
            *o = (v - max).exp();
            sum += *o;
        }
        for o in orow.iter_mut() {
            *o /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let t = Tensor::from_slice(&[1., 2., 3., 4.]);
        assert_eq!(sum_all(&t), 10.0);
        assert_eq!(mean_all(&t), 2.5);
        assert_eq!(mean_all(&Tensor::from_slice(&[])), 0.0);
    }

    #[test]
    fn sum_axis0_per_column() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 10., 20., 30.]).unwrap();
        assert_eq!(sum_axis0(&t).as_slice(), &[11., 22., 33.]);
    }

    #[test]
    fn argmax_first_tie() {
        assert_eq!(argmax(&[1., 5., 5., 2.]), 1);
        assert_eq!(argmax(&[3.]), 0);
        assert_eq!(argmax(&[-2., -1., -5.]), 1);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 1000., 1000., 1000.]).unwrap();
        let s = softmax_rows(&t);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Larger logits get larger probabilities.
        assert!(s.at2(0, 2) > s.at2(0, 1) && s.at2(0, 1) > s.at2(0, 0));
        // Stable under large values (no NaN).
        assert!(s.row(1).iter().all(|v| v.is_finite()));
    }
}
