use std::fmt;

/// Errors produced by fallible tensor and linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied (or required) by an operation.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        got: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor that was provided.
        got: usize,
    },
    /// A linear system could not be solved because the matrix is singular
    /// (or numerically too close to singular).
    SingularMatrix,
    /// A shape dimension was invalid for the requested operation (for
    /// example, a zero-sized convolution window).
    InvalidDimension {
        /// Human-readable description of the offending dimension.
        what: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(f, "shape implies {expected} elements but {got} were provided")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "incompatible operand shapes {left:?} and {right:?}")
            }
            TensorError::RankMismatch { expected, got } => {
                write!(f, "operation requires rank {expected} but tensor has rank {got}")
            }
            TensorError::SingularMatrix => write!(f, "matrix is singular or near-singular"),
            TensorError::InvalidDimension { what } => write!(f, "invalid dimension: {what}"),
        }
    }
}

impl std::error::Error for TensorError {}
