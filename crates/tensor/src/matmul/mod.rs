//! Dense matrix products.
//!
//! Three variants cover every product the backpropagation code needs without
//! ever materializing an explicit transpose:
//!
//! * [`matmul`]      — `C = A · B`
//! * [`matmul_at_b`] — `C = Aᵀ · B` (used for input gradients)
//! * [`matmul_a_bt`] — `C = A · Bᵀ` (used for weight gradients)
//!
//! # Execution model
//!
//! All three run the same register-tiled pipeline:
//!
//! 1. **Pack** ([`pack`]): the B operand is repacked once per call into
//!    [`microkernel::LANES`]-column panels; each worker repacks the A rows
//!    of its current tile. Packing fuses any transpose the variant needs,
//!    so the kernel's inner loop sees two contiguous streams regardless of
//!    the source layout.
//! 2. **Tile** ([`microkernel`]): an 8-row × 8-lane register tile
//!    accumulates into a fixed array of lane accumulators across the whole
//!    inner dimension — broadcast, multiply, add; no strided loads, no
//!    per-element branches, no horizontal reductions. A portable kernel
//!    and an AVX2 kernel ([`simd`], selected by runtime CPU detection,
//!    disabled by `STONE_NO_SIMD=1`) execute the identical lane arithmetic
//!    and are bit-equal by construction.
//! 3. **Store**: live tile lanes are copied into the output; zero-padded
//!    ragged-edge lanes are discarded.
//!
//! A dispatcher either runs the tile loop once (small products) or
//! partitions the output rows across threads with [`stone_par::par_chunks`]
//! (products above [`PAR_MIN_MACS`] multiply-accumulates). Outputs
//! narrower than one tile (fewer than [`TILE_MIN_ROWS`] rows — e.g. the
//! single-scan encoder forward pass, `m = 1`) skip packing entirely and
//! run a streaming row-wise kernel in the same accumulation order.
//!
//! # Canonical accumulation order
//!
//! Every output element is owned by exactly one accumulator lane, updated
//! at every inner-dimension step in strictly increasing order — the same
//! order as a naive triple loop. Tiling groups *which elements* are
//! computed together; it never changes any element's own sum. The result
//! is therefore **bitwise identical** across the serial path, every
//! parallel row split (any `STONE_THREADS`), both microkernel backends,
//! and the naive reference — the contract `tests/parallel_determinism.rs`
//! and the property tests pin.
//!
//! The scalar blocked kernels this pipeline replaced are kept in
//! [`reference`] as the bench baseline and test oracle.

mod microkernel;
mod pack;
mod reference;
#[cfg(target_arch = "x86_64")]
mod simd;

pub use microkernel::{fma_available, simd_available, with_backend, MatmulBackend};
pub use reference::{matmul_a_bt_scalar, matmul_at_b_scalar, matmul_scalar};

use std::sync::OnceLock;

use microkernel::{LANES, TILE_ROWS};
use stone_obs::prof::{maybe_start, KernelProf};

use crate::Tensor;

/// Per-kernel `STONE_PROF=1` timing: counters are resolved once per
/// dispatcher and fed only when profiling is enabled (`start` is `None`
/// otherwise — one cached bool load on the default path).
fn prof_record(
    slot: &'static OnceLock<KernelProf>,
    name: &'static str,
    start: Option<std::time::Instant>,
    macs: usize,
) {
    if let Some(start) = start {
        slot.get_or_init(|| KernelProf::register(name)).record(start, macs as u64);
    }
}

static MM_PROF: OnceLock<KernelProf> = OnceLock::new();
static MM_AT_B_PROF: OnceLock<KernelProf> = OnceLock::new();
static MM_A_BT_PROF: OnceLock<KernelProf> = OnceLock::new();

/// Multiply-accumulate count (`m·k·n`) below which the dispatchers stay
/// serial. Re-derived against the worker pool (PR 6): one fork-join
/// region now costs ~3.3 µs at a 2-thread budget (`stone-par`'s
/// `spawn_probe` example — pool dispatch, down from ~22–28 µs when every
/// region spawned scoped threads), and splitting a product in half must
/// save more than that to pay off. At the tiled kernels' ~25 MAC/ns,
/// break-even sits near 2·3.3 µs ≈ 165K MACs; 2¹⁸ (~10.5 µs of work,
/// ~5.2 µs saved per extra thread) keeps a ~1.6× margin over dispatch
/// jitter. The old spawn-era threshold was 2²⁰ — the pool is what lets
/// serve-time small products parallelize at all. See
/// `docs/PERFORMANCE.md` ("Knobs") for the measurement.
pub const PAR_MIN_MACS: usize = 1 << 18;

/// Whether a product with `macs` total multiply-accumulates is worth
/// dispatching through the thread pool (which resolves the actual thread
/// count itself, capped by the number of output rows).
fn worth_threads(macs: usize) -> bool {
    macs >= PAR_MIN_MACS
}

/// Below this many output rows (`matmul`, `matmul_a_bt`) or inner steps
/// (`matmul_at_b`), the dispatchers skip packing and run a streaming
/// row-wise kernel instead: packing B costs `O(k·n)` — the size of the
/// whole product when `m = 1` (a single-scan encoder forward pass) — and a
/// register tile would be mostly padding rows. The row-wise kernels use
/// the same canonical accumulation order (each element summed over a
/// strictly increasing inner index, one accumulator), so crossing the
/// threshold never changes results, bit for bit.
const TILE_MIN_ROWS: usize = TILE_ROWS;

/// Runs a row-range kernel over all of `c`, through the thread pool when
/// `parallel` (a 1-thread budget degrades to the serial call inside
/// `par_chunks`).
fn dispatch(c: &mut Tensor, parallel: bool, kernel: impl Fn(&mut [f32], usize) + Sync) {
    let n = c.cols();
    if c.is_empty() {
        return;
    }
    if parallel {
        stone_par::par_chunks(c.as_mut_slice(), n, |r0, block| kernel(block, r0));
    } else {
        kernel(c.as_mut_slice(), 0);
    }
}

/// The tile loop for one contiguous range of output rows.
///
/// `block` holds rows `[r0, r0 + block.len() / n)` of the output; `steps`
/// is the inner-dimension length; `pack_a(first_row, width, buf)` fills the
/// packed A tile for `width` output rows starting at the *global* row
/// `first_row`. The packed B panels are shared read-only across workers.
fn tiled_block(
    block: &mut [f32],
    n: usize,
    r0: usize,
    steps: usize,
    bpack: &pack::PackedPanels,
    backend: MatmulBackend,
    pack_a: impl Fn(usize, usize, &mut [f32]),
) {
    let rows = block.len() / n;
    let panels = n.div_ceil(LANES);
    let mut apack = vec![0.0f32; steps * TILE_ROWS];
    for t0 in (0..rows).step_by(TILE_ROWS) {
        let mr = (rows - t0).min(TILE_ROWS);
        pack_a(r0 + t0, mr, &mut apack);
        for jp in 0..panels {
            let j0 = jp * LANES;
            let nr = (n - j0).min(LANES);
            let acc = microkernel::tile(&apack, bpack.panel(jp), backend);
            for (r, accrow) in acc.iter().enumerate().take(mr) {
                let dst = &mut block[(t0 + r) * n + j0..(t0 + r) * n + j0 + nr];
                dst.copy_from_slice(&accrow[..nr]);
            }
        }
    }
}

/// Streaming `A · B` kernel for narrow outputs (fewer than
/// [`TILE_MIN_ROWS`] rows), over output rows `[r0, r0 + rows)`:
/// axpy-style row accumulation over increasing `p` — the canonical order,
/// bit-equal to the tiled path. Dispatched like the tiled kernels, so a
/// narrow-but-huge product still splits its rows across threads.
fn mm_narrow(a: &Tensor, b: &Tensor, block: &mut [f32], r0: usize) {
    let (k, n) = (a.cols(), b.cols());
    let bd = b.as_slice();
    for (ri, crow) in block.chunks_exact_mut(n).enumerate() {
        let arow = a.row(r0 + ri);
        for p in 0..k {
            let av = arow[p];
            for (cv, &bv) in crow.iter_mut().zip(&bd[p * n..(p + 1) * n]) {
                *cv += av * bv;
            }
        }
    }
}

/// Streaming `Aᵀ · B` kernel for short inner dimensions (fewer than
/// [`TILE_MIN_ROWS`] steps), over output rows `[p0, p0 + rows)` (output
/// row `p` is column `p` of `A`): same canonical order as the tiled path.
/// The parallel axis (`k` output rows) is independent of the short inner
/// dimension, so dispatch still splits large outputs across threads.
fn mm_at_b_narrow(a: &Tensor, b: &Tensor, block: &mut [f32], p0: usize) {
    let n = b.cols();
    let rows = block.len() / n;
    for i in 0..a.rows() {
        let arow = &a.row(i)[p0..p0 + rows];
        let brow = b.row(i);
        for (crow, &av) in block.chunks_exact_mut(n).zip(arow) {
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Streaming `A · Bᵀ` kernel for narrow outputs, over output rows
/// `[r0, r0 + rows)`: per-element dot products over increasing `p` — the
/// canonical order.
fn mm_a_bt_narrow(a: &Tensor, b: &Tensor, block: &mut [f32], r0: usize) {
    let n = b.rows();
    for (ri, crow) in block.chunks_exact_mut(n).enumerate() {
        let arow = a.row(r0 + ri);
        for (j, cv) in crow.iter_mut().enumerate() {
            *cv = arow.iter().zip(b.row(j)).map(|(&x, &y)| x * y).sum();
        }
    }
}

/// Computes `A · B` for `A: [m, k]` and `B: [k, n]`.
///
/// Register-tiled (see the module docs); products with at least
/// [`PAR_MIN_MACS`] multiply-accumulates are split across threads by output
/// row. The result is bitwise identical at any thread count and on either
/// microkernel backend.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use stone_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.])?;
/// let b = Tensor::from_vec(vec![2, 1], vec![5., 6.])?;
/// assert_eq!(matmul(&a, &b).as_slice(), &[17., 39.]);
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[must_use]
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (bk, n) = (b.rows(), b.cols());
    assert_eq!(k, bk, "matmul inner dimensions differ: {k} vs {bk}");
    let mut c = Tensor::zeros(vec![m, n]);
    if c.is_empty() || k == 0 {
        return c; // empty output, or an empty sum: all zeros
    }
    let prof = maybe_start();
    if m < TILE_MIN_ROWS {
        dispatch(&mut c, worth_threads(m * k * n), |block, r0| mm_narrow(a, b, block, r0));
    } else {
        let bpack = pack::PackedPanels::from_rows(b.as_slice(), k, n);
        let backend = microkernel::active_backend();
        let ad = a.as_slice();
        dispatch(&mut c, worth_threads(m * k * n), |block, r0| {
            tiled_block(block, n, r0, k, &bpack, backend, |row0, width, buf| {
                pack::pack_width_major(ad, k, row0, width, buf);
            });
        });
    }
    prof_record(&MM_PROF, "matmul", prof, m * k * n);
    c
}

/// Computes `Aᵀ · B` for `A: [m, k]` and `B: [m, n]`, yielding `[k, n]`.
///
/// Register-tiled; parallel above [`PAR_MIN_MACS`] multiply-accumulates,
/// bitwise identical at any thread count and on either microkernel
/// backend.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the leading dimensions differ.
///
/// # Example
///
/// ```
/// use stone_tensor::{matmul, matmul_at_b, Tensor};
///
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::from_vec(vec![2, 2], vec![1., 0., 0., 1.])?;
/// assert_eq!(matmul_at_b(&a, &b), matmul(&a.transposed(), &b));
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[must_use]
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (bm, n) = (b.rows(), b.cols());
    assert_eq!(m, bm, "matmul_at_b leading dimensions differ: {m} vs {bm}");
    let mut c = Tensor::zeros(vec![k, n]);
    if c.is_empty() || m == 0 {
        return c; // empty output, or an empty sum: all zeros
    }
    let prof = maybe_start();
    if m < TILE_MIN_ROWS {
        dispatch(&mut c, worth_threads(m * k * n), |block, p0| mm_at_b_narrow(a, b, block, p0));
    } else {
        // Output rows are columns of A; the inner dimension is m.
        let bpack = pack::PackedPanels::from_rows(b.as_slice(), m, n);
        let backend = microkernel::active_backend();
        let ad = a.as_slice();
        dispatch(&mut c, worth_threads(m * k * n), |block, p0| {
            tiled_block(block, n, p0, m, &bpack, backend, |col0, width, buf| {
                pack::pack_step_major(ad, k, col0, width, buf);
            });
        });
    }
    prof_record(&MM_AT_B_PROF, "matmul_at_b", prof, m * k * n);
    c
}

/// Computes `A · Bᵀ` for `A: [m, k]` and `B: [n, k]`, yielding `[m, n]`.
///
/// Register-tiled; parallel above [`PAR_MIN_MACS`] multiply-accumulates,
/// bitwise identical at any thread count and on either microkernel
/// backend.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the trailing dimensions
/// differ.
///
/// # Example
///
/// ```
/// use stone_tensor::{matmul, matmul_a_bt, Tensor};
///
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::from_vec(vec![2, 3], vec![1., 1., 1., 2., 2., 2.])?;
/// assert_eq!(matmul_a_bt(&a, &b), matmul(&a, &b.transposed()));
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[must_use]
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, bk) = (b.rows(), b.cols());
    assert_eq!(k, bk, "matmul_a_bt trailing dimensions differ: {k} vs {bk}");
    let mut c = Tensor::zeros(vec![m, n]);
    if c.is_empty() || k == 0 {
        return c; // empty output, or an empty sum: all zeros
    }
    let prof = maybe_start();
    if m < TILE_MIN_ROWS {
        dispatch(&mut c, worth_threads(m * k * n), |block, r0| mm_a_bt_narrow(a, b, block, r0));
    } else {
        // Rows of B are output columns; packing fuses the transpose.
        let bpack = pack::PackedPanels::from_transposed_rows(b.as_slice(), k, n);
        let backend = microkernel::active_backend();
        let ad = a.as_slice();
        dispatch(&mut c, worth_threads(m * k * n), |block, r0| {
            tiled_block(block, n, r0, k, &bpack, backend, |row0, width, buf| {
                pack::pack_width_major(ad, k, row0, width, buf);
            });
        });
    }
    prof_record(&MM_A_BT_PROF, "matmul_a_bt", prof, m * k * n);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small_known_values() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[3, 3], &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        assert_eq!(matmul(&a, &Tensor::eye(3)), a);
        assert_eq!(matmul(&Tensor::eye(3), &a), a);
    }

    #[test]
    fn matmul_zero_annihilates() {
        let a = t(&[2, 2], &[1., 2., 3., 4.]);
        let z = Tensor::zeros(vec![2, 2]);
        assert_eq!(matmul(&a, &z), z);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = t(&[3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 4], &[1., 0., 2., 0., 0., 1., 0., 2., 1., 1., 1., 1.]);
        assert_eq!(matmul_at_b(&a, &b), matmul(&a.transposed(), &b));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = t(&[3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[4, 2], &[1., 0., 0., 1., 1., 1., 2., 3.]);
        assert_eq!(matmul_a_bt(&a, &b), matmul(&a, &b.transposed()));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn rectangular_chain_shapes() {
        let a = Tensor::ones(vec![4, 5]);
        let b = Tensor::ones(vec![5, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[4, 2]);
        assert!(c.as_slice().iter().all(|&x| (x - 5.0).abs() < 1e-6));
    }

    #[test]
    fn degenerate_dimensions_yield_empty_or_zero() {
        // k = 0: the sum over an empty inner dimension is all zeros.
        let a = Tensor::zeros(vec![3, 0]);
        let b = Tensor::zeros(vec![0, 2]);
        assert_eq!(matmul(&a, &b), Tensor::zeros(vec![3, 2]));
        // n = 0: empty output.
        let a = Tensor::zeros(vec![3, 2]);
        let b = Tensor::zeros(vec![2, 0]);
        assert_eq!(matmul(&a, &b).shape(), &[3, 0]);
        // Transposed variants, k = 0 / m = 0.
        let a = Tensor::zeros(vec![0, 3]);
        let b = Tensor::zeros(vec![0, 2]);
        assert_eq!(matmul_at_b(&a, &b), Tensor::zeros(vec![3, 2]));
        let a = Tensor::zeros(vec![3, 0]);
        let b = Tensor::zeros(vec![2, 0]);
        assert_eq!(matmul_a_bt(&a, &b), Tensor::zeros(vec![3, 2]));
    }

    /// Deterministic pseudo-random matrix (no RNG dependency in unit tests).
    fn pseudo(shape: &[usize], salt: u32) -> Tensor {
        Tensor::from_fn(shape.to_vec(), |i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            (h % 2003) as f32 / 1001.5 - 1.0
        })
    }

    #[test]
    fn parallel_paths_are_bitwise_identical_to_serial() {
        // 144·112·80 = 1 290 240 MACs — above PAR_MIN_MACS, and the odd
        // dimensions leave ragged tiles at every edge and uneven row splits
        // at 2 and 8 threads.
        let a = pseudo(&[144, 112], 1);
        let b = pseudo(&[112, 80], 2);
        let at = pseudo(&[112, 144], 3);
        let bt = pseudo(&[80, 112], 4);
        let serial = stone_par::with_threads(1, || {
            (matmul(&a, &b), matmul_at_b(&at, &b), matmul_a_bt(&a, &bt))
        });
        for nt in [2, 3, 8] {
            let par = stone_par::with_threads(nt, || {
                (matmul(&a, &b), matmul_at_b(&at, &b), matmul_a_bt(&a, &bt))
            });
            assert_eq!(serial.0.as_slice(), par.0.as_slice(), "matmul, {nt} threads");
            assert_eq!(serial.1.as_slice(), par.1.as_slice(), "matmul_at_b, {nt} threads");
            assert_eq!(serial.2.as_slice(), par.2.as_slice(), "matmul_a_bt, {nt} threads");
        }
    }

    #[test]
    fn narrow_parallel_paths_are_bitwise_identical_to_serial() {
        // Narrow (< TILE_MIN_ROWS) but above PAR_MIN_MACS: 4·600·600 =
        // 1.44M MACs. The narrow kernels must also row-split across
        // threads — for at_b the parallel axis (600 output rows) is
        // independent of the short inner dimension.
        let a = pseudo(&[4, 600], 70);
        let b = pseudo(&[600, 600], 71);
        let at = pseudo(&[4, 600], 72);
        let bt2 = pseudo(&[4, 600], 73);
        let serial = stone_par::with_threads(1, || {
            (matmul(&a, &b), matmul_at_b(&at, &bt2), matmul_a_bt(&a, &b.transposed()))
        });
        for nt in [2, 8] {
            let par = stone_par::with_threads(nt, || {
                (matmul(&a, &b), matmul_at_b(&at, &bt2), matmul_a_bt(&a, &b.transposed()))
            });
            assert_eq!(serial.0, par.0, "narrow matmul, {nt} threads");
            assert_eq!(serial.1, par.1, "narrow matmul_at_b, {nt} threads");
            assert_eq!(serial.2, par.2, "narrow matmul_a_bt, {nt} threads");
        }
    }

    #[test]
    fn tiled_kernel_matches_naive_triple_loop_bitwise() {
        // Ragged everywhere: 67 % 8 = 3 rows, 9 % 8 = 1 lane, k = 130.
        // The canonical accumulation order means bit-equality with the
        // naive loop, not approximate agreement. Pinned to the portable
        // backend: the contract is mul-then-add per update, which the
        // opt-in FMA backend deliberately contracts away (a STONE_FMA=1
        // environment must not fail this test; Simd↔Portable equality is
        // covered by `backends_are_bitwise_identical_on_ragged_shapes`).
        let _g = microkernel::backend_test_lock();
        let a = pseudo(&[67, 130], 5);
        let b = pseudo(&[130, 9], 6);
        let c = with_backend(MatmulBackend::Portable, || matmul(&a, &b));
        for i in 0..67 {
            for j in 0..9 {
                let mut acc = 0.0f32;
                for p in 0..130 {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                assert_eq!(c.at2(i, j), acc, "element ({i},{j})");
            }
        }
    }

    #[test]
    fn backends_are_bitwise_identical_on_ragged_shapes() {
        let _g = microkernel::backend_test_lock();
        if !simd_available() {
            return; // single-backend machine: nothing to compare
        }
        for (m, k, n, salt) in [(1, 1, 1, 10), (8, 8, 8, 20), (13, 21, 11, 30), (64, 50, 33, 40)] {
            let a = pseudo(&[m, k], salt);
            let b = pseudo(&[k, n], salt + 1);
            let at = pseudo(&[k, m], salt + 2);
            let bt = pseudo(&[n, k], salt + 3);
            let run = || (matmul(&a, &b), matmul_at_b(&at, &b), matmul_a_bt(&a, &bt));
            let portable = with_backend(MatmulBackend::Portable, run);
            let simd = with_backend(MatmulBackend::Simd, run);
            assert_eq!(portable.0, simd.0, "matmul {m}x{k}x{n}");
            assert_eq!(portable.1, simd.1, "matmul_at_b {m}x{k}x{n}");
            assert_eq!(portable.2, simd.2, "matmul_a_bt {m}x{k}x{n}");
        }
    }

    #[test]
    fn narrow_path_is_bitwise_identical_to_tiled_rows() {
        // Products are row-independent, so rows 0..3 of a 12-row (tiled)
        // product must be bit-equal to the 3-row (narrow-path) product of
        // the same rows — crossing TILE_MIN_ROWS never changes numbers.
        // Pinned to portable: the narrow kernels never contract, so under
        // the opt-in FMA backend the tiled and narrow paths legitimately
        // diverge (documented on `MatmulBackend::Fma`).
        let _g = microkernel::backend_test_lock();
        let a = pseudo(&[12, 31], 60);
        let b = pseudo(&[31, 17], 61);
        let bt = pseudo(&[17, 31], 62);
        let a3 = Tensor::from_vec(vec![3, 31], a.as_slice()[..3 * 31].to_vec()).unwrap();
        with_backend(MatmulBackend::Portable, || {
            let full = matmul(&a, &b);
            let narrow = matmul(&a3, &b);
            assert_eq!(&full.as_slice()[..narrow.len()], narrow.as_slice());
            let full = matmul_a_bt(&a, &bt);
            let narrow = matmul_a_bt(&a3, &bt);
            assert_eq!(&full.as_slice()[..narrow.len()], narrow.as_slice());
        });
        // at_b: the narrow axis is the inner dimension; compare a 3-step
        // (narrow) sum against the naive loop to pin the canonical order.
        let at = pseudo(&[3, 9], 63);
        let bb = pseudo(&[3, 7], 64);
        let c = matmul_at_b(&at, &bb);
        for p in 0..9 {
            for j in 0..7 {
                let mut acc = 0.0f32;
                for i in 0..3 {
                    acc += at.at2(i, p) * bb.at2(i, j);
                }
                assert_eq!(c.at2(p, j), acc, "element ({p},{j})");
            }
        }
    }

    #[test]
    fn scalar_reference_agrees_with_tiled_kernels() {
        // The PR 3 scalar kernels share the canonical accumulation order,
        // so on data with no exact zeros they are bit-equal too. Pinned to
        // portable — the scalar references never contract, so the opt-in
        // FMA backend legitimately diverges from them.
        let _g = microkernel::backend_test_lock();
        let a = pseudo(&[23, 17], 50);
        let b = pseudo(&[17, 19], 51);
        let at = pseudo(&[17, 23], 52);
        let bt = pseudo(&[19, 17], 53);
        with_backend(MatmulBackend::Portable, || {
            assert_eq!(matmul(&a, &b), matmul_scalar(&a, &b));
            assert_eq!(matmul_at_b(&at, &b), matmul_at_b_scalar(&at, &b));
            assert_eq!(matmul_a_bt(&a, &bt), matmul_a_bt_scalar(&a, &bt));
        });
    }
}
