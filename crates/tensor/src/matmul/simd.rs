//! Explicit AVX2 implementation of the register-tiled microkernel.
//!
//! This is the only module in the workspace allowed to use `unsafe`
//! (`unsafe_code` is denied crate- and workspace-wide): the unsafety is
//! confined to the `core::arch` intrinsics behind a safe wrapper that
//! re-checks CPU support, and the data side stays entirely in
//! bounds-checked slices — every load and store goes through a slice whose
//! length proves the access valid.
//!
//! The default kernel is the literal vector transcription of the portable
//! tile loop: per inner step, one 8-lane load of the packed B panel, then
//! per tile row a broadcast of the packed A value, a lane multiply
//! (`vmulps`) and a lane add (`vaddps`) into that row's accumulator
//! register. No FMA is issued — IEEE single-precision multiply-then-add is
//! exactly what the portable kernel's scalar lane arithmetic performs, so
//! the two backends are **bit-equal** on every input, which
//! `tests/parallel_determinism.rs` pins.
//!
//! [`tile_fma`] is the opt-in exception (PR 6, `STONE_FMA=1`): the same
//! loop with the multiply and add **contracted** into `vfmadd231ps`. The
//! contraction skips the intermediate rounding of the product, so its
//! results are *more* accurate but **not bit-equal** to the other
//! kernels — which is exactly why it is never a silent default (see
//! [`super::MatmulBackend::Fma`] for the error envelope and the opt-in
//! rules).
#![allow(unsafe_code)]

use core::arch::x86_64::{
    _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps,
    _mm256_setzero_ps, _mm256_storeu_ps,
};

use super::microkernel::{fma_available, simd_available, Acc, LANES, TILE_ROWS};

/// Computes one register tile with AVX2 intrinsics. Safe wrapper: verifies
/// AVX2 support (a cached atomic load) before entering the
/// `#[target_feature]` kernel.
///
/// # Panics
///
/// Panics when the CPU lacks AVX2 — the dispatchers only select this
/// backend after runtime detection, so a panic here means a caller bypassed
/// [`super::MatmulBackend`] selection.
pub fn tile(apack: &[f32], bpanel: &[f32]) -> Acc {
    assert!(simd_available(), "AVX2 microkernel invoked without CPU support");
    // SAFETY: AVX2 availability was just verified at runtime.
    unsafe { tile_avx2(apack, bpanel) }
}

/// The AVX2 tile loop. Eight `__m256` accumulators (one per tile row) live
/// in registers across the whole inner dimension; the inner step is
/// load + broadcast + multiply + add, nothing else.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
unsafe fn tile_avx2(apack: &[f32], bpanel: &[f32]) -> Acc {
    let mut vacc = [_mm256_setzero_ps(); TILE_ROWS];
    for (astep, bstep) in apack.chunks_exact(TILE_ROWS).zip(bpanel.chunks_exact(LANES)) {
        // SAFETY (loadu/storeu): `chunks_exact` yields slices of exactly
        // LANES / TILE_ROWS elements, so 8-wide unaligned loads from their
        // base pointers stay in bounds.
        let b = _mm256_loadu_ps(bstep.as_ptr());
        for (va, &a) in vacc.iter_mut().zip(astep) {
            *va = _mm256_add_ps(*va, _mm256_mul_ps(_mm256_set1_ps(a), b));
        }
    }
    let mut acc: Acc = [[0.0; LANES]; TILE_ROWS];
    for (row, va) in acc.iter_mut().zip(&vacc) {
        _mm256_storeu_ps(row.as_mut_ptr(), *va);
    }
    acc
}

/// Computes one register tile with fused multiply-add. Safe wrapper:
/// verifies AVX2+FMA support before entering the `#[target_feature]`
/// kernel.
///
/// # Panics
///
/// Panics when the CPU lacks AVX2 or FMA — the dispatchers only select
/// this backend when `STONE_FMA=1` *and* runtime detection succeeds, so a
/// panic here means a caller bypassed [`super::MatmulBackend`] selection.
pub fn tile_fma(apack: &[f32], bpanel: &[f32]) -> Acc {
    assert!(fma_available(), "FMA microkernel invoked without CPU support");
    // SAFETY: AVX2 and FMA availability were just verified at runtime.
    unsafe { tile_avx2_fma(apack, bpanel) }
}

/// The FMA tile loop: identical structure and accumulation *order* to
/// [`tile_avx2`], but each inner step issues `vfmadd231ps` instead of a
/// `vmulps`/`vaddps` pair. One rounding per update instead of two — a
/// numerics change, bounded by the envelope documented on
/// [`super::MatmulBackend::Fma`] and pinned by the proptest in
/// `crates/tensor/tests/properties.rs`.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
unsafe fn tile_avx2_fma(apack: &[f32], bpanel: &[f32]) -> Acc {
    let mut vacc = [_mm256_setzero_ps(); TILE_ROWS];
    for (astep, bstep) in apack.chunks_exact(TILE_ROWS).zip(bpanel.chunks_exact(LANES)) {
        // SAFETY (loadu/storeu): `chunks_exact` yields slices of exactly
        // LANES / TILE_ROWS elements, so 8-wide unaligned loads from their
        // base pointers stay in bounds.
        let b = _mm256_loadu_ps(bstep.as_ptr());
        for (va, &a) in vacc.iter_mut().zip(astep) {
            *va = _mm256_fmadd_ps(_mm256_set1_ps(a), b, *va);
        }
    }
    let mut acc: Acc = [[0.0; LANES]; TILE_ROWS];
    for (row, va) in acc.iter_mut().zip(&vacc) {
        _mm256_storeu_ps(row.as_mut_ptr(), *va);
    }
    acc
}
