//! The register-tiled microkernel and its backend selection.
//!
//! One output tile is [`TILE_ROWS`] × [`LANES`] elements, held in a fixed
//! array of lane accumulators for the whole inner dimension. Per inner step
//! the kernel reads [`TILE_ROWS`] packed A values and one [`LANES`]-wide
//! packed B vector (see [`super::pack`]) and performs
//! `acc[r][l] += a[r] * b[l]` — a broadcast, a multiply and an add per row,
//! with no strided loads, no `!= 0.0` branches, and no horizontal
//! reductions.
//!
//! # Canonical accumulation order
//!
//! Every output element owns exactly one accumulator lane, updated at every
//! inner step in strictly increasing order. That order — the same order a
//! naive `for p { c[i][j] += a[i][p] * b[p][j] }` triple loop uses — is the
//! *canonical* accumulation order of the crate: the portable kernel, the
//! AVX2 kernel, the serial dispatch and every parallel row split all
//! produce it, which is what makes results bitwise identical across
//! backends and thread counts.
//!
//! # Backends
//!
//! * [`MatmulBackend::Portable`] — safe Rust over fixed-size lane arrays;
//!   the compiler vectorizes it for the baseline target.
//! * [`MatmulBackend::Simd`] — explicit AVX2 intrinsics
//!   ([`super::simd`]), selected at runtime when the CPU supports AVX2.
//!
//! Both kernels evaluate each lane as an IEEE-754 single-precision multiply
//! followed by an add (no FMA contraction on either path), so their results
//! are **bit-equal**, not merely close: `Simd` is an execution strategy,
//! never a numerics change. `STONE_NO_SIMD=1` forces `Portable`
//! process-wide; [`super::with_backend`] overrides the choice in a scope
//! (tests, benches).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Output rows per register tile.
pub const TILE_ROWS: usize = 8;

/// Output columns per register tile (the SIMD lane width of one AVX2
/// `f32x8` vector; the portable kernel uses the same shape).
pub const LANES: usize = 8;

/// One microkernel invocation's accumulator tile.
pub type Acc = [[f32; LANES]; TILE_ROWS];

/// Which microkernel implementation executes the tile loop.
///
/// Both produce bitwise-identical results; see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatmulBackend {
    /// Safe, compiler-vectorized lane arithmetic. Always available; forced
    /// by `STONE_NO_SIMD=1`.
    Portable,
    /// Explicit AVX2 intrinsics (`x86_64` with runtime AVX2 support only).
    Simd,
}

/// Process-wide scoped override installed by [`super::with_backend`];
/// 0 = none, 1 = portable, 2 = SIMD.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Whether the explicit SIMD microkernel can run on this machine.
#[must_use]
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The backend chosen from the environment: `STONE_NO_SIMD` set to anything
/// but `0`/empty forces [`MatmulBackend::Portable`]; otherwise AVX2 runtime
/// detection decides. Read once per process (this sits under every matmul
/// call).
fn configured_backend() -> MatmulBackend {
    static CONFIGURED: OnceLock<MatmulBackend> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        let disabled = std::env::var("STONE_NO_SIMD")
            .map(|v| !v.trim().is_empty() && v.trim() != "0")
            .unwrap_or(false);
        if !disabled && simd_available() {
            MatmulBackend::Simd
        } else {
            MatmulBackend::Portable
        }
    })
}

/// The backend the dispatchers will hand to the tile loop: the scoped
/// override if one is installed, else the environment/detection choice.
pub fn active_backend() -> MatmulBackend {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => MatmulBackend::Portable,
        2 => MatmulBackend::Simd,
        _ => configured_backend(),
    }
}

/// Runs `f` with the microkernel backend pinned, restoring the previous
/// setting afterwards (also on panic). Process-wide, like
/// `stone_par::with_threads`; concurrent callers would race, so tests
/// serialize their use.
///
/// The override deliberately takes precedence over `STONE_NO_SIMD`: it is
/// a test/bench hook for comparing the two backends, so it must be able
/// to select [`MatmulBackend::Simd`] in an environment whose *default*
/// is portable. Tests honoring the env var as an operator kill-switch
/// should check it before requesting the SIMD backend.
///
/// # Panics
///
/// Panics when [`MatmulBackend::Simd`] is requested on a machine without
/// AVX2 ([`simd_available`] is `false`).
pub fn with_backend<R>(backend: MatmulBackend, f: impl FnOnce() -> R) -> R {
    assert!(
        backend != MatmulBackend::Simd || simd_available(),
        "SIMD backend requested but AVX2 is not available on this CPU"
    );
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let code = match backend {
        MatmulBackend::Portable => 1,
        MatmulBackend::Simd => 2,
    };
    let _restore = Restore(OVERRIDE.swap(code, Ordering::SeqCst));
    f()
}

/// Computes one [`TILE_ROWS`] × [`LANES`] output tile over the whole inner
/// dimension (`apack.len() / TILE_ROWS` steps) on the given backend.
///
/// `apack` and `bpanel` must describe the same number of steps.
#[inline]
pub fn tile(apack: &[f32], bpanel: &[f32], backend: MatmulBackend) -> Acc {
    debug_assert_eq!(apack.len() / TILE_ROWS, bpanel.len() / LANES);
    match backend {
        MatmulBackend::Portable => tile_portable(apack, bpanel),
        #[cfg(target_arch = "x86_64")]
        MatmulBackend::Simd => super::simd::tile(apack, bpanel),
        #[cfg(not(target_arch = "x86_64"))]
        MatmulBackend::Simd => unreachable!("SIMD backend cannot be selected off x86_64"),
    }
}

/// The portable tile loop: fixed-size lane arrays the compiler keeps in
/// vector registers. Multiply then add per lane — the bit-exact twin of the
/// AVX2 kernel.
fn tile_portable(apack: &[f32], bpanel: &[f32]) -> Acc {
    let mut acc: Acc = [[0.0; LANES]; TILE_ROWS];
    for (astep, bstep) in apack.chunks_exact(TILE_ROWS).zip(bpanel.chunks_exact(LANES)) {
        let bvec: [f32; LANES] = bstep.try_into().expect("chunk is exactly LANES wide");
        for (&a, accrow) in astep.iter().zip(&mut acc) {
            for (&b, lane) in bvec.iter().zip(accrow.iter_mut()) {
                *lane += a * b;
            }
        }
    }
    acc
}

/// `with_backend` installs a process-wide override, so tests that touch it
/// (here and in `super::tests`) serialize through this lock — cargo's
/// default test harness runs them concurrently on multicore machines.
#[cfg(test)]
pub(super) static BACKEND_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Poison-tolerant acquire: a failing backend test must not cascade.
#[cfg(test)]
pub(super) fn backend_test_lock() -> std::sync::MutexGuard<'static, ()> {
    BACKEND_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 - n as f32 / 2.0) * scale).collect()
    }

    #[test]
    fn portable_tile_matches_scalar_reference() {
        let kc = 13;
        let apack = seq(kc * TILE_ROWS, 0.25);
        let bpanel = seq(kc * LANES, -0.5);
        let acc = tile(&apack, &bpanel, MatmulBackend::Portable);
        for (r, accrow) in acc.iter().enumerate() {
            for (l, &got) in accrow.iter().enumerate() {
                let mut want = 0.0f32;
                for t in 0..kc {
                    want += apack[t * TILE_ROWS + r] * bpanel[t * LANES + l];
                }
                assert_eq!(got, want, "tile ({r},{l})");
            }
        }
    }

    #[test]
    fn simd_tile_is_bit_equal_to_portable() {
        if !simd_available() {
            return; // nothing to compare on this machine
        }
        let kc = 37;
        let apack = seq(kc * TILE_ROWS, 0.37);
        let bpanel = seq(kc * LANES, 0.73);
        let portable = tile(&apack, &bpanel, MatmulBackend::Portable);
        let simd = tile(&apack, &bpanel, MatmulBackend::Simd);
        assert_eq!(portable, simd);
    }

    #[test]
    fn empty_inner_dimension_yields_zero_tile() {
        let acc = tile(&[], &[], MatmulBackend::Portable);
        assert_eq!(acc, [[0.0; LANES]; TILE_ROWS]);
    }

    #[test]
    fn with_backend_restores_previous_choice() {
        let _g = backend_test_lock();
        let before = active_backend();
        with_backend(MatmulBackend::Portable, || {
            assert_eq!(active_backend(), MatmulBackend::Portable);
        });
        assert_eq!(active_backend(), before);
    }
}
