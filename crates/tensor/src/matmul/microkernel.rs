//! The register-tiled microkernel and its backend selection.
//!
//! One output tile is [`TILE_ROWS`] × [`LANES`] elements, held in a fixed
//! array of lane accumulators for the whole inner dimension. Per inner step
//! the kernel reads [`TILE_ROWS`] packed A values and one [`LANES`]-wide
//! packed B vector (see [`super::pack`]) and performs
//! `acc[r][l] += a[r] * b[l]` — a broadcast, a multiply and an add per row,
//! with no strided loads, no `!= 0.0` branches, and no horizontal
//! reductions.
//!
//! # Canonical accumulation order
//!
//! Every output element owns exactly one accumulator lane, updated at every
//! inner step in strictly increasing order. That order — the same order a
//! naive `for p { c[i][j] += a[i][p] * b[p][j] }` triple loop uses — is the
//! *canonical* accumulation order of the crate: the portable kernel, the
//! AVX2 kernel, the serial dispatch and every parallel row split all
//! produce it, which is what makes results bitwise identical across
//! backends and thread counts.
//!
//! # Backends
//!
//! * [`MatmulBackend::Portable`] — safe Rust over fixed-size lane arrays;
//!   the compiler vectorizes it for the baseline target.
//! * [`MatmulBackend::Simd`] — explicit AVX2 intrinsics
//!   ([`super::simd`]), selected at runtime when the CPU supports AVX2.
//! * [`MatmulBackend::Fma`] — the AVX2 loop with the multiply and add
//!   contracted into `vfmadd231ps`. **Opt-in only** (`STONE_FMA=1`):
//!   contraction skips the product's intermediate rounding, so it is a
//!   numerics change, never a silent default.
//!
//! `Portable` and `Simd` evaluate each lane as an IEEE-754
//! single-precision multiply followed by an add (no FMA contraction), so
//! their results are **bit-equal**, not merely close: `Simd` is an
//! execution strategy, never a numerics change. `Fma` keeps the canonical
//! accumulation *order* but fuses each update's rounding; its deviation
//! from the portable kernel is bounded by the envelope documented on the
//! variant. `STONE_NO_SIMD=1` forces `Portable` process-wide (and beats
//! `STONE_FMA`); [`super::with_backend`] overrides the choice in a scope
//! (tests, benches).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Output rows per register tile.
pub const TILE_ROWS: usize = 8;

/// Output columns per register tile (the SIMD lane width of one AVX2
/// `f32x8` vector; the portable kernel uses the same shape).
pub const LANES: usize = 8;

/// One microkernel invocation's accumulator tile.
pub type Acc = [[f32; LANES]; TILE_ROWS];

/// Which microkernel implementation executes the tile loop.
///
/// `Portable` and `Simd` produce bitwise-identical results; `Fma` is the
/// documented opt-in exception. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatmulBackend {
    /// Safe, compiler-vectorized lane arithmetic. Always available; forced
    /// by `STONE_NO_SIMD=1`.
    Portable,
    /// Explicit AVX2 intrinsics (`x86_64` with runtime AVX2 support only).
    Simd,
    /// AVX2 with fused multiply-add (`x86_64` with runtime AVX2+FMA
    /// support only), selected by `STONE_FMA=1`.
    ///
    /// Each accumulator update rounds once (after the fused `a·b + acc`)
    /// instead of twice (after the multiply, then after the add), so
    /// every element differs from the portable result by at most one
    /// rounding per inner step along the *same* accumulation order:
    /// `|fma - portable| ≤ k · ε · Σₚ|a[i,p]|·|b[p,j]|` with
    /// `ε = f32::EPSILON` and `k` the inner dimension — in practice a few
    /// ulps of the absolute-value dot product. The proptest in
    /// `crates/tensor/tests/properties.rs` pins this envelope;
    /// the figure benches report the (empty) set of localization
    /// predictions it changes.
    Fma,
}

/// Process-wide scoped override installed by [`super::with_backend`];
/// 0 = none, 1 = portable, 2 = SIMD, 3 = FMA.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Whether the explicit SIMD microkernel can run on this machine.
#[must_use]
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the fused-multiply-add microkernel can run on this machine
/// (AVX2 *and* FMA; the kernel uses both instruction sets).
#[must_use]
pub fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Pure backend-selection policy, split out so tests can pin every
/// combination without faking CPUID or the environment:
///
/// 1. `STONE_NO_SIMD` beats everything — it is the operator kill-switch,
///    so `STONE_FMA=1 STONE_NO_SIMD=1` runs portable;
/// 2. `STONE_FMA=1` selects [`MatmulBackend::Fma`] only when the CPU has
///    both AVX2 and FMA — otherwise it is a **no-op**, falling through to
///    the ordinary detection (never a panic: the env var must be safe to
///    set fleet-wide);
/// 3. plain AVX2 detection picks [`MatmulBackend::Simd`];
/// 4. else [`MatmulBackend::Portable`].
fn backend_from_flags(no_simd: bool, fma_requested: bool, avx2: bool, fma: bool) -> MatmulBackend {
    if no_simd {
        MatmulBackend::Portable
    } else if fma_requested && avx2 && fma {
        MatmulBackend::Fma
    } else if avx2 {
        MatmulBackend::Simd
    } else {
        MatmulBackend::Portable
    }
}

/// `true` when the env var is set to anything but `0`/empty.
fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| !v.trim().is_empty() && v.trim() != "0").unwrap_or(false)
}

/// The backend chosen from the environment via [`backend_from_flags`]:
/// `STONE_NO_SIMD=1` forces [`MatmulBackend::Portable`], `STONE_FMA=1`
/// opts into [`MatmulBackend::Fma`] where the CPU supports it, otherwise
/// AVX2 runtime detection decides. Read once per process (this sits under
/// every matmul call).
fn configured_backend() -> MatmulBackend {
    static CONFIGURED: OnceLock<MatmulBackend> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        backend_from_flags(
            env_flag("STONE_NO_SIMD"),
            env_flag("STONE_FMA"),
            simd_available(),
            fma_available(),
        )
    })
}

/// The backend the dispatchers will hand to the tile loop: the scoped
/// override if one is installed, else the environment/detection choice.
pub fn active_backend() -> MatmulBackend {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => MatmulBackend::Portable,
        2 => MatmulBackend::Simd,
        3 => MatmulBackend::Fma,
        _ => configured_backend(),
    }
}

/// Runs `f` with the microkernel backend pinned, restoring the previous
/// setting afterwards (also on panic). Process-wide, like
/// `stone_par::with_threads`; concurrent callers would race, so tests
/// serialize their use.
///
/// The override deliberately takes precedence over `STONE_NO_SIMD`: it is
/// a test/bench hook for comparing the two backends, so it must be able
/// to select [`MatmulBackend::Simd`] in an environment whose *default*
/// is portable. Tests honoring the env var as an operator kill-switch
/// should check it before requesting the SIMD backend.
///
/// # Panics
///
/// Panics when [`MatmulBackend::Simd`] is requested on a machine without
/// AVX2 ([`simd_available`] is `false`), or [`MatmulBackend::Fma`] on one
/// without AVX2+FMA ([`fma_available`] is `false`).
pub fn with_backend<R>(backend: MatmulBackend, f: impl FnOnce() -> R) -> R {
    assert!(
        backend != MatmulBackend::Simd || simd_available(),
        "SIMD backend requested but AVX2 is not available on this CPU"
    );
    assert!(
        backend != MatmulBackend::Fma || fma_available(),
        "FMA backend requested but AVX2+FMA is not available on this CPU"
    );
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let code = match backend {
        MatmulBackend::Portable => 1,
        MatmulBackend::Simd => 2,
        MatmulBackend::Fma => 3,
    };
    let _restore = Restore(OVERRIDE.swap(code, Ordering::SeqCst));
    f()
}

/// Computes one [`TILE_ROWS`] × [`LANES`] output tile over the whole inner
/// dimension (`apack.len() / TILE_ROWS` steps) on the given backend.
///
/// `apack` and `bpanel` must describe the same number of steps.
#[inline]
pub fn tile(apack: &[f32], bpanel: &[f32], backend: MatmulBackend) -> Acc {
    debug_assert_eq!(apack.len() / TILE_ROWS, bpanel.len() / LANES);
    match backend {
        MatmulBackend::Portable => tile_portable(apack, bpanel),
        #[cfg(target_arch = "x86_64")]
        MatmulBackend::Simd => super::simd::tile(apack, bpanel),
        #[cfg(target_arch = "x86_64")]
        MatmulBackend::Fma => super::simd::tile_fma(apack, bpanel),
        #[cfg(not(target_arch = "x86_64"))]
        MatmulBackend::Simd | MatmulBackend::Fma => {
            unreachable!("SIMD/FMA backends cannot be selected off x86_64")
        }
    }
}

/// The portable tile loop: fixed-size lane arrays the compiler keeps in
/// vector registers. Multiply then add per lane — the bit-exact twin of the
/// AVX2 kernel.
fn tile_portable(apack: &[f32], bpanel: &[f32]) -> Acc {
    let mut acc: Acc = [[0.0; LANES]; TILE_ROWS];
    for (astep, bstep) in apack.chunks_exact(TILE_ROWS).zip(bpanel.chunks_exact(LANES)) {
        let bvec: [f32; LANES] = bstep.try_into().expect("chunk is exactly LANES wide");
        for (&a, accrow) in astep.iter().zip(&mut acc) {
            for (&b, lane) in bvec.iter().zip(accrow.iter_mut()) {
                *lane += a * b;
            }
        }
    }
    acc
}

/// `with_backend` installs a process-wide override, so tests that touch it
/// (here and in `super::tests`) serialize through this lock — cargo's
/// default test harness runs them concurrently on multicore machines.
#[cfg(test)]
pub(super) static BACKEND_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Poison-tolerant acquire: a failing backend test must not cascade.
#[cfg(test)]
pub(super) fn backend_test_lock() -> std::sync::MutexGuard<'static, ()> {
    BACKEND_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 - n as f32 / 2.0) * scale).collect()
    }

    #[test]
    fn portable_tile_matches_scalar_reference() {
        let kc = 13;
        let apack = seq(kc * TILE_ROWS, 0.25);
        let bpanel = seq(kc * LANES, -0.5);
        let acc = tile(&apack, &bpanel, MatmulBackend::Portable);
        for (r, accrow) in acc.iter().enumerate() {
            for (l, &got) in accrow.iter().enumerate() {
                let mut want = 0.0f32;
                for t in 0..kc {
                    want += apack[t * TILE_ROWS + r] * bpanel[t * LANES + l];
                }
                assert_eq!(got, want, "tile ({r},{l})");
            }
        }
    }

    #[test]
    fn simd_tile_is_bit_equal_to_portable() {
        if !simd_available() {
            return; // nothing to compare on this machine
        }
        let kc = 37;
        let apack = seq(kc * TILE_ROWS, 0.37);
        let bpanel = seq(kc * LANES, 0.73);
        let portable = tile(&apack, &bpanel, MatmulBackend::Portable);
        let simd = tile(&apack, &bpanel, MatmulBackend::Simd);
        assert_eq!(portable, simd);
    }

    #[test]
    fn fma_tile_is_within_one_contraction_of_portable() {
        if !fma_available() {
            return; // nothing to compare on this machine
        }
        let kc = 37;
        let apack = seq(kc * TILE_ROWS, 0.37);
        let bpanel = seq(kc * LANES, 0.73);
        let portable = tile(&apack, &bpanel, MatmulBackend::Portable);
        let fma = tile(&apack, &bpanel, MatmulBackend::Fma);
        for (r, (prow, frow)) in portable.iter().zip(&fma).enumerate() {
            for (l, (&p, &f)) in prow.iter().zip(frow).enumerate() {
                // k·ε·Σ|a||b| per element (see MatmulBackend::Fma).
                let abs_dot: f32 =
                    (0..kc).map(|t| (apack[t * TILE_ROWS + r] * bpanel[t * LANES + l]).abs()).sum();
                let bound = kc as f32 * f32::EPSILON * abs_dot;
                assert!((p - f).abs() <= bound, "tile ({r},{l}): |{p} - {f}| > {bound}");
            }
        }
    }

    #[test]
    fn empty_inner_dimension_yields_zero_tile() {
        let acc = tile(&[], &[], MatmulBackend::Portable);
        assert_eq!(acc, [[0.0; LANES]; TILE_ROWS]);
    }

    /// The `STONE_FMA` no-op contract: the flag must be safe to set on any
    /// machine and in any combination, so every branch of the selection
    /// policy is pinned here without touching real CPUID or env state.
    #[test]
    fn backend_flag_policy_covers_every_combination() {
        use MatmulBackend::{Fma, Portable, Simd};
        // The kill-switch beats everything, including an FMA request.
        for fma_req in [false, true] {
            for avx2 in [false, true] {
                for fma in [false, true] {
                    assert_eq!(backend_from_flags(true, fma_req, avx2, fma), Portable);
                }
            }
        }
        // STONE_FMA=1 engages only with full hardware support…
        assert_eq!(backend_from_flags(false, true, true, true), Fma);
        // …and is a no-op (plain detection) when AVX2 or FMA is missing.
        assert_eq!(backend_from_flags(false, true, true, false), Simd);
        assert_eq!(backend_from_flags(false, true, false, false), Portable);
        assert_eq!(backend_from_flags(false, true, false, true), Portable);
        // Without the flag: ordinary AVX2 detection, FMA never selected.
        assert_eq!(backend_from_flags(false, false, true, true), Simd);
        assert_eq!(backend_from_flags(false, false, true, false), Simd);
        assert_eq!(backend_from_flags(false, false, false, true), Portable);
        assert_eq!(backend_from_flags(false, false, false, false), Portable);
    }

    #[test]
    fn with_backend_restores_previous_choice() {
        let _g = backend_test_lock();
        let before = active_backend();
        with_backend(MatmulBackend::Portable, || {
            assert_eq!(active_backend(), MatmulBackend::Portable);
        });
        assert_eq!(active_backend(), before);
    }
}
