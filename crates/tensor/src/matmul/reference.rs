//! Scalar reference kernels — the pre-tiling (PR 3) blocked implementations.
//!
//! These are **not** on any hot path: the dispatchers always run the
//! register-tiled microkernels. They exist so that
//!
//! * `crates/bench/benches/micro.rs` can print scalar-vs-tiled pairs and
//!   keep the per-core speedup visible in bench output, and
//! * the property tests have an independently-written oracle that shares
//!   no packing or tiling code with the kernels under test.
//!
//! They produce the same canonical accumulation order as the tiled kernels
//! (each output element summed over a strictly increasing inner index with
//! a single accumulator), with one historical difference kept for fidelity
//! to the PR 3 code: the `A · B` and `Aᵀ · B` kernels skip exactly-zero A
//! values, which the branch-free tiled kernels do not. On finite data the
//! skip is a no-op numerically; tests therefore avoid exact zeros or
//! compare with the triple loop directly.

use crate::Tensor;

/// Rows of `B` (resp. columns of `A`) per cache panel in the blocked
/// scalar kernels.
const K_BLOCK: usize = 64;

/// Scalar blocked `A · B` (the PR 3 serial kernel). Bench baseline and
/// test oracle only — see the module docs.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the inner dimensions differ.
#[must_use]
pub fn matmul_scalar(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (bk, n) = (b.rows(), b.cols());
    assert_eq!(k, bk, "matmul inner dimensions differ: {k} vs {bk}");
    let mut c = Tensor::zeros(vec![m, n]);
    if c.is_empty() {
        return c;
    }
    let bd = b.as_slice();
    let cd = c.as_mut_slice();
    for p0 in (0..k).step_by(K_BLOCK) {
        let p1 = (p0 + K_BLOCK).min(k);
        for ri in 0..m {
            let arow = a.row(ri);
            let crow = &mut cd[ri * n..(ri + 1) * n];
            for p in p0..p1 {
                let av = arow[p];
                if av != 0.0 {
                    let brow = &bd[p * n..(p + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }
    c
}

/// Scalar `Aᵀ · B` (the PR 3 serial kernel). Bench baseline and test
/// oracle only.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the leading dimensions
/// differ.
#[must_use]
pub fn matmul_at_b_scalar(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (bm, n) = (b.rows(), b.cols());
    assert_eq!(m, bm, "matmul_at_b leading dimensions differ: {m} vs {bm}");
    let mut c = Tensor::zeros(vec![k, n]);
    if c.is_empty() {
        return c;
    }
    let cd = c.as_mut_slice();
    for i in 0..m {
        let arow = a.row(i);
        let brow = b.row(i);
        for (pi, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let crow = &mut cd[pi * n..(pi + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
    c
}

/// Scalar `A · Bᵀ` (the PR 3 serial kernel). Bench baseline and test
/// oracle only.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the trailing dimensions
/// differ.
#[must_use]
pub fn matmul_a_bt_scalar(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, bk) = (b.rows(), b.cols());
    assert_eq!(k, bk, "matmul_a_bt trailing dimensions differ: {k} vs {bk}");
    let mut c = Tensor::zeros(vec![m, n]);
    if c.is_empty() {
        return c;
    }
    let cd = c.as_mut_slice();
    for ri in 0..m {
        let arow = a.row(ri);
        let crow = &mut cd[ri * n..(ri + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = b.row(j);
            *cv = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
        }
    }
    c
}
