//! Panel packing for the register-tiled matmul kernels.
//!
//! The microkernel (see [`super::microkernel`]) consumes two packed
//! operands per inner step `t`:
//!
//! * an **A-side tile** of [`TILE_ROWS`] values — one per output row of the
//!   register tile: `apack[t * TILE_ROWS + r]`;
//! * a **B-side panel** of [`LANES`] values — one per output column of the
//!   register tile: `bpanel[t * LANES + l]`.
//!
//! Packing turns every source layout the three matmul variants need —
//! row-major rows, row-major columns, and transposed rows — into those two
//! contiguous streams, so the microkernel's inner loop never issues a
//! strided load. Ragged edges (a tile or panel that sticks out past the
//! matrix) are zero-padded: the padded lanes accumulate `a · 0` products
//! that the store step discards, which keeps the inner loop branch-free.
//!
//! Only two primitives are needed. Reading `width` *consecutive* values per
//! step is [`pack_step_major`]; reading one value from each of `width`
//! consecutive *rows* is [`pack_width_major`] (a fused transpose). Each
//! matmul variant is some combination of the two:
//!
//! | product | A-side pack | B-side pack |
//! | --- | --- | --- |
//! | `A · B` | `pack_width_major` (tile rows of `A`) | `pack_step_major` (panel columns of `B`) |
//! | `Aᵀ · B` | `pack_step_major` (tile columns of `A`) | `pack_step_major` (panel columns of `B`) |
//! | `A · Bᵀ` | `pack_width_major` (tile rows of `A`) | `pack_width_major` (panel rows of `B`) |

use super::microkernel::LANES;

// The two pack widths coincide (`TILE_ROWS == LANES == 8`), so both
// primitives pack to a fixed width of `LANES` and serve either side.

/// Packs `width` **consecutive values per inner step**: for every step `t`
/// (one per `ld`-element row of `src`), copies
/// `src[t * ld + c0 .. t * ld + c0 + width]` to `dst[t * LANES ..]`,
/// zero-filling lanes `width..LANES`.
///
/// The number of steps is `dst.len() / LANES`.
///
/// # Panics
///
/// Panics (via slice indexing) when `src` is shorter than the last read or
/// `dst.len()` is not a multiple of [`LANES`].
pub fn pack_step_major(src: &[f32], ld: usize, c0: usize, width: usize, dst: &mut [f32]) {
    debug_assert!(width <= LANES);
    assert_eq!(dst.len() % LANES, 0, "packed panel length must be a whole number of lane groups");
    for (t, lane) in dst.chunks_exact_mut(LANES).enumerate() {
        let row = &src[t * ld + c0..t * ld + c0 + width];
        lane[..width].copy_from_slice(row);
        lane[width..].fill(0.0);
    }
}

/// Packs **one value per step from each of `width` consecutive rows** (a
/// fused transpose): for every step `t`, lane `w` of `dst[t * LANES ..]` is
/// `src[(r0 + w) * ld + t]`, zero-filling lanes `width..LANES`.
///
/// The number of steps is `dst.len() / LANES`.
///
/// # Panics
///
/// Panics (via slice indexing) when `src` is shorter than the last read or
/// `dst.len()` is not a multiple of [`LANES`].
pub fn pack_width_major(src: &[f32], ld: usize, r0: usize, width: usize, dst: &mut [f32]) {
    debug_assert!(width <= LANES);
    assert_eq!(dst.len() % LANES, 0, "packed panel length must be a whole number of lane groups");
    let steps = dst.len() / LANES;
    dst.fill(0.0);
    for w in 0..width {
        let row = &src[(r0 + w) * ld..(r0 + w) * ld + steps];
        for (t, &v) in row.iter().enumerate() {
            dst[t * LANES + w] = v;
        }
    }
}

/// A whole B operand packed into [`LANES`]-column panels, shared read-only
/// across the worker threads of one dispatch.
///
/// Panel `jp` covers output columns `jp * LANES ..` and stores `steps`
/// packed steps contiguously, so the microkernel walks it linearly.
pub struct PackedPanels {
    data: Vec<f32>,
    steps: usize,
}

impl PackedPanels {
    /// Packs a `[steps, n]` row-major operand column-panel by column-panel
    /// (the B side of `A · B` and `Aᵀ · B`).
    #[must_use]
    pub fn from_rows(src: &[f32], steps: usize, n: usize) -> Self {
        let mut data = vec![0.0; n.div_ceil(LANES) * steps * LANES];
        for (jp, panel) in data.chunks_exact_mut(steps * LANES).enumerate() {
            let c0 = jp * LANES;
            pack_step_major(src, n, c0, LANES.min(n - c0), panel);
        }
        Self { data, steps }
    }

    /// Packs an `[n, steps]` row-major operand whose *rows* are output
    /// columns (the B side of `A · Bᵀ`), transposing as it packs.
    #[must_use]
    pub fn from_transposed_rows(src: &[f32], steps: usize, n: usize) -> Self {
        let mut data = vec![0.0; n.div_ceil(LANES) * steps * LANES];
        for (jp, panel) in data.chunks_exact_mut(steps * LANES).enumerate() {
            let r0 = jp * LANES;
            pack_width_major(src, steps, r0, LANES.min(n - r0), panel);
        }
        Self { data, steps }
    }

    /// The packed panel covering output columns `jp * LANES ..`.
    #[must_use]
    pub fn panel(&self, jp: usize) -> &[f32] {
        &self.data[jp * self.steps * LANES..(jp + 1) * self.steps * LANES]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_major_copies_rows_and_pads() {
        // src is 3 rows × 4 cols; pack columns 1..4 (width 3).
        let src: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let mut dst = vec![f32::NAN; 3 * LANES];
        pack_step_major(&src, 4, 1, 3, &mut dst);
        assert_eq!(&dst[..4], &[1.0, 2.0, 3.0, 0.0]);
        assert_eq!(&dst[LANES..LANES + 4], &[5.0, 6.0, 7.0, 0.0]);
        assert!(dst.iter().skip(3).step_by(LANES).all(|&v| v == 0.0), "pad lanes must be zero");
    }

    #[test]
    fn width_major_transposes_and_pads() {
        // src is 3 rows × 4 cols; pack rows 1..3 (width 2), 4 steps.
        let src: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let mut dst = vec![f32::NAN; 4 * LANES];
        pack_width_major(&src, 4, 1, 2, &mut dst);
        // Step t holds src[1][t], src[2][t], then zeros.
        for t in 0..4 {
            assert_eq!(dst[t * LANES], (4 + t) as f32);
            assert_eq!(dst[t * LANES + 1], (8 + t) as f32);
            assert!(dst[t * LANES + 2..(t + 1) * LANES].iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn packed_panels_cover_ragged_widths() {
        // 2 steps × 11 columns → two panels, second ragged (3 live lanes).
        let src: Vec<f32> = (0..22).map(|v| v as f32).collect();
        let p = PackedPanels::from_rows(&src, 2, 11);
        assert_eq!(p.panel(0)[..8], src[..8]);
        assert_eq!(&p.panel(1)[..3], &src[8..11]);
        assert!(p.panel(1)[3..8].iter().all(|&v| v == 0.0));
        // Second step of the ragged panel.
        assert_eq!(&p.panel(1)[8..11], &src[19..22]);
    }

    #[test]
    fn transposed_panels_match_explicit_transpose() {
        // src is 5 rows × 3 steps; panel 0 step t = column t of rows 0..5.
        let src: Vec<f32> = (0..15).map(|v| v as f32).collect();
        let p = PackedPanels::from_transposed_rows(&src, 3, 5);
        for t in 0..3 {
            for w in 0..5 {
                assert_eq!(p.panel(0)[t * LANES + w], src[w * 3 + t], "step {t} lane {w}");
            }
        }
    }
}
