//! # stone-tensor
//!
//! A minimal, dependency-light dense `f32` tensor and linear-algebra substrate
//! for the STONE indoor-localization reproduction.
//!
//! The crate provides exactly what the higher layers need and nothing more:
//!
//! * [`Tensor`] — an owned, row-major, arbitrary-rank dense tensor;
//! * register-tiled matrix products ([`matmul`], [`matmul_at_b`],
//!   [`matmul_a_bt`]) with packed panels, an AVX2 microkernel behind runtime
//!   detection (`STONE_NO_SIMD=1` forces the bit-identical portable
//!   fallback), and row-parallel dispatch;
//! * [`im2col`]/[`col2im`] lowering used by the convolution layers in
//!   `stone-nn`;
//! * seeded random fills (uniform and Box-Muller normal) in [`rng`];
//! * small dense solvers ([`linalg::solve`], [`linalg::ridge_regression`])
//!   used by the LT-KNN baseline's AP-imputation step.
//!
//! # Example
//!
//! ```
//! use stone_tensor::{matmul, Tensor};
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
//! let i = Tensor::eye(2);
//! assert_eq!(matmul(&a, &i).as_slice(), a.as_slice());
//! # Ok::<(), stone_tensor::TensorError>(())
//! ```

// Denied (not forbidden) so that exactly one module — `matmul::simd`, the
// AVX2 microkernel — can locally allow it; see that module's safety notes.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod error;
pub mod linalg;
mod matmul;
mod reduce;
pub mod rng;
mod tensor;

pub use conv::{col2im, col2im_from, im2col, im2col_into, Conv2dGeometry};
pub use error::TensorError;
pub use matmul::{
    fma_available, matmul, matmul_a_bt, matmul_a_bt_scalar, matmul_at_b, matmul_at_b_scalar,
    matmul_scalar, simd_available, with_backend, MatmulBackend, PAR_MIN_MACS,
};
pub use reduce::{argmax, mean_all, softmax_rows, sum_all, sum_axis0};
pub use tensor::Tensor;

/// Convenient result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
