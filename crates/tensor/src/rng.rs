//! Seeded random sampling helpers.
//!
//! The reproduction only depends on the `rand` crate; normally-distributed
//! samples are generated with the Box-Muller transform so `rand_distr` is not
//! required (see the dependency policy in `DESIGN.md`).

use rand::Rng;

use crate::Tensor;

/// Draws one sample from `N(mean, std²)` using the Box-Muller transform.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = stone_tensor::rng::normal(&mut rng, 0.0, 1.0);
/// assert!(x.is_finite());
/// ```
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f32, std: f32) -> f32 {
    // Box-Muller: u1 in (0, 1] so ln(u1) is finite.
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen::<f32>();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + std * mag * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fills a new tensor with independent samples from `N(mean, std²)`.
#[must_use]
pub fn normal_tensor<R: Rng + ?Sized>(
    rng: &mut R,
    shape: Vec<usize>,
    mean: f32,
    std: f32,
) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| normal(rng, mean, std)).collect();
    Tensor::from_vec(shape, data).expect("shape/product invariant holds by construction")
}

/// Fills a new tensor with independent samples from `U[lo, hi)`.
///
/// # Panics
///
/// Panics when `lo >= hi`.
#[must_use]
pub fn uniform_tensor<R: Rng + ?Sized>(rng: &mut R, shape: Vec<usize>, lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform_tensor requires lo < hi");
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("shape/product invariant holds by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| normal(&mut rng, 1.5, 2.0)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 1.5).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn normal_is_deterministic_per_seed() {
        let a: Vec<f32> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..8).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
        };
        let b: Vec<f32> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..8).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = uniform_tensor(&mut rng, vec![1000], -0.25, 0.75);
        assert!(t.as_slice().iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    fn tensor_fills_have_requested_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(normal_tensor(&mut rng, vec![2, 3], 0.0, 1.0).shape(), &[2, 3]);
        assert_eq!(uniform_tensor(&mut rng, vec![4], 0.0, 1.0).shape(), &[4]);
    }
}
