//! `im2col`/`col2im` lowering for 2-D convolutions.
//!
//! The convolution layers in `stone-nn` lower each sample of an NCHW batch
//! to a column matrix and express the convolution as a single matrix product
//! (the standard im2col trick). [`col2im`] is the exact adjoint scatter-add
//! used for input gradients.

use crate::{Result, Tensor, TensorError};

/// Static geometry of a 2-D "valid" (no padding) convolution.
///
/// # Example
///
/// ```
/// use stone_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(1, 8, 8, 2, 2, 1)?;
/// assert_eq!((g.out_h, g.out_w), (7, 7));
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Computes the output geometry of a valid convolution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when the kernel is larger
    /// than the input, or any dimension/stride is zero.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
    ) -> Result<Self> {
        if channels == 0 || in_h == 0 || in_w == 0 {
            return Err(TensorError::InvalidDimension { what: "zero-sized convolution input" });
        }
        if kernel_h == 0 || kernel_w == 0 {
            return Err(TensorError::InvalidDimension { what: "zero-sized convolution kernel" });
        }
        if stride == 0 {
            return Err(TensorError::InvalidDimension { what: "zero convolution stride" });
        }
        if kernel_h > in_h || kernel_w > in_w {
            return Err(TensorError::InvalidDimension { what: "kernel larger than input" });
        }
        Ok(Self {
            channels,
            in_h,
            in_w,
            kernel_h,
            kernel_w,
            stride,
            out_h: (in_h - kernel_h) / stride + 1,
            out_w: (in_w - kernel_w) / stride + 1,
        })
    }

    /// Number of rows of the column matrix: `channels * kernel_h * kernel_w`.
    #[must_use]
    pub fn col_rows(&self) -> usize {
        self.channels * self.kernel_h * self.kernel_w
    }

    /// Number of columns of the column matrix: `out_h * out_w`.
    #[must_use]
    pub fn col_cols(&self) -> usize {
        self.out_h * self.out_w
    }
}

/// Lowers one CHW sample (a contiguous slice of length
/// `channels * in_h * in_w`) to its im2col matrix of shape
/// `[col_rows, col_cols]`.
///
/// Row layout: `c * kh * kw + ki * kw + kj`; column layout: `oh * out_w + ow`.
///
/// # Panics
///
/// Panics when `sample` does not have exactly `channels * in_h * in_w`
/// elements.
#[must_use]
pub fn im2col(sample: &[f32], g: &Conv2dGeometry) -> Tensor {
    let mut out = Tensor::zeros(vec![g.col_rows(), g.col_cols()]);
    im2col_into(sample, g, out.as_mut_slice(), g.col_cols(), 0);
    out
}

/// Lowers one CHW sample into columns `[col0, col0 + col_cols)` of a wider
/// `[col_rows, dst_cols]` row-major destination.
///
/// This is how a whole NCHW batch is lowered into **one** column matrix
/// (sample `n` at `col0 = n * col_cols`), so a conv layer issues a single
/// `[out_channels, batch · col_cols]` product instead of `batch` small
/// ones — the batched path of `stone_nn::Conv2d`.
///
/// # Panics
///
/// Panics when `sample` does not match the geometry, `dst` is not
/// `col_rows * dst_cols` long, or the column window overruns `dst_cols`.
pub fn im2col_into(
    sample: &[f32],
    g: &Conv2dGeometry,
    dst: &mut [f32],
    dst_cols: usize,
    col0: usize,
) {
    assert_eq!(
        sample.len(),
        g.channels * g.in_h * g.in_w,
        "im2col sample length must match geometry"
    );
    assert_eq!(dst.len(), g.col_rows() * dst_cols, "im2col destination length mismatch");
    assert!(col0 + g.col_cols() <= dst_cols, "im2col column window overruns destination");
    for c in 0..g.channels {
        let plane = &sample[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ki in 0..g.kernel_h {
            for kj in 0..g.kernel_w {
                let row = c * g.kernel_h * g.kernel_w + ki * g.kernel_w + kj;
                let dstrow = &mut dst[row * dst_cols + col0..row * dst_cols + col0 + g.col_cols()];
                for oh in 0..g.out_h {
                    let src_row = oh * g.stride + ki;
                    let src = &plane[src_row * g.in_w..(src_row + 1) * g.in_w];
                    for ow in 0..g.out_w {
                        dstrow[oh * g.out_w + ow] = src[ow * g.stride + kj];
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-adds a column-matrix gradient back onto a
/// CHW gradient buffer.
///
/// # Panics
///
/// Panics when `grad_cols` does not have shape `[col_rows, col_cols]` or
/// `out` does not have exactly `channels * in_h * in_w` elements.
pub fn col2im(grad_cols: &Tensor, g: &Conv2dGeometry, out: &mut [f32]) {
    assert_eq!(grad_cols.shape(), &[g.col_rows(), g.col_cols()], "col2im gradient shape mismatch");
    col2im_from(grad_cols, g, 0, out);
}

/// Adjoint scatter-add reading columns `[col0, col0 + col_cols)` of a wider
/// `[col_rows, dst_cols]` gradient matrix — the inverse windowing of
/// [`im2col_into`], used to unbatch one sample's input gradient from a
/// whole-batch `dcols` product.
///
/// # Panics
///
/// Panics when `grad_cols` is not rank 2 with `col_rows` rows, the column
/// window overruns it, or `out` does not have exactly
/// `channels * in_h * in_w` elements.
pub fn col2im_from(grad_cols: &Tensor, g: &Conv2dGeometry, col0: usize, out: &mut [f32]) {
    assert_eq!(grad_cols.rows(), g.col_rows(), "col2im gradient row count mismatch");
    assert!(col0 + g.col_cols() <= grad_cols.cols(), "col2im column window overruns gradient");
    assert_eq!(out.len(), g.channels * g.in_h * g.in_w, "col2im output length mismatch");
    for c in 0..g.channels {
        let plane = &mut out[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ki in 0..g.kernel_h {
            for kj in 0..g.kernel_w {
                let row = c * g.kernel_h * g.kernel_w + ki * g.kernel_w + kj;
                let src = &grad_cols.row(row)[col0..col0 + g.col_cols()];
                for oh in 0..g.out_h {
                    let dst_row = oh * g.stride + ki;
                    for ow in 0..g.out_w {
                        plane[dst_row * g.in_w + ow * g.stride + kj] += src[oh * g.out_w + ow];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_valid_conv() {
        let g = Conv2dGeometry::new(3, 8, 8, 2, 2, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (7, 7));
        assert_eq!(g.col_rows(), 3 * 4);
        assert_eq!(g.col_cols(), 49);
    }

    #[test]
    fn geometry_with_stride() {
        let g = Conv2dGeometry::new(1, 6, 6, 2, 2, 2).unwrap();
        assert_eq!((g.out_h, g.out_w), (3, 3));
    }

    #[test]
    fn geometry_rejects_bad_inputs() {
        assert!(Conv2dGeometry::new(0, 4, 4, 2, 2, 1).is_err());
        assert!(Conv2dGeometry::new(1, 4, 4, 0, 2, 1).is_err());
        assert!(Conv2dGeometry::new(1, 4, 4, 2, 2, 0).is_err());
        assert!(Conv2dGeometry::new(1, 1, 1, 2, 2, 1).is_err());
    }

    #[test]
    fn im2col_known_2x2() {
        // 1 channel, 3x3 input, 2x2 kernel, stride 1 -> 2x2 output.
        let g = Conv2dGeometry::new(1, 3, 3, 2, 2, 1).unwrap();
        let x: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let cols = im2col(&x, &g);
        assert_eq!(cols.shape(), &[4, 4]);
        // Rows are kernel positions (ki,kj); columns are output positions.
        assert_eq!(cols.row(0), &[1., 2., 4., 5.]); // top-left taps
        assert_eq!(cols.row(1), &[2., 3., 5., 6.]); // top-right taps
        assert_eq!(cols.row(2), &[4., 5., 7., 8.]); // bottom-left taps
        assert_eq!(cols.row(3), &[5., 6., 8., 9.]); // bottom-right taps
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        // Direct convolution vs im2col+matmul for random-ish data.
        let g = Conv2dGeometry::new(2, 4, 5, 2, 3, 1).unwrap();
        let x: Vec<f32> =
            (0..g.channels * g.in_h * g.in_w).map(|i| (i as f32 * 0.37).sin()).collect();
        let w: Vec<f32> = (0..g.col_rows()).map(|i| (i as f32 * 0.11).cos()).collect();

        let cols = im2col(&x, &g);
        let wt = Tensor::from_vec(vec![1, g.col_rows()], w.clone()).unwrap();
        let y = crate::matmul(&wt, &cols);

        for oh in 0..g.out_h {
            for ow in 0..g.out_w {
                let mut acc = 0.0f32;
                for c in 0..g.channels {
                    for ki in 0..g.kernel_h {
                        for kj in 0..g.kernel_w {
                            let xv = x[c * g.in_h * g.in_w + (oh + ki) * g.in_w + (ow + kj)];
                            let wv = w[c * g.kernel_h * g.kernel_w + ki * g.kernel_w + kj];
                            acc += xv * wv;
                        }
                    }
                }
                let got = y.at2(0, oh * g.out_w + ow);
                assert!((acc - got).abs() < 1e-4, "mismatch at ({oh},{ow}): {acc} vs {got}");
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y (adjoint property).
        let g = Conv2dGeometry::new(2, 5, 4, 2, 2, 1).unwrap();
        let x: Vec<f32> =
            (0..g.channels * g.in_h * g.in_w).map(|i| (i as f32 * 0.7).sin()).collect();
        let ydata: Vec<f32> =
            (0..g.col_rows() * g.col_cols()).map(|i| (i as f32 * 0.3).cos()).collect();
        let y = Tensor::from_vec(vec![g.col_rows(), g.col_cols()], ydata).unwrap();

        let ax = im2col(&x, &g);
        let lhs: f32 = ax.as_slice().iter().zip(y.as_slice()).map(|(&a, &b)| a * b).sum();

        let mut aty = vec![0.0f32; x.len()];
        col2im(&y, &g, &mut aty);
        let rhs: f32 = x.iter().zip(&aty).map(|(&a, &b)| a * b).sum();

        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_accumulates_into_existing_buffer() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 2, 1).unwrap();
        let y = Tensor::ones(vec![g.col_rows(), g.col_cols()]);
        let mut out = vec![1.0f32; 9];
        col2im(&y, &g, &mut out);
        // Center pixel participates in all 4 windows at all 4 kernel taps once
        // each = 4 contributions, plus the existing 1.0.
        assert_eq!(out[4], 5.0);
        // Corner pixel participates once.
        assert_eq!(out[0], 2.0);
    }
}
