//! Small dense linear-algebra routines.
//!
//! These back the LT-KNN baseline's regression imputation of removed access
//! points: each missing AP's RSSI is predicted from still-visible APs with a
//! ridge-regularized least-squares fit, which reduces to a small dense solve.

use crate::{matmul_at_b, Result, Tensor, TensorError};

/// Solves the dense linear system `A x = b` with Gaussian elimination and
/// partial pivoting.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] when `a` is not rank 2,
/// [`TensorError::ShapeMismatch`] when `a` is not square or `b` has the wrong
/// length, and [`TensorError::SingularMatrix`] when no pivot above `1e-9` can
/// be found.
///
/// # Example
///
/// ```
/// use stone_tensor::{linalg, Tensor};
///
/// let a = Tensor::from_vec(vec![2, 2], vec![2.0, 1.0, 1.0, 3.0])?;
/// let x = linalg::solve(&a, &[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-5 && (x[1] - 1.4).abs() < 1e-5);
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
pub fn solve(a: &Tensor, b: &[f32]) -> Result<Vec<f32>> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, got: a.rank() });
    }
    let n = a.shape()[0];
    if a.shape()[1] != n || b.len() != n {
        return Err(TensorError::ShapeMismatch { left: a.shape().to_vec(), right: vec![b.len()] });
    }
    // Augmented matrix in f64 for stability of the elimination.
    let mut m: Vec<f64> = Vec::with_capacity(n * (n + 1));
    for (i, &rhs) in b.iter().enumerate() {
        m.extend(a.row(i).iter().map(|&v| v as f64));
        m.push(rhs as f64);
    }
    let w = n + 1;

    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if m[r * w + col].abs() > m[pivot * w + col].abs() {
                pivot = r;
            }
        }
        if m[pivot * w + col].abs() < 1e-9 {
            return Err(TensorError::SingularMatrix);
        }
        if pivot != col {
            for k in 0..w {
                m.swap(col * w + k, pivot * w + k);
            }
        }
        let pv = m[col * w + col];
        for r in (col + 1)..n {
            let factor = m[r * w + col] / pv;
            if factor != 0.0 {
                for k in col..w {
                    m[r * w + k] -= factor * m[col * w + k];
                }
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut acc = m[i * w + n];
        for j in (i + 1)..n {
            acc -= m[i * w + j] * x[j];
        }
        x[i] = acc / m[i * w + i];
    }
    Ok(x.into_iter().map(|v| v as f32).collect())
}

/// Fits ridge-regularized least squares: returns the `w` minimizing
/// `||X w - y||² + lambda ||w||²` for `x: [m, p]` and `y: [m]`.
///
/// A column of ones is **not** added automatically; callers wanting an
/// intercept should append a constant feature.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `y.len() != m`, and
/// [`TensorError::SingularMatrix`] when the regularized normal equations are
/// singular (only possible with `lambda == 0` and rank-deficient `X`).
///
/// # Example
///
/// ```
/// use stone_tensor::{linalg, Tensor};
///
/// // y = 2 a - b, noiseless.
/// let x = Tensor::from_vec(vec![4, 2], vec![1., 0., 0., 1., 1., 1., 2., 1.])?;
/// let y = [2.0, -1.0, 1.0, 3.0];
/// let w = linalg::ridge_regression(&x, &y, 1e-6)?;
/// assert!((w[0] - 2.0).abs() < 1e-3 && (w[1] + 1.0).abs() < 1e-3);
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
pub fn ridge_regression(x: &Tensor, y: &[f32], lambda: f32) -> Result<Vec<f32>> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, got: x.rank() });
    }
    let (m, p) = (x.rows(), x.cols());
    if y.len() != m {
        return Err(TensorError::ShapeMismatch { left: x.shape().to_vec(), right: vec![y.len()] });
    }
    // Normal equations: (XᵀX + λI) w = Xᵀ y.
    let mut xtx = matmul_at_b(x, x);
    for i in 0..p {
        let v = xtx.at2(i, i) + lambda;
        xtx.set2(i, i, v);
    }
    let mut xty = vec![0.0f32; p];
    for (i, &yv) in y.iter().enumerate() {
        let row = x.row(i);
        for (j, &v) in row.iter().enumerate() {
            xty[j] += v * yv;
        }
    }
    solve(&xtx, &xty)
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns `0.0` when either input has zero variance (a degenerate but
/// common case for always-missing APs).
///
/// # Panics
///
/// Panics when the slices have different lengths.
#[must_use]
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    let n = a.len() as f32;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f32>() / n;
    let mb = b.iter().sum::<f32>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= f32::EPSILON || vb <= f32::EPSILON {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let x = solve(&Tensor::eye(3), &[1., 2., 3.]).unwrap();
        assert_eq!(x, vec![1., 2., 3.]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Tensor::from_vec(vec![2, 2], vec![0., 1., 1., 0.]).unwrap();
        let x = solve(&a, &[5., 7.]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-6 && (x[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 2., 4.]).unwrap();
        assert_eq!(solve(&a, &[1., 2.]).unwrap_err(), TensorError::SingularMatrix);
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let a = Tensor::zeros(vec![2, 3]);
        assert!(solve(&a, &[1., 2.]).is_err());
        let b = Tensor::eye(2);
        assert!(solve(&b, &[1., 2., 3.]).is_err());
    }

    #[test]
    fn solve_matches_known_3x3() {
        let a = Tensor::from_vec(vec![3, 3], vec![2., 1., -1., -3., -1., 2., -2., 1., 2.]).unwrap();
        let x = solve(&a, &[8., -11., -3.]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-4);
        assert!((x[1] - 3.0).abs() < 1e-4);
        assert!((x[2] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn ridge_shrinks_toward_zero() {
        let x = Tensor::from_vec(vec![3, 1], vec![1., 2., 3.]).unwrap();
        let y = [2., 4., 6.];
        let w0 = ridge_regression(&x, &y, 1e-6).unwrap();
        let w1 = ridge_regression(&x, &y, 100.0).unwrap();
        assert!((w0[0] - 2.0).abs() < 1e-3);
        assert!(w1[0] < w0[0] && w1[0] > 0.0);
    }

    #[test]
    fn ridge_handles_collinear_features() {
        // Duplicated feature is rank-deficient; ridge must still solve.
        let x = Tensor::from_vec(vec![3, 2], vec![1., 1., 2., 2., 3., 3.]).unwrap();
        let y = [2., 4., 6.];
        let w = ridge_regression(&x, &y, 0.1).unwrap();
        // Weight mass splits between the two identical columns.
        assert!((w[0] - w[1]).abs() < 1e-4);
        assert!((w[0] + w[1] - 2.0).abs() < 0.1);
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1., 2., 3.], &[2., 4., 6.]) - 1.0).abs() < 1e-6);
        assert!((pearson(&[1., 2., 3.], &[-1., -2., -3.]) + 1.0).abs() < 1e-6);
        assert_eq!(pearson(&[1., 1., 1.], &[1., 2., 3.]), 0.0);
    }
}
