//! Dense matrix products.
//!
//! Three variants cover every product the backpropagation code needs without
//! ever materializing an explicit transpose:
//!
//! * [`matmul`]      — `C = A · B`
//! * [`matmul_at_b`] — `C = Aᵀ · B` (used for input gradients)
//! * [`matmul_a_bt`] — `C = A · Bᵀ` (used for weight gradients)
//!
//! # Execution model
//!
//! All three share the same structure: a cache-blocked serial kernel that
//! computes a contiguous *range of output rows*, and a dispatcher that
//! either runs that kernel once (small products) or partitions the output
//! rows across threads with [`stone_par::par_chunks`] (products above
//! [`PAR_MIN_MACS`] multiply-accumulates). Each output element is
//! accumulated in the same order on every path — inner dimension strictly
//! increasing — so the parallel result is **bitwise identical** to the
//! serial one at any thread count (`STONE_THREADS`, see
//! `docs/PERFORMANCE.md`).
//!
//! Within a kernel the loop order keeps contiguous rows hot: the `matmul`
//! kernel additionally walks the inner dimension in panels of [`K_BLOCK`]
//! rows of `B`, so a panel is reused across every output row of the block
//! before the next panel is touched.

use crate::Tensor;

/// Multiply-accumulate count (`m·k·n`) below which the dispatchers stay
/// serial: below this size thread spawn/join overhead (~tens of µs) exceeds
/// the compute being split.
pub const PAR_MIN_MACS: usize = 1 << 18;

/// Rows of `B` (resp. columns of `A`) per cache panel in the blocked
/// kernels.
const K_BLOCK: usize = 64;

/// Whether a product with `macs` total multiply-accumulates is worth
/// dispatching through the thread pool (which resolves the actual thread
/// count itself, capped by the number of output rows).
fn worth_threads(macs: usize) -> bool {
    macs >= PAR_MIN_MACS
}

/// `matmul` kernel for output rows `[r0, r0 + c_block.len() / n)`.
fn mm_kernel(a: &Tensor, b: &Tensor, c_block: &mut [f32], r0: usize) {
    let k = a.cols();
    let n = b.cols();
    let rows = c_block.len() / n;
    let bd = b.as_slice();
    for p0 in (0..k).step_by(K_BLOCK) {
        let p1 = (p0 + K_BLOCK).min(k);
        for ri in 0..rows {
            let arow = a.row(r0 + ri);
            let crow = &mut c_block[ri * n..(ri + 1) * n];
            for p in p0..p1 {
                let av = arow[p];
                if av != 0.0 {
                    let brow = &bd[p * n..(p + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }
}

/// `matmul_at_b` kernel for output rows `[p0, p0 + c_block.len() / n)`
/// (output row `p` is column `p` of `A`).
fn mm_at_b_kernel(a: &Tensor, b: &Tensor, c_block: &mut [f32], p0: usize) {
    let m = a.rows();
    let n = b.cols();
    let rows = c_block.len() / n;
    for i in 0..m {
        let arow = a.row(i);
        let brow = b.row(i);
        for pi in 0..rows {
            let av = arow[p0 + pi];
            if av != 0.0 {
                let crow = &mut c_block[pi * n..(pi + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `matmul_a_bt` kernel for output rows `[r0, r0 + c_block.len() / n)`.
fn mm_a_bt_kernel(a: &Tensor, b: &Tensor, c_block: &mut [f32], r0: usize) {
    let n = b.rows();
    let rows = c_block.len() / n;
    for ri in 0..rows {
        let arow = a.row(r0 + ri);
        let crow = &mut c_block[ri * n..(ri + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = b.row(j);
            *cv = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
        }
    }
}

/// Runs a row-range kernel over all of `c`, through the thread pool when
/// `parallel` (a 1-thread budget degrades to the serial call inside
/// `par_chunks`).
fn dispatch(c: &mut Tensor, parallel: bool, kernel: impl Fn(&mut [f32], usize) + Sync) {
    let n = c.cols();
    if c.is_empty() {
        return;
    }
    if parallel {
        stone_par::par_chunks(c.as_mut_slice(), n, |r0, block| kernel(block, r0));
    } else {
        kernel(c.as_mut_slice(), 0);
    }
}

/// Computes `A · B` for `A: [m, k]` and `B: [k, n]`.
///
/// Products with at least [`PAR_MIN_MACS`] multiply-accumulates are split
/// across threads by output row; the result is bitwise identical to the
/// serial path at any thread count.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use stone_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.])?;
/// let b = Tensor::from_vec(vec![2, 1], vec![5., 6.])?;
/// assert_eq!(matmul(&a, &b).as_slice(), &[17., 39.]);
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[must_use]
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (bk, n) = (b.rows(), b.cols());
    assert_eq!(k, bk, "matmul inner dimensions differ: {k} vs {bk}");
    let mut c = Tensor::zeros(vec![m, n]);
    dispatch(&mut c, worth_threads(m * k * n), |block, r0| mm_kernel(a, b, block, r0));
    c
}

/// Computes `Aᵀ · B` for `A: [m, k]` and `B: [m, n]`, yielding `[k, n]`.
///
/// Parallel above [`PAR_MIN_MACS`] multiply-accumulates, bitwise identical
/// to the serial path at any thread count.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the leading dimensions differ.
///
/// # Example
///
/// ```
/// use stone_tensor::{matmul, matmul_at_b, Tensor};
///
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::from_vec(vec![2, 2], vec![1., 0., 0., 1.])?;
/// assert_eq!(matmul_at_b(&a, &b), matmul(&a.transposed(), &b));
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[must_use]
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (bm, n) = (b.rows(), b.cols());
    assert_eq!(m, bm, "matmul_at_b leading dimensions differ: {m} vs {bm}");
    let mut c = Tensor::zeros(vec![k, n]);
    dispatch(&mut c, worth_threads(m * k * n), |block, p0| mm_at_b_kernel(a, b, block, p0));
    c
}

/// Computes `A · Bᵀ` for `A: [m, k]` and `B: [n, k]`, yielding `[m, n]`.
///
/// Parallel above [`PAR_MIN_MACS`] multiply-accumulates, bitwise identical
/// to the serial path at any thread count.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the trailing dimensions
/// differ.
///
/// # Example
///
/// ```
/// use stone_tensor::{matmul, matmul_a_bt, Tensor};
///
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::from_vec(vec![2, 3], vec![1., 1., 1., 2., 2., 2.])?;
/// assert_eq!(matmul_a_bt(&a, &b), matmul(&a, &b.transposed()));
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[must_use]
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, bk) = (b.rows(), b.cols());
    assert_eq!(k, bk, "matmul_a_bt trailing dimensions differ: {k} vs {bk}");
    let mut c = Tensor::zeros(vec![m, n]);
    dispatch(&mut c, worth_threads(m * k * n), |block, r0| mm_a_bt_kernel(a, b, block, r0));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small_known_values() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[3, 3], &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        assert_eq!(matmul(&a, &Tensor::eye(3)), a);
        assert_eq!(matmul(&Tensor::eye(3), &a), a);
    }

    #[test]
    fn matmul_zero_annihilates() {
        let a = t(&[2, 2], &[1., 2., 3., 4.]);
        let z = Tensor::zeros(vec![2, 2]);
        assert_eq!(matmul(&a, &z), z);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = t(&[3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 4], &[1., 0., 2., 0., 0., 1., 0., 2., 1., 1., 1., 1.]);
        assert_eq!(matmul_at_b(&a, &b), matmul(&a.transposed(), &b));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = t(&[3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[4, 2], &[1., 0., 0., 1., 1., 1., 2., 3.]);
        assert_eq!(matmul_a_bt(&a, &b), matmul(&a, &b.transposed()));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn rectangular_chain_shapes() {
        let a = Tensor::ones(vec![4, 5]);
        let b = Tensor::ones(vec![5, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[4, 2]);
        assert!(c.as_slice().iter().all(|&x| (x - 5.0).abs() < 1e-6));
    }

    #[test]
    fn degenerate_dimensions_yield_empty_or_zero() {
        // k = 0: the sum over an empty inner dimension is all zeros.
        let a = Tensor::zeros(vec![3, 0]);
        let b = Tensor::zeros(vec![0, 2]);
        assert_eq!(matmul(&a, &b), Tensor::zeros(vec![3, 2]));
        // n = 0: empty output.
        let a = Tensor::zeros(vec![3, 2]);
        let b = Tensor::zeros(vec![2, 0]);
        assert_eq!(matmul(&a, &b).shape(), &[3, 0]);
    }

    /// Deterministic pseudo-random matrix (no RNG dependency in unit tests).
    fn pseudo(shape: &[usize], salt: u32) -> Tensor {
        Tensor::from_fn(shape.to_vec(), |i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            (h % 2003) as f32 / 1001.5 - 1.0
        })
    }

    #[test]
    fn parallel_paths_are_bitwise_identical_to_serial() {
        // 96·80·72 = 552 960 MACs — above PAR_MIN_MACS, odd block splits.
        let a = pseudo(&[96, 80], 1);
        let b = pseudo(&[80, 72], 2);
        let at = pseudo(&[80, 96], 3);
        let bt = pseudo(&[72, 80], 4);
        let serial = stone_par::with_threads(1, || {
            (matmul(&a, &b), matmul_at_b(&at, &b), matmul_a_bt(&a, &bt))
        });
        for nt in [2, 3, 8] {
            let par = stone_par::with_threads(nt, || {
                (matmul(&a, &b), matmul_at_b(&at, &b), matmul_a_bt(&a, &bt))
            });
            assert_eq!(serial.0.as_slice(), par.0.as_slice(), "matmul, {nt} threads");
            assert_eq!(serial.1.as_slice(), par.1.as_slice(), "matmul_at_b, {nt} threads");
            assert_eq!(serial.2.as_slice(), par.2.as_slice(), "matmul_a_bt, {nt} threads");
        }
    }

    #[test]
    fn blocked_kernel_matches_naive_triple_loop() {
        let a = pseudo(&[67, 130], 5);
        let b = pseudo(&[130, 9], 6);
        let c = matmul(&a, &b);
        for i in 0..67 {
            for j in 0..9 {
                let mut acc = 0.0f32;
                for p in 0..130 {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                assert!((c.at2(i, j) - acc).abs() <= 1e-3 * acc.abs().max(1.0));
            }
        }
    }
}
