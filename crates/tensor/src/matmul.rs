//! Dense matrix products.
//!
//! Three variants cover every product the backpropagation code needs without
//! ever materializing an explicit transpose:
//!
//! * [`matmul`]      — `C = A · B`
//! * [`matmul_at_b`] — `C = Aᵀ · B` (used for input gradients)
//! * [`matmul_a_bt`] — `C = A · Bᵀ` (used for weight gradients)
//!
//! All three use cache-friendly loop orders over contiguous rows so the
//! compiler can autovectorize the inner loops; on the single-core target
//! machine this reaches a large fraction of scalar-SIMD peak for the small
//! matrices (hundreds of rows/cols) that the STONE encoder produces.

use crate::Tensor;

/// Computes `A · B` for `A: [m, k]` and `B: [k, n]`.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use stone_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.])?;
/// let b = Tensor::from_vec(vec![2, 1], vec![5., 6.])?;
/// assert_eq!(matmul(&a, &b).as_slice(), &[17., 39.]);
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[must_use]
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (bk, n) = (b.rows(), b.cols());
    assert_eq!(k, bk, "matmul inner dimensions differ: {k} vs {bk}");
    let mut c = Tensor::zeros(vec![m, n]);
    let bd = b.as_slice();
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (p, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let brow = &bd[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
    c
}

/// Computes `Aᵀ · B` for `A: [m, k]` and `B: [m, n]`, yielding `[k, n]`.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the leading dimensions differ.
///
/// # Example
///
/// ```
/// use stone_tensor::{matmul, matmul_at_b, Tensor};
///
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::from_vec(vec![2, 2], vec![1., 0., 0., 1.])?;
/// assert_eq!(matmul_at_b(&a, &b), matmul(&a.transposed(), &b));
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[must_use]
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (bm, n) = (b.rows(), b.cols());
    assert_eq!(m, bm, "matmul_at_b leading dimensions differ: {m} vs {bm}");
    let mut c = Tensor::zeros(vec![k, n]);
    let cd = c.as_mut_slice();
    for i in 0..m {
        let arow = a.row(i);
        let brow = b.row(i);
        for (p, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let crow = &mut cd[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
    c
}

/// Computes `A · Bᵀ` for `A: [m, k]` and `B: [n, k]`, yielding `[m, n]`.
///
/// # Panics
///
/// Panics when either operand is not rank 2 or the trailing dimensions
/// differ.
///
/// # Example
///
/// ```
/// use stone_tensor::{matmul, matmul_a_bt, Tensor};
///
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::from_vec(vec![2, 3], vec![1., 1., 1., 2., 2., 2.])?;
/// assert_eq!(matmul_a_bt(&a, &b), matmul(&a, &b.transposed()));
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[must_use]
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, bk) = (b.rows(), b.cols());
    assert_eq!(k, bk, "matmul_a_bt trailing dimensions differ: {k} vs {bk}");
    let mut c = Tensor::zeros(vec![m, n]);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = b.row(j);
            *cv = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small_known_values() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[3, 3], &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        assert_eq!(matmul(&a, &Tensor::eye(3)), a);
        assert_eq!(matmul(&Tensor::eye(3), &a), a);
    }

    #[test]
    fn matmul_zero_annihilates() {
        let a = t(&[2, 2], &[1., 2., 3., 4.]);
        let z = Tensor::zeros(vec![2, 2]);
        assert_eq!(matmul(&a, &z), z);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = t(&[3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 4], &[1., 0., 2., 0., 0., 1., 0., 2., 1., 1., 1., 1.]);
        assert_eq!(matmul_at_b(&a, &b), matmul(&a.transposed(), &b));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = t(&[3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[4, 2], &[1., 0., 0., 1., 1., 1., 2., 3.]);
        assert_eq!(matmul_a_bt(&a, &b), matmul(&a, &b.transposed()));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn rectangular_chain_shapes() {
        let a = Tensor::ones(vec![4, 5]);
        let b = Tensor::ones(vec![5, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[4, 2]);
        assert!(c.as_slice().iter().all(|&x| (x - 5.0).abs() < 1e-6));
    }
}
