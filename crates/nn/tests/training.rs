//! End-to-end training sanity checks: the library must be able to actually
//! learn, not just compute gradients.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_nn::{
    Adam, Conv2d, CrossEntropyLoss, Dense, Flatten, L2Normalize, Mode, MseLoss, Optimizer, Relu,
    Sequential, Sgd, TripletLoss,
};
use stone_tensor::Tensor;

fn train_step(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    x: &Tensor,
    grad_fn: impl Fn(&Tensor) -> (f32, Tensor),
    rng: &mut StdRng,
) -> f32 {
    let (out, caches) = net.forward_train(x, rng);
    let (loss, grad) = grad_fn(&out);
    let res = net.backward(&caches, &grad);
    let flat: Vec<Tensor> = res.param_grads.into_iter().flatten().collect();
    opt.step(&mut net.params_mut(), &flat);
    loss
}

#[test]
fn mlp_learns_xor() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = Sequential::new(vec![
        Box::new(Dense::new(2, 16, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(16, 1, &mut rng)),
    ]);
    let x = Tensor::from_vec(vec![4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
    let y = Tensor::from_vec(vec![4, 1], vec![0., 1., 1., 0.]).unwrap();
    let mut opt = Adam::with_lr(0.05);
    let mut last = f32::INFINITY;
    for _ in 0..400 {
        last = train_step(&mut net, &mut opt, &x, |out| MseLoss.loss(out, &y), &mut rng);
    }
    assert!(last < 0.01, "XOR loss did not converge: {last}");
    let pred = net.predict(&x);
    for (p, t) in pred.as_slice().iter().zip(y.as_slice()) {
        assert!((p - t).abs() < 0.2, "prediction {p} vs target {t}");
    }
}

#[test]
fn cnn_classifier_overfits_small_set() {
    // 3-class toy problem: patterns concentrated in different image regions.
    let mut rng = StdRng::seed_from_u64(3);
    let side = 6;
    let n_per_class = 4;
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for class in 0..3usize {
        for k in 0..n_per_class {
            let mut img = vec![0.0f32; side * side];
            for i in 0..side {
                for j in 0..side {
                    let hot = match class {
                        0 => i < 2,
                        1 => j < 2,
                        _ => i >= 4,
                    };
                    img[i * side + j] =
                        if hot { 0.8 + 0.02 * k as f32 } else { 0.05 * ((i + j) % 3) as f32 };
                }
            }
            data.extend_from_slice(&img);
            labels.push(class);
        }
    }
    let n = labels.len();
    let x = Tensor::from_vec(vec![n, 1, side, side], data).unwrap();

    let mut net = Sequential::new(vec![
        Box::new(Conv2d::new(1, 8, 2, 1, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(8 * 5 * 5, 3, &mut rng)),
    ]);
    let ce = CrossEntropyLoss::new();
    let mut opt = Adam::with_lr(0.01);
    for _ in 0..60 {
        let _ = train_step(&mut net, &mut opt, &x, |out| ce.loss(out, &labels), &mut rng);
    }
    let logits = net.predict(&x);
    let acc = ce.accuracy(&logits, &labels);
    assert!(acc > 0.9, "CNN failed to overfit toy set: accuracy {acc}");
}

#[test]
fn triplet_training_separates_two_clusters() {
    // Two classes of 4-d inputs; after training with triplet loss, same-class
    // embedding distances must be smaller than cross-class distances.
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = Sequential::new(vec![
        Box::new(Dense::new(4, 16, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(16, 3, &mut rng)),
        Box::new(L2Normalize::new()),
    ]);

    // Class prototypes with overlapping support so the task is non-trivial.
    let proto_a = [1.0f32, 0.8, 0.1, 0.0];
    let proto_b = [0.1f32, 0.0, 1.0, 0.9];
    let sample = |proto: &[f32; 4], rng: &mut StdRng| -> Vec<f32> {
        proto.iter().map(|&v| v + stone_tensor::rng::normal(rng, 0.0, 0.15)).collect()
    };

    let loss_fn = TripletLoss::new(0.3);
    let mut opt = Sgd::new(0.05, 0.9, 0.0);
    for _ in 0..250 {
        let batch = 8;
        let mut a = Vec::new();
        let mut p = Vec::new();
        let mut n = Vec::new();
        for i in 0..batch {
            let (pa, pb) = if i % 2 == 0 { (&proto_a, &proto_b) } else { (&proto_b, &proto_a) };
            a.extend(sample(pa, &mut rng));
            p.extend(sample(pa, &mut rng));
            n.extend(sample(pb, &mut rng));
        }
        let xa = Tensor::from_vec(vec![batch, 4], a).unwrap();
        let xp = Tensor::from_vec(vec![batch, 4], p).unwrap();
        let xn = Tensor::from_vec(vec![batch, 4], n).unwrap();

        let (ya, ca) = net.forward_train(&xa, &mut rng);
        let (yp, cp) = net.forward_train(&xp, &mut rng);
        let (yn, cn) = net.forward_train(&xn, &mut rng);
        let (_, grads) = loss_fn.loss(&ya, &yp, &yn);
        let mut back = net.backward(&ca, &grads.anchor);
        back.accumulate(&net.backward(&cp, &grads.positive));
        back.accumulate(&net.backward(&cn, &grads.negative));
        let flat: Vec<Tensor> = back.param_grads.into_iter().flatten().collect();
        opt.step(&mut net.params_mut(), &flat);
    }

    // Evaluate separation on fresh samples.
    let mut rng2 = StdRng::seed_from_u64(99);
    let embed =
        |v: Vec<f32>, net: &Sequential| net.predict(&Tensor::from_vec(vec![1, 4], v).unwrap());
    let mut same = 0.0;
    let mut diff = 0.0;
    let trials = 20;
    for _ in 0..trials {
        let a1 = embed(sample(&proto_a, &mut rng2), &net);
        let a2 = embed(sample(&proto_a, &mut rng2), &net);
        let b1 = embed(sample(&proto_b, &mut rng2), &net);
        same += a1.sq_distance(&a2);
        diff += a1.sq_distance(&b1);
    }
    same /= trials as f32;
    diff /= trials as f32;
    assert!(
        diff > same + 0.3,
        "triplet training failed to separate clusters: same {same:.3}, diff {diff:.3}"
    );
}

#[test]
fn embeddings_stay_on_unit_sphere_during_training() {
    let mut rng = StdRng::seed_from_u64(5);
    let net = Sequential::new(vec![
        Box::new(Dense::new(4, 8, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(8, 3, &mut rng)),
        Box::new(L2Normalize::new()),
    ]);
    let x = stone_tensor::rng::uniform_tensor(&mut rng, vec![6, 4], -1.0, 1.0);
    let y = net.forward(&x, Mode::Train, &mut rng);
    for i in 0..y.rows() {
        let norm: f32 = y.row(i).iter().map(|&v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "row {i} norm {norm}");
    }
}
