//! Numerical gradient checks for every layer in the crate.
//!
//! These are the ground-truth tests for the manual backpropagation: if a
//! layer's backward pass disagrees with central differences, everything
//! downstream (the STONE trainer, SCNN baseline, ...) silently degrades.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_nn::gradcheck::check_layer;
use stone_nn::{
    Conv2d, Dense, Dropout, Flatten, GaussianNoise, L2Normalize, LeakyRelu, Mode, Relu, Sigmoid,
    Softmax, Tanh,
};
use stone_tensor::{rng as trng, Tensor};

const EPS: f32 = 1e-3;
const TOL: f32 = 2e-2;

fn input(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    trng::uniform_tensor(&mut rng, shape, -1.0, 1.0)
}

#[test]
fn dense_gradients() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut layer = Dense::new(4, 3, &mut rng);
    let x = input(vec![5, 4], 1);
    let r = check_layer(&mut layer, &x, Mode::Infer, 42, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn conv2d_gradients() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut layer = Conv2d::new(2, 3, 2, 1, &mut rng);
    let x = input(vec![2, 2, 4, 4], 2);
    let r = check_layer(&mut layer, &x, Mode::Infer, 43, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn conv2d_stride2_gradients() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut layer = Conv2d::new(1, 2, 2, 2, &mut rng);
    let x = input(vec![1, 1, 6, 6], 3);
    let r = check_layer(&mut layer, &x, Mode::Infer, 44, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn relu_gradients() {
    // Shift the input away from the kink at 0 where the derivative is
    // undefined and the check would be meaningless.
    let mut x = input(vec![3, 4], 4);
    x.map_in_place(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
    let r = check_layer(&mut Relu::new(), &x, Mode::Infer, 45, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn leaky_relu_gradients() {
    let mut x = input(vec![3, 4], 5);
    x.map_in_place(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
    let r = check_layer(&mut LeakyRelu::new(0.2), &x, Mode::Infer, 46, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn sigmoid_gradients() {
    let x = input(vec![3, 4], 6);
    let r = check_layer(&mut Sigmoid::new(), &x, Mode::Infer, 47, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn tanh_gradients() {
    let x = input(vec![3, 4], 7);
    let r = check_layer(&mut Tanh::new(), &x, Mode::Infer, 48, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn dropout_train_gradients_with_fixed_mask() {
    // In Train mode the check reseeds the RNG before every forward pass, so
    // the mask is identical across evaluations and the function is
    // differentiable.
    let x = input(vec![4, 5], 8);
    let r = check_layer(&mut Dropout::new(0.4), &x, Mode::Train, 49, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn gaussian_noise_train_gradients() {
    let x = input(vec![4, 5], 9);
    let r = check_layer(&mut GaussianNoise::new(0.1), &x, Mode::Train, 50, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn flatten_gradients() {
    let x = input(vec![2, 3, 2, 2], 10);
    let r = check_layer(&mut Flatten::new(), &x, Mode::Infer, 51, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn l2_normalize_gradients() {
    // Keep inputs away from the origin where normalization is singular.
    let mut x = input(vec![3, 4], 11);
    x.map_in_place(|v| v + if v >= 0.0 { 0.5 } else { -0.5 });
    let r = check_layer(&mut L2Normalize::new(), &x, Mode::Infer, 52, EPS);
    assert!(r.within(TOL), "{r:?}");
}

#[test]
fn softmax_gradients() {
    let x = input(vec![3, 5], 12);
    let r = check_layer(&mut Softmax::new(), &x, Mode::Infer, 53, EPS);
    assert!(r.within(TOL), "{r:?}");
}
