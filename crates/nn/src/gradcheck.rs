//! Central-difference gradient checking.
//!
//! Each layer's analytic backward pass is validated against numerical
//! derivatives of the scalar probe `L(y) = Σ w ∘ y` for a fixed random `w`.
//! Stochastic layers are handled by reseeding the RNG before every forward
//! pass so that perturbed evaluations see identical noise/masks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_tensor::{rng as trng, Tensor};

use crate::layer::{Layer, Mode};

/// Outcome of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between numerical and analytic input
    /// gradients.
    pub max_input_err: f32,
    /// Largest absolute difference per parameter tensor.
    pub max_param_errs: Vec<f32>,
}

impl GradCheckReport {
    /// Returns `true` when every deviation is within `tol`.
    #[must_use]
    pub fn within(&self, tol: f32) -> bool {
        self.max_input_err <= tol && self.max_param_errs.iter().all(|&e| e <= tol)
    }
}

/// Checks a layer's backward pass at the given input.
///
/// `seed` fixes both the probe weights and the layer's internal sampling so
/// the loss surface is deterministic. `eps` is the central-difference step.
///
/// # Panics
///
/// Panics when the layer mutates shapes inconsistently between calls (which
/// would itself be a bug worth surfacing loudly in tests).
pub fn check_layer<L: Layer>(
    layer: &mut L,
    input: &Tensor,
    mode: Mode,
    seed: u64,
    eps: f32,
) -> GradCheckReport {
    let probe = {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
        let (y, _) = layer.forward(input, mode, &mut StdRng::seed_from_u64(seed));
        trng::uniform_tensor(&mut rng, y.shape().to_vec(), -1.0, 1.0)
    };

    let eval = |layer: &L, x: &Tensor| -> f32 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (y, _) = layer.forward(x, mode, &mut rng);
        y.as_slice().iter().zip(probe.as_slice()).map(|(&a, &b)| a * b).sum()
    };

    // Analytic gradients.
    let (_, cache) = layer.forward(input, mode, &mut StdRng::seed_from_u64(seed));
    let (grad_in, param_grads) = layer.backward(&cache, &probe);

    // Numerical input gradient.
    let mut max_input_err = 0.0f32;
    let mut x = input.clone();
    for i in 0..x.len() {
        let orig = x.as_slice()[i];
        x.as_mut_slice()[i] = orig + eps;
        let lp = eval(layer, &x);
        x.as_mut_slice()[i] = orig - eps;
        let lm = eval(layer, &x);
        x.as_mut_slice()[i] = orig;
        let num = (lp - lm) / (2.0 * eps);
        max_input_err = max_input_err.max((num - grad_in.as_slice()[i]).abs());
    }

    // Numerical parameter gradients.
    let n_params = layer.params().len();
    let mut max_param_errs = vec![0.0f32; n_params];
    for pi in 0..n_params {
        let len = layer.params()[pi].len();
        for i in 0..len {
            let orig = layer.params()[pi].as_slice()[i];
            layer.params_mut()[pi].as_mut_slice()[i] = orig + eps;
            let lp = eval(layer, input);
            layer.params_mut()[pi].as_mut_slice()[i] = orig - eps;
            let lm = eval(layer, input);
            layer.params_mut()[pi].as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = param_grads[pi].as_slice()[i];
            max_param_errs[pi] = max_param_errs[pi].max((num - ana).abs());
        }
    }

    GradCheckReport { max_input_err, max_param_errs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn report_within_logic() {
        let r = GradCheckReport { max_input_err: 0.01, max_param_errs: vec![0.02, 0.001] };
        assert!(r.within(0.05));
        assert!(!r.within(0.015));
    }

    #[test]
    fn dense_passes_self_check() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = trng::uniform_tensor(&mut rng, vec![2, 3], -1.0, 1.0);
        let report = check_layer(&mut layer, &x, Mode::Infer, 7, 1e-3);
        assert!(report.within(1e-2), "{report:?}");
    }
}
