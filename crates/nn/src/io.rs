//! Weight serialization.
//!
//! A deployed STONE localizer ships the trained encoder to the mobile device
//! (Sec. IV.A of the paper); this module provides the equivalent
//! export/import in a tiny self-describing binary format:
//!
//! ```text
//! magic "SNNW" | u32 version | u32 tensor count |
//!   per tensor: u32 rank | u32 dims... | f32 data... (all little-endian)
//! ```

use std::fmt;

use stone_tensor::Tensor;

use crate::Sequential;

const MAGIC: &[u8; 4] = b"SNNW";
const VERSION: u32 = 1;

/// Errors produced when loading serialized weights.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WeightIoError {
    /// The byte stream does not start with the expected magic/version.
    BadHeader,
    /// The byte stream ended prematurely.
    Truncated,
    /// The stored tensor count or shapes do not match the target network.
    ArchitectureMismatch {
        /// Description of what disagreed.
        detail: String,
    },
}

impl fmt::Display for WeightIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightIoError::BadHeader => write!(f, "bad weight-file header"),
            WeightIoError::Truncated => write!(f, "weight data truncated"),
            WeightIoError::ArchitectureMismatch { detail } => {
                write!(f, "weights do not match network architecture: {detail}")
            }
        }
    }
}

impl std::error::Error for WeightIoError {}

/// Serializes all trainable parameters of a network.
#[must_use]
pub fn save_weights(net: &Sequential) -> Vec<u8> {
    let params = net.params();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        out.extend_from_slice(&(p.rank() as u32).to_le_bytes());
        for &d in p.shape() {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for &v in p.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Result<u32, WeightIoError> {
        let end = self.pos + 4;
        let chunk = self.bytes.get(self.pos..end).ok_or(WeightIoError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(chunk.try_into().expect("4-byte chunk")))
    }

    fn f32(&mut self) -> Result<f32, WeightIoError> {
        Ok(f32::from_bits(self.u32()?))
    }
}

/// Loads weights previously produced by [`save_weights`] into a network of
/// the same architecture.
///
/// # Errors
///
/// Returns [`WeightIoError`] when the header is invalid, the stream is
/// truncated, or the stored shapes do not match `net`.
pub fn load_weights(net: &mut Sequential, bytes: &[u8]) -> Result<(), WeightIoError> {
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(WeightIoError::BadHeader);
    }
    let mut r = Reader { bytes, pos: 4 };
    if r.u32()? != VERSION {
        return Err(WeightIoError::BadHeader);
    }
    let count = r.u32()? as usize;

    // Decode every tensor before touching the network so a failed load
    // leaves the parameters untouched.
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = r.u32()? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(r.u32()? as usize);
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f32()?);
        }
        tensors.push(Tensor::from_vec(shape, data).expect("shape/data consistent by construction"));
    }

    let mut params = net.params_mut();
    if params.len() != count {
        return Err(WeightIoError::ArchitectureMismatch {
            detail: format!("stored {count} tensors, network has {}", params.len()),
        });
    }
    for (i, (p, t)) in params.iter_mut().zip(&tensors).enumerate() {
        if p.shape() != t.shape() {
            return Err(WeightIoError::ArchitectureMismatch {
                detail: format!("tensor {i}: stored {:?}, network {:?}", t.shape(), p.shape()),
            });
        }
    }
    for (p, t) in params.iter_mut().zip(tensors) {
        **p = t;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stone_tensor::Tensor;

    fn make_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 2, &mut rng)),
        ])
    }

    #[test]
    fn roundtrip_restores_outputs() {
        let src = make_net(1);
        let mut dst = make_net(2);
        let x = Tensor::ones(vec![2, 3]);
        assert_ne!(src.predict(&x), dst.predict(&x));
        let bytes = save_weights(&src);
        load_weights(&mut dst, &bytes).unwrap();
        assert_eq!(src.predict(&x), dst.predict(&x));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut net = make_net(1);
        assert_eq!(load_weights(&mut net, b"NOPE0000"), Err(WeightIoError::BadHeader));
    }

    #[test]
    fn rejects_truncated() {
        let src = make_net(1);
        let bytes = save_weights(&src);
        let mut net = make_net(2);
        let err = load_weights(&mut net, &bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err, WeightIoError::Truncated);
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let src = make_net(1);
        let bytes = save_weights(&src);
        let mut rng = StdRng::seed_from_u64(0);
        let mut other = Sequential::new(vec![Box::new(Dense::new(5, 2, &mut rng))]);
        assert!(matches!(
            load_weights(&mut other, &bytes),
            Err(WeightIoError::ArchitectureMismatch { .. })
        ));
    }

    #[test]
    fn failed_load_leaves_params_untouched() {
        let src = make_net(1);
        let bytes = save_weights(&src);
        let mut dst = make_net(2);
        let x = Tensor::ones(vec![1, 3]);
        let before = dst.predict(&x);
        let _ = load_weights(&mut dst, &bytes[..bytes.len() - 1]);
        assert_eq!(dst.predict(&x), before);
    }
}
