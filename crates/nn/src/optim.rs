//! First-order optimizers.

use stone_tensor::Tensor;

/// A first-order optimizer updating parameters in place from gradients.
///
/// The flattened parameter and gradient lists must keep a stable order
/// across steps (as produced by [`crate::Sequential::params_mut`] and
/// a flattened [`crate::BackwardResult::param_grads`]); per-parameter state
/// is keyed by position.
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Implementations panic when `params` and `grads` disagree in length or
    /// shapes, or when the parameter list changes shape between steps.
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

fn check_shapes(params: &[&mut Tensor], grads: &[Tensor]) {
    assert_eq!(params.len(), grads.len(), "optimizer param/grad count mismatch");
    for (p, g) in params.iter().zip(grads) {
        assert_eq!(p.shape(), g.shape(), "optimizer param/grad shape mismatch");
    }
}

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// # Example
///
/// ```
/// use stone_nn::{Optimizer, Sgd};
/// use stone_tensor::Tensor;
///
/// let mut w = Tensor::from_slice(&[1.0]);
/// let g = Tensor::from_slice(&[0.5]);
/// Sgd::new(0.1, 0.0, 0.0).step(&mut [&mut w], std::slice::from_ref(&g));
/// assert!((w.as_slice()[0] - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics when `lr <= 0`, `momentum` is outside `[0, 1)`, or
    /// `weight_decay` is negative.
    #[must_use]
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self { lr, momentum, weight_decay, velocity: Vec::new() }
    }

    /// Plain SGD with the given learning rate.
    #[must_use]
    pub fn with_lr(lr: f32) -> Self {
        Self::new(lr, 0.0, 0.0)
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        check_shapes(params, grads);
        if self.velocity.is_empty() {
            self.velocity = grads.iter().map(|g| Tensor::zeros(g.shape().to_vec())).collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "optimizer state size changed");
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            for ((pv, &gv), vv) in
                p.as_mut_slice().iter_mut().zip(g.as_slice()).zip(v.as_mut_slice())
            {
                let grad = gv + self.weight_decay * *pv;
                *vv = self.momentum * *vv + grad;
                *pv -= self.lr * *vv;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with decoupled-style weight decay applied to
/// the gradient.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `lr`/`eps` or betas outside `[0, 1)`.
    #[must_use]
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        assert!(eps > 0.0, "eps must be positive");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self { lr, beta1, beta2, eps, weight_decay, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Adam with standard betas (0.9, 0.999) and the given learning rate.
    #[must_use]
    pub fn with_lr(lr: f32) -> Self {
        Self::new(lr, 0.9, 0.999, 1e-8, 0.0)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        check_shapes(params, grads);
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| Tensor::zeros(g.shape().to_vec())).collect();
            self.v = grads.iter().map(|g| Tensor::zeros(g.shape().to_vec())).collect();
        }
        assert_eq!(self.m.len(), params.len(), "optimizer state size changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params.iter_mut().zip(grads).zip(&mut self.m).zip(&mut self.v) {
            for (((pv, &gv), mv), vv) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                let grad = gv + self.weight_decay * *pv;
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * grad;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * grad * grad;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descend(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // Minimize f(w) = (w - 3)² starting from w = 0.
        let mut w = Tensor::from_slice(&[0.0]);
        for _ in 0..steps {
            let grad = Tensor::from_slice(&[2.0 * (w.as_slice()[0] - 3.0)]);
            opt.step(&mut [&mut w], std::slice::from_ref(&grad));
        }
        w.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::with_lr(0.1);
        let w = quadratic_descend(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let w = quadratic_descend(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::with_lr(0.3);
        let w = quadratic_descend(&mut opt, 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_params() {
        // With zero gradient, decay alone must shrink the weight.
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        let mut w = Tensor::from_slice(&[1.0]);
        let g = Tensor::from_slice(&[0.0]);
        opt.step(&mut [&mut w], std::slice::from_ref(&g));
        assert!((w.as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::with_lr(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn step_rejects_mismatched_lists() {
        let mut opt = Sgd::with_lr(0.1);
        let mut w = Tensor::from_slice(&[1.0]);
        opt.step(&mut [&mut w], &[]);
    }
}
