//! The [`Layer`] trait and its forward-pass [`Cache`].

use rand::rngs::StdRng;
use stone_tensor::Tensor;

/// Whether a forward pass is part of training or inference.
///
/// Stochastic layers ([`crate::Dropout`], [`crate::GaussianNoise`]) are
/// identity functions in [`Mode::Infer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training pass: stochastic layers sample, caches are kept for backward.
    Train,
    /// Inference pass: deterministic; stochastic layers are identities.
    #[default]
    Infer,
}

/// Per-layer forward state consumed by the matching backward pass.
///
/// The contents are layer-specific; custom [`Layer`] implementations may
/// store whatever tensors and shape metadata they need.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Cached tensors (inputs, masks, normalized outputs, ...).
    pub tensors: Vec<Tensor>,
    /// Cached shape metadata (e.g. the pre-flatten shape).
    pub shape: Vec<usize>,
}

impl Cache {
    /// An empty cache for layers that need no backward state.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// A cache holding a single tensor.
    #[must_use]
    pub fn one(t: Tensor) -> Self {
        Self { tensors: vec![t], shape: Vec::new() }
    }
}

/// A differentiable network layer with explicit forward/backward passes.
///
/// Implementations must satisfy the contract that for any input `x` and
/// upstream gradient `g`, `backward(forward(x).1, g)` returns
/// `(∂L/∂x, [∂L/∂p for p in params()])` where `L` is any scalar with
/// `∂L/∂output = g`. The [`crate::gradcheck`] module verifies this
/// numerically for every layer in the crate.
///
/// `Send + Sync` are supertraits so a trained [`crate::Sequential`] can be
/// shared across threads behind an `Arc` — the serving layer keeps one
/// immutable model snapshot visible to every worker thread. Layers are plain
/// tensors and scalars, so the bound costs implementations nothing.
pub trait Layer: Send + Sync {
    /// Runs the layer on `x`, returning the output and the backward cache.
    ///
    /// `rng` is only consulted by stochastic layers in [`Mode::Train`].
    fn forward(&self, x: &Tensor, mode: Mode, rng: &mut StdRng) -> (Tensor, Cache);

    /// Propagates `grad_out` backwards through the layer.
    ///
    /// Returns the gradient with respect to the layer input and the gradients
    /// with respect to each parameter, in the same order as [`Layer::params`].
    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>);

    /// Borrows the layer's trainable parameters (possibly empty).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutably borrows the layer's trainable parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// A short human-readable layer name used in debug output.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_default_is_infer() {
        assert_eq!(Mode::default(), Mode::Infer);
    }

    #[test]
    fn cache_constructors() {
        assert!(Cache::empty().tensors.is_empty());
        let c = Cache::one(Tensor::ones(vec![2]));
        assert_eq!(c.tensors.len(), 1);
    }
}
