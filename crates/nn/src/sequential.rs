//! Sequential composition of layers.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_tensor::Tensor;

use crate::layer::{Cache, Layer, Mode};

/// Result of a backward pass through a [`Sequential`] network.
#[derive(Debug)]
pub struct BackwardResult {
    /// Gradient with respect to the network input.
    pub grad_input: Tensor,
    /// Per-layer parameter gradients, in layer order; entries for
    /// parameterless layers are empty vectors.
    pub param_grads: Vec<Vec<Tensor>>,
}

impl BackwardResult {
    /// Accumulates another backward result's parameter gradients into this
    /// one (used to realize weight sharing across Siamese towers).
    ///
    /// # Panics
    ///
    /// Panics when the two results come from differently-shaped networks.
    pub fn accumulate(&mut self, other: &BackwardResult) {
        assert_eq!(
            self.param_grads.len(),
            other.param_grads.len(),
            "cannot accumulate gradients from different networks"
        );
        for (mine, theirs) in self.param_grads.iter_mut().zip(&other.param_grads) {
            assert_eq!(mine.len(), theirs.len(), "parameter count mismatch");
            for (m, t) in mine.iter_mut().zip(theirs) {
                m.axpy_in_place(1.0, t);
            }
        }
    }
}

/// An ordered stack of layers sharing one forward/backward interface.
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use stone_nn::{Dense, Relu, Sequential};
/// use stone_tensor::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = Sequential::new(vec![
///     Box::new(Dense::new(4, 8, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(8, 2, &mut rng)),
/// ]);
/// let y = net.predict(&Tensor::ones(vec![3, 4]));
/// assert_eq!(y.shape(), &[3, 2]);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a network from an ordered list of layers.
    #[must_use]
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the network has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrows the layers.
    #[must_use]
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Runs a forward pass in the given mode without keeping caches.
    pub fn forward(&self, x: &Tensor, mode: Mode, rng: &mut StdRng) -> Tensor {
        let mut cur = x.clone();
        for layer in &self.layers {
            let (y, _) = layer.forward(&cur, mode, rng);
            cur = y;
        }
        cur
    }

    /// Deterministic inference pass (stochastic layers are identities, so no
    /// entropy is consumed).
    #[must_use]
    pub fn predict(&self, x: &Tensor) -> Tensor {
        // Inference never samples; the seed is irrelevant but the signature
        // of `Layer::forward` requires an RNG.
        let mut rng = StdRng::seed_from_u64(0);
        self.forward(x, Mode::Infer, &mut rng)
    }

    /// Training forward pass returning the output and per-layer caches.
    pub fn forward_train(&self, x: &Tensor, rng: &mut StdRng) -> (Tensor, Vec<Cache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            let (y, cache) = layer.forward(&cur, Mode::Train, rng);
            caches.push(cache);
            cur = y;
        }
        (cur, caches)
    }

    /// Backward pass through the whole stack.
    ///
    /// # Panics
    ///
    /// Panics when `caches` does not come from a matching
    /// [`Sequential::forward_train`] call.
    pub fn backward(&self, caches: &[Cache], grad_out: &Tensor) -> BackwardResult {
        assert_eq!(caches.len(), self.layers.len(), "cache/layer count mismatch");
        let mut param_grads: Vec<Vec<Tensor>> = vec![Vec::new(); self.layers.len()];
        let mut grad = grad_out.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (gx, gp) = layer.backward(&caches[i], &grad);
            param_grads[i] = gp;
            grad = gx;
        }
        BackwardResult { grad_input: grad, param_grads }
    }

    /// Flattened list of all trainable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Flattened mutable list of all trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Total number of scalar parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Zero-filled gradient accumulators matching [`Sequential::params`].
    #[must_use]
    pub fn zero_grads(&self) -> Vec<Vec<Tensor>> {
        self.layers
            .iter()
            .map(|l| l.params().iter().map(|p| Tensor::zeros(p.shape().to_vec())).collect())
            .collect()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        write!(f, "Sequential({} params; {:?})", self.param_count(), names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, Relu};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn tiny_net() -> Sequential {
        let mut r = rng();
        Sequential::new(vec![
            Box::new(Dense::new(3, 4, &mut r)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 2, &mut r)),
        ])
    }

    #[test]
    fn forward_and_predict_agree_without_stochastic_layers() {
        let net = tiny_net();
        let x = Tensor::ones(vec![2, 3]);
        let mut r = rng();
        let a = net.forward(&x, Mode::Train, &mut r);
        let b = net.predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn backward_produces_grads_for_every_param() {
        let net = tiny_net();
        let x = Tensor::ones(vec![2, 3]);
        let mut r = rng();
        let (y, caches) = net.forward_train(&x, &mut r);
        let g = Tensor::ones(y.shape().to_vec());
        let res = net.backward(&caches, &g);
        assert_eq!(res.grad_input.shape(), x.shape());
        let flat: Vec<&Tensor> = res.param_grads.iter().flatten().collect();
        let params = net.params();
        assert_eq!(flat.len(), params.len());
        for (g, p) in flat.iter().zip(params) {
            assert_eq!(g.shape(), p.shape());
        }
    }

    #[test]
    fn accumulate_doubles_grads() {
        let net = tiny_net();
        let x = Tensor::ones(vec![1, 3]);
        let mut r = rng();
        let (y, caches) = net.forward_train(&x, &mut r);
        let g = Tensor::ones(y.shape().to_vec());
        let mut a = net.backward(&caches, &g);
        let b = net.backward(&caches, &g);
        a.accumulate(&b);
        for (ga, gb) in a.param_grads.iter().flatten().zip(b.param_grads.iter().flatten()) {
            for (x1, x2) in ga.as_slice().iter().zip(gb.as_slice()) {
                assert!((x1 - 2.0 * x2).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn param_count_counts_scalars() {
        let net = tiny_net();
        assert_eq!(net.param_count(), 3 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn zero_grads_match_param_shapes() {
        let net = tiny_net();
        let z = net.zero_grads();
        let flat: Vec<&Tensor> = z.iter().flatten().collect();
        for (zg, p) in flat.iter().zip(net.params()) {
            assert_eq!(zg.shape(), p.shape());
            assert!(zg.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn debug_lists_layers() {
        let net = Sequential::new(vec![Box::new(Flatten::new())]);
        assert!(format!("{net:?}").contains("flatten"));
    }
}
