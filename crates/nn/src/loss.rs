//! Loss functions and their gradients.

use stone_tensor::{softmax_rows, Tensor};

/// Gradients of the triplet loss with respect to the three embedding
/// batches.
#[derive(Debug, Clone)]
pub struct TripletGrads {
    /// Gradient with respect to the anchor embeddings.
    pub anchor: Tensor,
    /// Gradient with respect to the positive embeddings.
    pub positive: Tensor,
    /// Gradient with respect to the negative embeddings.
    pub negative: Tensor,
}

/// Batch statistics reported alongside the triplet loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripletStats {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Fraction of triplets violating the margin (i.e. contributing
    /// gradient). FaceNet calls these "active" triplets.
    pub active_fraction: f32,
    /// Mean anchor-positive squared distance.
    pub mean_pos_dist: f32,
    /// Mean anchor-negative squared distance.
    pub mean_neg_dist: f32,
}

/// FaceNet-style triplet loss (Eq. 2 of the STONE paper):
///
/// `L = mean_i max(0, ||f(a_i) - f(p_i)||² - ||f(a_i) - f(n_i)||² + margin)`.
///
/// # Example
///
/// ```
/// use stone_nn::TripletLoss;
/// use stone_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1, 2], vec![1.0, 0.0])?;
/// let p = Tensor::from_vec(vec![1, 2], vec![1.0, 0.0])?;
/// let n = Tensor::from_vec(vec![1, 2], vec![0.0, 1.0])?;
/// let (stats, _) = TripletLoss::new(0.2).loss(&a, &p, &n);
/// assert_eq!(stats.loss, 0.0); // perfectly separated triplet
/// # Ok::<(), stone_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TripletLoss {
    margin: f32,
}

impl TripletLoss {
    /// Creates a triplet loss with the given margin `α`.
    ///
    /// # Panics
    ///
    /// Panics when `margin` is negative.
    #[must_use]
    pub fn new(margin: f32) -> Self {
        assert!(margin >= 0.0, "triplet margin must be non-negative, got {margin}");
        Self { margin }
    }

    /// The margin `α`.
    #[must_use]
    pub fn margin(&self) -> f32 {
        self.margin
    }

    /// Computes the mean triplet loss and the gradients for the three
    /// embedding batches, each of shape `[batch, d]`.
    ///
    /// # Panics
    ///
    /// Panics when the three batches do not share the same shape.
    pub fn loss(
        &self,
        anchor: &Tensor,
        positive: &Tensor,
        negative: &Tensor,
    ) -> (TripletStats, TripletGrads) {
        assert_eq!(anchor.shape(), positive.shape(), "anchor/positive shape mismatch");
        assert_eq!(anchor.shape(), negative.shape(), "anchor/negative shape mismatch");
        let (b, d) = (anchor.rows(), anchor.cols());
        let inv_b = 1.0 / b as f32;

        let mut ga = Tensor::zeros(vec![b, d]);
        let mut gp = Tensor::zeros(vec![b, d]);
        let mut gn = Tensor::zeros(vec![b, d]);
        let mut total = 0.0;
        let mut active = 0usize;
        let mut pos_sum = 0.0;
        let mut neg_sum = 0.0;

        for i in 0..b {
            let (ar, pr, nr) = (anchor.row(i), positive.row(i), negative.row(i));
            let dpos: f32 = ar.iter().zip(pr).map(|(&x, &y)| (x - y) * (x - y)).sum();
            let dneg: f32 = ar.iter().zip(nr).map(|(&x, &y)| (x - y) * (x - y)).sum();
            pos_sum += dpos;
            neg_sum += dneg;
            let violation = dpos - dneg + self.margin;
            if violation > 0.0 {
                active += 1;
                total += violation;
                // dL/da = 2(n - p), dL/dp = 2(p - a), dL/dn = 2(a - n).
                let s = 2.0 * inv_b;
                for j in 0..d {
                    ga.row_mut(i)[j] = s * (nr[j] - pr[j]);
                    gp.row_mut(i)[j] = s * (pr[j] - ar[j]);
                    gn.row_mut(i)[j] = s * (ar[j] - nr[j]);
                }
            }
        }

        let stats = TripletStats {
            loss: total * inv_b,
            active_fraction: active as f32 * inv_b,
            mean_pos_dist: pos_sum * inv_b,
            mean_neg_dist: neg_sum * inv_b,
        };
        (stats, TripletGrads { anchor: ga, positive: gp, negative: gn })
    }
}

/// Contrastive (pairwise) loss as used by DeepFace-style Siamese encoders:
/// similar pairs (`label = true`) are pulled together with `d²`, dissimilar
/// pairs pushed apart with `max(0, margin - d)²`.
#[derive(Debug, Clone, Copy)]
pub struct ContrastiveLoss {
    margin: f32,
}

impl ContrastiveLoss {
    /// Creates a contrastive loss with the given margin.
    ///
    /// # Panics
    ///
    /// Panics when `margin` is negative.
    #[must_use]
    pub fn new(margin: f32) -> Self {
        assert!(margin >= 0.0, "contrastive margin must be non-negative, got {margin}");
        Self { margin }
    }

    /// Computes the mean loss and gradients for two `[batch, d]` embedding
    /// batches plus per-pair similarity labels.
    ///
    /// # Panics
    ///
    /// Panics when shapes or label counts disagree.
    pub fn loss(&self, left: &Tensor, right: &Tensor, same: &[bool]) -> (f32, Tensor, Tensor) {
        assert_eq!(left.shape(), right.shape(), "pair shape mismatch");
        assert_eq!(left.rows(), same.len(), "label count mismatch");
        let (b, d) = (left.rows(), left.cols());
        let inv_b = 1.0 / b as f32;
        let mut gl = Tensor::zeros(vec![b, d]);
        let mut gr = Tensor::zeros(vec![b, d]);
        let mut total = 0.0;
        for (i, &is_same) in same.iter().enumerate() {
            let (lr, rr) = (left.row(i), right.row(i));
            let dist: f32 = lr.iter().zip(rr).map(|(&x, &y)| (x - y) * (x - y)).sum::<f32>().sqrt();
            if is_same {
                total += dist * dist;
                for j in 0..d {
                    let diff = lr[j] - rr[j];
                    gl.row_mut(i)[j] = 2.0 * diff * inv_b;
                    gr.row_mut(i)[j] = -2.0 * diff * inv_b;
                }
            } else if dist < self.margin {
                let gap = self.margin - dist;
                total += gap * gap;
                let safe = dist.max(1e-8);
                for j in 0..d {
                    let diff = lr[j] - rr[j];
                    // d/dl (m - d)² = -2 (m - d) * diff / d
                    gl.row_mut(i)[j] = -2.0 * gap * diff / safe * inv_b;
                    gr.row_mut(i)[j] = 2.0 * gap * diff / safe * inv_b;
                }
            }
        }
        (total * inv_b, gl, gr)
    }
}

/// Softmax cross-entropy loss over integer class labels, fused with the
/// softmax for numerical stability.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss {
    _priv: (),
}

impl CrossEntropyLoss {
    /// Creates a cross-entropy loss.
    #[must_use]
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// Computes mean negative log-likelihood of `labels` under
    /// `softmax(logits)` plus the gradient w.r.t. the logits.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len() != logits.rows()` or any label is out of
    /// range.
    pub fn loss(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let (b, k) = (logits.rows(), logits.cols());
        assert_eq!(labels.len(), b, "label count mismatch");
        let probs = softmax_rows(logits);
        let inv_b = 1.0 / b as f32;
        let mut grad = probs.clone();
        let mut total = 0.0;
        for (i, &y) in labels.iter().enumerate() {
            assert!(y < k, "label {y} out of range for {k} classes");
            total -= probs.at2(i, y).max(1e-12).ln();
            let g = grad.row_mut(i);
            g[y] -= 1.0;
            for v in g.iter_mut() {
                *v *= inv_b;
            }
        }
        (total * inv_b, grad)
    }

    /// Classification accuracy of `logits` against `labels`.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len() != logits.rows()`.
    #[must_use]
    pub fn accuracy(&self, logits: &Tensor, labels: &[usize]) -> f32 {
        let b = logits.rows();
        assert_eq!(labels.len(), b, "label count mismatch");
        let correct = (0..b).filter(|&i| stone_tensor::argmax(logits.row(i)) == labels[i]).count();
        correct as f32 / b as f32
    }
}

/// Mean-squared-error loss.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl MseLoss {
    /// Computes `mean((pred - target)²)` and its gradient w.r.t. `pred`.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn loss(&self, pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
        assert_eq!(pred.shape(), target.shape(), "MSE shape mismatch");
        let n = pred.len() as f32;
        let diff = pred - target;
        let loss = diff.as_slice().iter().map(|&d| d * d).sum::<f32>() / n;
        let grad = diff.scaled(2.0 / n);
        (loss, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_zero_when_separated() {
        let a = Tensor::from_vec(vec![1, 2], vec![1., 0.]).unwrap();
        let p = Tensor::from_vec(vec![1, 2], vec![0.9, 0.1]).unwrap();
        let n = Tensor::from_vec(vec![1, 2], vec![-1., 0.]).unwrap();
        let (stats, grads) = TripletLoss::new(0.2).loss(&a, &p, &n);
        assert_eq!(stats.loss, 0.0);
        assert_eq!(stats.active_fraction, 0.0);
        assert!(grads.anchor.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn triplet_active_when_violating() {
        let a = Tensor::from_vec(vec![1, 2], vec![0., 0.]).unwrap();
        let p = Tensor::from_vec(vec![1, 2], vec![1., 0.]).unwrap(); // dpos = 1
        let n = Tensor::from_vec(vec![1, 2], vec![0., 1.]).unwrap(); // dneg = 1
        let (stats, grads) = TripletLoss::new(0.5).loss(&a, &p, &n);
        assert!((stats.loss - 0.5).abs() < 1e-6);
        assert_eq!(stats.active_fraction, 1.0);
        // dL/da = 2(n - p) = 2*(-1, 1).
        assert_eq!(grads.anchor.as_slice(), &[-2., 2.]);
        assert_eq!(grads.positive.as_slice(), &[2., 0.]);
        assert_eq!(grads.negative.as_slice(), &[0., -2.]);
    }

    #[test]
    fn triplet_numerical_gradient() {
        // Central-difference check on a 2-triplet batch.
        let a = Tensor::from_vec(vec![2, 3], vec![0.1, 0.2, -0.3, 0.5, 0.0, 0.4]).unwrap();
        let p = Tensor::from_vec(vec![2, 3], vec![0.2, 0.1, -0.1, 0.4, 0.2, 0.6]).unwrap();
        let n = Tensor::from_vec(vec![2, 3], vec![0.0, 0.3, 0.2, 0.1, -0.2, 0.5]).unwrap();
        let loss_fn = TripletLoss::new(0.4);
        let (_, grads) = loss_fn.loss(&a, &p, &n);
        let eps = 1e-3;
        for idx in 0..a.len() {
            let mut ap = a.clone();
            ap.as_mut_slice()[idx] += eps;
            let mut am = a.clone();
            am.as_mut_slice()[idx] -= eps;
            let lp = loss_fn.loss(&ap, &p, &n).0.loss;
            let lm = loss_fn.loss(&am, &p, &n).0.loss;
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.anchor.as_slice()[idx];
            assert!((num - ana).abs() < 1e-2, "idx {idx}: {num} vs {ana}");
        }
    }

    #[test]
    fn contrastive_pulls_and_pushes() {
        let l = Tensor::from_vec(vec![2, 2], vec![0., 0., 0., 0.]).unwrap();
        let r = Tensor::from_vec(vec![2, 2], vec![1., 0., 1., 0.]).unwrap();
        // First pair same (penalized d²=1), second different with margin 2
        // (penalized (2-1)²=1).
        let (loss, gl, _) = ContrastiveLoss::new(2.0).loss(&l, &r, &[true, false]);
        assert!((loss - 1.0).abs() < 1e-6);
        // Same pair: descending the loss pulls left toward right at (1,0),
        // i.e. increases left-x, so the gradient is negative.
        assert!(gl.at2(0, 0) < 0.0);
        // Different pair: descending pushes left away from right, i.e.
        // decreases left-x, so the gradient is positive.
        assert!(gl.at2(1, 0) > 0.0);
    }

    #[test]
    fn cross_entropy_perfect_prediction() {
        let logits = Tensor::from_vec(vec![1, 3], vec![100., 0., 0.]).unwrap();
        let (loss, _) = CrossEntropyLoss::new().loss(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(vec![1, 4]);
        let (loss, grad) = CrossEntropyLoss::new().loss(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient: probs - onehot = 0.25 everywhere except -0.75 at label.
        assert!((grad.at2(0, 2) + 0.75).abs() < 1e-5);
        assert!((grad.at2(0, 0) - 0.25).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_numerical_gradient() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.1, 0.0, 1.0, -1.0]).unwrap();
        let labels = [2usize, 0];
        let ce = CrossEntropyLoss::new();
        let (_, grad) = ce.loss(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let num = (ce.loss(&lp, &labels).0 - ce.loss(&lm, &labels).0) / (2.0 * eps);
            let ana = grad.as_slice()[idx];
            assert!((num - ana).abs() < 1e-3, "idx {idx}: {num} vs {ana}");
        }
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(vec![2, 2], vec![2., 1., 0., 3.]).unwrap();
        let acc = CrossEntropyLoss::new().accuracy(&logits, &[0, 1]);
        assert_eq!(acc, 1.0);
        let acc = CrossEntropyLoss::new().accuracy(&logits, &[1, 1]);
        assert_eq!(acc, 0.5);
    }

    #[test]
    fn mse_basics() {
        let p = Tensor::from_slice(&[1., 2.]);
        let t = Tensor::from_slice(&[0., 0.]);
        let (loss, grad) = MseLoss.loss(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1., 2.]);
    }
}
