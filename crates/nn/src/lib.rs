//! # stone-nn
//!
//! A layer-based neural-network library with **manual backpropagation**,
//! purpose-built for the STONE reproduction (DATE 2022). The repro
//! calibration notes flag `burn`/`tch-rs` as immature for custom contrastive
//! training, so this crate implements the required subset from scratch on top
//! of [`stone_tensor`]:
//!
//! * layers: [`Dense`], [`Conv2d`], [`Relu`], [`LeakyRelu`], [`Sigmoid`],
//!   [`Tanh`], [`Dropout`], [`GaussianNoise`], [`Flatten`], [`L2Normalize`],
//!   [`Softmax`], composed with [`Sequential`];
//! * losses: [`TripletLoss`] (FaceNet-style, the heart of STONE),
//!   [`ContrastiveLoss`], [`CrossEntropyLoss`], [`MseLoss`];
//! * optimizers: [`Sgd`] and [`Adam`];
//! * weight (de)serialization and central-difference [`gradcheck`] utilities.
//!
//! Every layer's `forward` returns an opaque [`Cache`]; `backward` consumes
//! it and returns the input gradient plus per-parameter gradients. A Siamese
//! network with shared weights is realized by running the *same*
//! [`Sequential`] over anchor/positive/negative batches and summing the three
//! parameter-gradient sets — mathematically identical to a weight-shared
//! triple tower.
//!
//! # Example: one training step
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use stone_nn::{Adam, Dense, Mode, MseLoss, Optimizer, Relu, Sequential};
//! use stone_tensor::Tensor;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(2, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 1, &mut rng)),
//! ]);
//! let x = Tensor::from_vec(vec![4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.])?;
//! let y = Tensor::from_vec(vec![4, 1], vec![0., 1., 1., 0.])?;
//!
//! let (out, caches) = net.forward_train(&x, &mut rng);
//! let (loss, grad) = MseLoss.loss(&out, &y);
//! let grads = net.backward(&caches, &grad).param_grads;
//! Adam::with_lr(1e-2).step(&mut net.params_mut(), &grads.concat());
//! assert!(loss.is_finite());
//! # Ok::<(), stone_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gradcheck;
mod init;
mod io;
mod layer;
mod layers;
mod loss;
mod optim;
mod sequential;

pub use init::{he_normal, xavier_uniform};
pub use io::{load_weights, save_weights, WeightIoError};
pub use layer::{Cache, Layer, Mode};
pub use layers::{
    Conv2d, Dense, Dropout, Flatten, GaussianNoise, L2Normalize, LeakyRelu, Relu, Sigmoid, Softmax,
    Tanh,
};
pub use loss::{
    ContrastiveLoss, CrossEntropyLoss, MseLoss, TripletGrads, TripletLoss, TripletStats,
};
pub use optim::{Adam, Optimizer, Sgd};
pub use sequential::{BackwardResult, Sequential};
