//! Normalization layers: row-wise L2 normalization and softmax.

use rand::rngs::StdRng;
use stone_tensor::{softmax_rows, Tensor};

use crate::layer::{Cache, Layer, Mode};

/// Row-wise L2 normalization: each row of a `[batch, d]` input is projected
/// onto the unit hypersphere, `y = x / max(||x||, eps)`.
///
/// This is the final layer of the STONE encoder: the paper constrains
/// embeddings to `||f(x)||₂ = 1` (Sec. III), which together with the margin
/// prevents the trivial `f(x) = 0` solution of the triplet inequality.
///
/// The backward pass uses the exact Jacobian of the normalization:
/// `∂L/∂x = (g - y (g·y)) / ||x||` per row.
#[derive(Debug, Clone, Copy)]
pub struct L2Normalize {
    eps: f32,
}

impl L2Normalize {
    /// Creates an L2 normalization layer with the default epsilon (`1e-8`).
    #[must_use]
    pub fn new() -> Self {
        Self { eps: 1e-8 }
    }

    /// Creates an L2 normalization layer with a custom epsilon guard.
    #[must_use]
    pub fn with_eps(eps: f32) -> Self {
        Self { eps }
    }
}

impl Default for L2Normalize {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for L2Normalize {
    fn forward(&self, x: &Tensor, _mode: Mode, _rng: &mut StdRng) -> (Tensor, Cache) {
        let (m, d) = (x.rows(), x.cols());
        let mut y = Tensor::zeros(vec![m, d]);
        let mut norms = Tensor::zeros(vec![m]);
        for i in 0..m {
            let row = x.row(i);
            let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt().max(self.eps);
            norms.as_mut_slice()[i] = norm;
            for (o, &v) in y.row_mut(i).iter_mut().zip(row) {
                *o = v / norm;
            }
        }
        (y.clone(), Cache { tensors: vec![y, norms], shape: Vec::new() })
    }

    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let y = &cache.tensors[0];
        let norms = &cache.tensors[1];
        let (m, d) = (y.rows(), y.cols());
        let mut gx = Tensor::zeros(vec![m, d]);
        for i in 0..m {
            let yr = y.row(i);
            let gr = grad_out.row(i);
            let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
            let inv_norm = 1.0 / norms.as_slice()[i];
            for ((o, &g), &yv) in gx.row_mut(i).iter_mut().zip(gr).zip(yr) {
                *o = (g - yv * dot) * inv_norm;
            }
        }
        (gx, Vec::new())
    }

    fn name(&self) -> &'static str {
        "l2_normalize"
    }
}

/// Row-wise softmax layer.
///
/// Training classifiers should prefer [`crate::CrossEntropyLoss`], which
/// fuses softmax with the loss for numerical stability; this layer exists for
/// producing calibrated probabilities at inference time (used by the SCNN
/// baseline when exporting confidence scores).
#[derive(Debug, Clone, Copy, Default)]
pub struct Softmax {
    _priv: (),
}

impl Softmax {
    /// Creates a softmax layer.
    #[must_use]
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

impl Layer for Softmax {
    fn forward(&self, x: &Tensor, _mode: Mode, _rng: &mut StdRng) -> (Tensor, Cache) {
        let y = softmax_rows(x);
        (y.clone(), Cache::one(y))
    }

    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let y = &cache.tensors[0];
        let (m, d) = (y.rows(), y.cols());
        let mut gx = Tensor::zeros(vec![m, d]);
        for i in 0..m {
            let yr = y.row(i);
            let gr = grad_out.row(i);
            let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
            for ((o, &g), &yv) in gx.row_mut(i).iter_mut().zip(gr).zip(yr) {
                *o = yv * (g - dot);
            }
        }
        (gx, Vec::new())
    }

    fn name(&self) -> &'static str {
        "softmax"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn l2_rows_are_unit_norm() {
        let x = Tensor::from_vec(vec![2, 3], vec![3., 0., 4., 1., 1., 1.]).unwrap();
        let (y, _) = L2Normalize::new().forward(&x, Mode::Infer, &mut rng());
        for i in 0..2 {
            let n: f32 = y.row(i).iter().map(|&v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
        assert!((y.at2(0, 0) - 0.6).abs() < 1e-6);
        assert!((y.at2(0, 2) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn l2_handles_zero_rows() {
        let x = Tensor::zeros(vec![1, 4]);
        let (y, _) = L2Normalize::new().forward(&x, Mode::Infer, &mut rng());
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn l2_backward_orthogonal_to_output() {
        // The normalization Jacobian projects out the radial component, so
        // grad_in must be orthogonal to the (unit) output row.
        let x = Tensor::from_vec(vec![1, 3], vec![1., 2., 2.]).unwrap();
        let l = L2Normalize::new();
        let (y, cache) = l.forward(&x, Mode::Train, &mut rng());
        let g = Tensor::from_vec(vec![1, 3], vec![0.3, -0.7, 0.2]).unwrap();
        let (gx, _) = l.backward(&cache, &g);
        let dot: f32 = gx.row(0).iter().zip(y.row(0)).map(|(&a, &b)| a * b).sum();
        assert!(dot.abs() < 1e-6, "radial component leaked: {dot}");
    }

    #[test]
    fn softmax_layer_matches_free_function() {
        let x = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 0., 0., 0.]).unwrap();
        let (y, _) = Softmax::new().forward(&x, Mode::Infer, &mut rng());
        assert_eq!(y, softmax_rows(&x));
    }

    #[test]
    fn softmax_backward_rows_sum_to_zero() {
        // Softmax outputs live on the simplex, so input gradients must have
        // zero row-sum.
        let x = Tensor::from_vec(vec![1, 4], vec![0.5, -1., 2., 0.1]).unwrap();
        let s = Softmax::new();
        let (_, cache) = s.forward(&x, Mode::Train, &mut rng());
        let g = Tensor::from_vec(vec![1, 4], vec![1., 0., -2., 0.5]).unwrap();
        let (gx, _) = s.backward(&cache, &g);
        let sum: f32 = gx.row(0).iter().sum();
        assert!(sum.abs() < 1e-5, "row sum {sum}");
    }
}
