//! Fully-connected (affine) layer.

use rand::rngs::StdRng;
use stone_tensor::{matmul, matmul_a_bt, matmul_at_b, sum_axis0, Tensor};

use crate::layer::{Cache, Layer, Mode};

/// A fully-connected layer computing `y = x · W + b` over a
/// `[batch, in_features]` input.
///
/// The STONE encoder uses two of these: a 100-unit hidden layer and the
/// final embedding projection (Sec. IV.D of the paper).
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use stone_nn::{Dense, Layer, Mode};
/// use stone_tensor::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let layer = Dense::new(3, 2, &mut rng);
/// let x = Tensor::ones(vec![4, 3]);
/// let (y, _) = layer.forward(&x, Mode::Infer, &mut rng);
/// assert_eq!(y.shape(), &[4, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor, // [in, out]
    bias: Tensor,   // [out]
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self {
            weight: crate::init::xavier_uniform(
                vec![in_features, out_features],
                in_features,
                out_features,
                rng,
            ),
            bias: Tensor::zeros(vec![out_features]),
            in_features,
            out_features,
        }
    }

    /// Creates a dense layer from explicit parameters (used by tests and
    /// weight loading).
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not `[in, out]` or `bias` is not `[out]`.
    #[must_use]
    pub fn from_params(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.rank(), 2, "Dense weight must be rank 2");
        let (in_features, out_features) = (weight.shape()[0], weight.shape()[1]);
        assert_eq!(bias.shape(), &[out_features], "Dense bias shape mismatch");
        Self { weight, bias, in_features, out_features }
    }

    /// Number of input features.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn forward(&self, x: &Tensor, _mode: Mode, _rng: &mut StdRng) -> (Tensor, Cache) {
        assert_eq!(
            x.cols(),
            self.in_features,
            "Dense expected {} input features, got {}",
            self.in_features,
            x.cols()
        );
        let mut y = matmul(x, &self.weight);
        for r in 0..y.rows() {
            for (v, &b) in y.row_mut(r).iter_mut().zip(self.bias.as_slice()) {
                *v += b;
            }
        }
        (y, Cache::one(x.clone()))
    }

    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let x = &cache.tensors[0];
        let grad_w = matmul_at_b(x, grad_out);
        let grad_b = sum_axis0(grad_out);
        let grad_x = matmul_a_bt(grad_out, &self.weight);
        (grad_x, vec![grad_w, grad_b])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_affine_known_values() {
        let w = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_slice(&[10., 20.]);
        let layer = Dense::from_params(w, b);
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::from_vec(vec![1, 2], vec![1., 1.]).unwrap();
        let (y, _) = layer.forward(&x, Mode::Infer, &mut rng);
        assert_eq!(y.as_slice(), &[14., 26.]);
    }

    #[test]
    fn backward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(3, 5, &mut rng);
        let x = Tensor::ones(vec![2, 3]);
        let (y, cache) = layer.forward(&x, Mode::Train, &mut rng);
        let g = Tensor::ones(vec![2, 5]);
        let (gx, gp) = layer.backward(&cache, &g);
        assert_eq!(y.shape(), &[2, 5]);
        assert_eq!(gx.shape(), &[2, 3]);
        assert_eq!(gp[0].shape(), &[3, 5]);
        assert_eq!(gp[1].shape(), &[5]);
    }

    #[test]
    fn bias_gradient_sums_batch() {
        let w = Tensor::zeros(vec![1, 2]);
        let b = Tensor::zeros(vec![2]);
        let layer = Dense::from_params(w, b);
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::ones(vec![3, 1]);
        let (_, cache) = layer.forward(&x, Mode::Train, &mut rng);
        let g = Tensor::ones(vec![3, 2]);
        let (_, gp) = layer.backward(&cache, &g);
        assert_eq!(gp[1].as_slice(), &[3., 3.]);
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::ones(vec![1, 4]);
        let _ = layer.forward(&x, Mode::Infer, &mut rng);
    }
}
