//! Shape-manipulation layers.

use rand::rngs::StdRng;
use stone_tensor::Tensor;

use crate::layer::{Cache, Layer, Mode};

/// Flattens `[batch, ...]` inputs to `[batch, prod(...)]`, remembering the
/// original shape for the backward pass.
///
/// Sits between the convolutional trunk and the fully-connected head of the
/// STONE encoder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten {
    _priv: (),
}

impl Flatten {
    /// Creates a flatten layer.
    #[must_use]
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

impl Layer for Flatten {
    fn forward(&self, x: &Tensor, _mode: Mode, _rng: &mut StdRng) -> (Tensor, Cache) {
        assert!(x.rank() >= 2, "Flatten expects rank >= 2, got {}", x.rank());
        let batch = x.shape()[0];
        let features: usize = x.shape()[1..].iter().product();
        let y = x.reshape(vec![batch, features]).expect("flatten preserves element count");
        (y, Cache { tensors: Vec::new(), shape: x.shape().to_vec() })
    }

    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let gx = grad_out.reshape(cache.shape.clone()).expect("unflatten preserves element count");
        (gx, Vec::new())
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn flatten_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let f = Flatten::new();
        let x = Tensor::from_fn(vec![2, 3, 4, 5], |i| i as f32);
        let (y, cache) = f.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.shape(), &[2, 60]);
        let (gx, _) = f.backward(&cache, &y);
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gx.as_slice(), x.as_slice());
    }

    #[test]
    fn flatten_rank2_is_noop() {
        let mut rng = StdRng::seed_from_u64(0);
        let f = Flatten::new();
        let x = Tensor::ones(vec![3, 7]);
        let (y, _) = f.forward(&x, Mode::Infer, &mut rng);
        assert_eq!(y.shape(), &[3, 7]);
    }
}
