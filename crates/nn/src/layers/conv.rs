//! 2-D convolution over NCHW batches via im2col lowering.

use rand::rngs::StdRng;
use stone_tensor::{
    col2im_from, im2col_into, matmul, matmul_a_bt, matmul_at_b, Conv2dGeometry, Tensor,
};

use crate::layer::{Cache, Layer, Mode};

/// A "valid" (unpadded) 2-D convolution layer.
///
/// The STONE encoder stacks two of these with 2×2 kernels, stride 1 and
/// 64/128 filters (Sec. IV.D, Fig. 1 of the paper). Weights are stored as a
/// `[out_channels, in_channels * kh * kw]` matrix and the whole batch is
/// lowered into one `[col_rows, batch · out_plane]` column matrix, so each
/// forward or backward pass is a single matrix product — large enough to
/// clear the tensor crate's parallel dispatch threshold — rather than
/// `batch` per-sample ones.
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use stone_nn::{Conv2d, Layer, Mode};
/// use stone_tensor::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let conv = Conv2d::new(1, 4, 2, 1, &mut rng);
/// let x = Tensor::ones(vec![2, 1, 8, 8]);
/// let (y, _) = conv.forward(&x, Mode::Infer, &mut rng);
/// assert_eq!(y.shape(), &[2, 4, 7, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor, // [out_channels, in_channels * kh * kw]
    bias: Tensor,   // [out_channels]
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
}

impl Conv2d {
    /// Creates a conv layer with He-normal weights and zero bias.
    ///
    /// `kernel` is the square kernel side; `stride` applies to both axes.
    #[must_use]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Self {
            weight: crate::init::he_normal(vec![out_channels, fan_in], fan_in, rng),
            bias: Tensor::zeros(vec![out_channels]),
            in_channels,
            out_channels,
            kernel,
            stride,
        }
    }

    /// Number of output channels (filters).
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Lowers the whole NCHW batch into one `[col_rows, batch · out_plane]`
    /// column matrix (sample `n` occupies columns `n * out_plane ..`), so
    /// each layer pass is a single matrix product big enough to clear the
    /// tensor crate's parallel threshold instead of `batch` small serial
    /// ones.
    fn lower_batch(&self, x: &Tensor, g: &Conv2dGeometry) -> Tensor {
        let batch = x.shape()[0];
        let sample_len = self.in_channels * g.in_h * g.in_w;
        let out_plane = g.col_cols();
        let mut cols = Tensor::zeros(vec![g.col_rows(), batch * out_plane]);
        let xd = x.as_slice();
        let cd = cols.as_mut_slice();
        for n in 0..batch {
            im2col_into(
                &xd[n * sample_len..(n + 1) * sample_len],
                g,
                cd,
                batch * out_plane,
                n * out_plane,
            );
        }
        cols
    }

    fn geometry(&self, x: &Tensor) -> Conv2dGeometry {
        assert_eq!(x.rank(), 4, "Conv2d expects [batch, C, H, W], got rank {}", x.rank());
        assert_eq!(
            x.shape()[1],
            self.in_channels,
            "Conv2d expected {} input channels, got {}",
            self.in_channels,
            x.shape()[1]
        );
        Conv2dGeometry::new(
            self.in_channels,
            x.shape()[2],
            x.shape()[3],
            self.kernel,
            self.kernel,
            self.stride,
        )
        .expect("convolution geometry must be valid for the given input")
    }
}

impl Layer for Conv2d {
    fn forward(&self, x: &Tensor, _mode: Mode, _rng: &mut StdRng) -> (Tensor, Cache) {
        let g = self.geometry(x);
        let batch = x.shape()[0];
        let out_plane = g.col_cols();
        let cols = self.lower_batch(x, &g);
        // One [OC, batch · out_plane] product, scattered back to NCHW
        // (the product is sample-major within each row) with the bias added.
        let yw = matmul(&self.weight, &cols);
        let mut y = Tensor::zeros(vec![batch, self.out_channels, g.out_h, g.out_w]);
        let yd = y.as_mut_slice();
        for oc in 0..self.out_channels {
            let b = self.bias.as_slice()[oc];
            let src = yw.row(oc);
            for n in 0..batch {
                let dst_base = (n * self.out_channels + oc) * out_plane;
                let dst = &mut yd[dst_base..dst_base + out_plane];
                for (d, &s) in dst.iter_mut().zip(&src[n * out_plane..(n + 1) * out_plane]) {
                    *d = s + b;
                }
            }
        }
        (y, Cache::one(x.clone()))
    }

    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let x = &cache.tensors[0];
        let g = self.geometry(x);
        let batch = x.shape()[0];
        let sample_len = self.in_channels * g.in_h * g.in_w;
        let out_plane = g.col_cols();
        assert_eq!(
            grad_out.shape(),
            &[batch, self.out_channels, g.out_h, g.out_w],
            "Conv2d backward gradient shape mismatch"
        );

        // Batched twin of `forward`: rebuild the whole-batch column matrix
        // and gather grad_out into the matching [OC, batch · out_plane]
        // layout, so each of the three gradient products runs once per
        // layer pass.
        let cols = self.lower_batch(x, &g);
        let mut gn_all = Tensor::zeros(vec![self.out_channels, batch * out_plane]);
        let gd = grad_out.as_slice();
        {
            let gnd = gn_all.as_mut_slice();
            for n in 0..batch {
                for oc in 0..self.out_channels {
                    let src = &gd[(n * self.out_channels + oc) * out_plane..][..out_plane];
                    let dst = &mut gnd[oc * batch * out_plane + n * out_plane..][..out_plane];
                    dst.copy_from_slice(src);
                }
            }
        }

        // dW = gn · colsᵀ over the whole batch (sample-major inner
        // dimension: the same per-sample sums as the serial loop, regrouped
        // into one accumulation).
        let grad_w = matmul_a_bt(&gn_all, &cols);
        // db = row sums of gn.
        let mut grad_b = Tensor::zeros(vec![self.out_channels]);
        for (oc, gb) in grad_b.as_mut_slice().iter_mut().enumerate() {
            *gb = gn_all.row(oc).iter().sum::<f32>();
        }
        // dcols = Wᵀ · gn, unbatched back onto each sample's input gradient.
        let dcols = matmul_at_b(&self.weight, &gn_all);
        let mut grad_x = Tensor::zeros(vec![batch, self.in_channels, g.in_h, g.in_w]);
        let gx = grad_x.as_mut_slice();
        for n in 0..batch {
            col2im_from(&dcols, &g, n * out_plane, &mut gx[n * sample_len..(n + 1) * sample_len]);
        }
        (grad_x, vec![grad_w, grad_b])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 2, 2, 1, &mut rng);
        // Zero weights: output equals bias everywhere.
        conv.weight.fill(0.0);
        conv.bias.as_mut_slice().copy_from_slice(&[1.5, -0.5]);
        let x = Tensor::ones(vec![1, 1, 3, 3]);
        let (y, _) = conv.forward(&x, Mode::Infer, &mut rng);
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        assert_eq!(&y.as_slice()[..4], &[1.5; 4]);
        assert_eq!(&y.as_slice()[4..], &[-0.5; 4]);
    }

    #[test]
    fn forward_known_convolution() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 2, 1, &mut rng);
        // Kernel [[1, 0], [0, 1]] sums the main diagonal of each window.
        conv.weight.as_mut_slice().copy_from_slice(&[1., 0., 0., 1.]);
        conv.bias.fill(0.0);
        let x = Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let (y, _) = conv.forward(&x, Mode::Infer, &mut rng);
        // Windows: [1,2;4,5]->6, [2,3;5,6]->8, [4,5;7,8]->12, [5,6;8,9]->14.
        assert_eq!(y.as_slice(), &[6., 8., 12., 14.]);
    }

    #[test]
    fn backward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(2, 3, 2, 1, &mut rng);
        let x = Tensor::ones(vec![2, 2, 4, 4]);
        let (y, cache) = conv.forward(&x, Mode::Train, &mut rng);
        let g = Tensor::ones(y.shape().to_vec());
        let (gx, gp) = conv.backward(&cache, &g);
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gp[0].shape(), &[3, 2 * 2 * 2]);
        assert_eq!(gp[1].shape(), &[3]);
    }

    #[test]
    fn stride_two_halves_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(1, 1, 2, 2, &mut rng);
        let x = Tensor::ones(vec![1, 1, 6, 6]);
        let (y, _) = conv.forward(&x, Mode::Infer, &mut rng);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn rejects_wrong_channels() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(3, 1, 2, 1, &mut rng);
        let x = Tensor::ones(vec![1, 2, 4, 4]);
        let _ = conv.forward(&x, Mode::Infer, &mut rng);
    }
}
