//! Concrete layer implementations.

mod activations;
mod conv;
mod dense;
mod dropout;
mod noise;
mod norm;
mod shape_ops;

pub use activations::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use noise::GaussianNoise;
pub use norm::{L2Normalize, Softmax};
pub use shape_ops::Flatten;
