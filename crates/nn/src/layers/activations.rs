//! Elementwise activation layers.

use rand::rngs::StdRng;
use stone_tensor::Tensor;

use crate::layer::{Cache, Layer, Mode};

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu {
    _priv: (),
}

impl Relu {
    /// Creates a ReLU activation.
    #[must_use]
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

impl Layer for Relu {
    fn forward(&self, x: &Tensor, _mode: Mode, _rng: &mut StdRng) -> (Tensor, Cache) {
        (x.map(|v| v.max(0.0)), Cache::one(x.clone()))
    }

    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let x = &cache.tensors[0];
        let gx = grad_out
            .zip_map(x, |g, xv| if xv > 0.0 { g } else { 0.0 })
            .expect("cached input and gradient shapes match");
        (gx, Vec::new())
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Leaky rectified linear unit: `y = x` for `x > 0`, `alpha * x` otherwise.
#[derive(Debug, Clone, Copy)]
pub struct LeakyRelu {
    alpha: f32,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with negative-side slope `alpha`.
    #[must_use]
    pub fn new(alpha: f32) -> Self {
        Self { alpha }
    }

    /// The negative-side slope.
    #[must_use]
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Default for LeakyRelu {
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl Layer for LeakyRelu {
    fn forward(&self, x: &Tensor, _mode: Mode, _rng: &mut StdRng) -> (Tensor, Cache) {
        let a = self.alpha;
        (x.map(|v| if v > 0.0 { v } else { a * v }), Cache::one(x.clone()))
    }

    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let x = &cache.tensors[0];
        let a = self.alpha;
        let gx = grad_out
            .zip_map(x, |g, xv| if xv > 0.0 { g } else { a * g })
            .expect("cached input and gradient shapes match");
        (gx, Vec::new())
    }

    fn name(&self) -> &'static str {
        "leaky_relu"
    }
}

/// Logistic sigmoid: `y = 1 / (1 + e^-x)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sigmoid {
    _priv: (),
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    #[must_use]
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

impl Layer for Sigmoid {
    fn forward(&self, x: &Tensor, _mode: Mode, _rng: &mut StdRng) -> (Tensor, Cache) {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        (y.clone(), Cache::one(y))
    }

    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let y = &cache.tensors[0];
        let gx = grad_out
            .zip_map(y, |g, yv| g * yv * (1.0 - yv))
            .expect("cached output and gradient shapes match");
        (gx, Vec::new())
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tanh {
    _priv: (),
}

impl Tanh {
    /// Creates a tanh activation.
    #[must_use]
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

impl Layer for Tanh {
    fn forward(&self, x: &Tensor, _mode: Mode, _rng: &mut StdRng) -> (Tensor, Cache) {
        let y = x.map(f32::tanh);
        (y.clone(), Cache::one(y))
    }

    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let y = &cache.tensors[0];
        let gx = grad_out
            .zip_map(y, |g, yv| g * (1.0 - yv * yv))
            .expect("cached output and gradient shapes match");
        (gx, Vec::new())
    }

    fn name(&self) -> &'static str {
        "tanh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn relu_clamps_and_gates() {
        let x = Tensor::from_slice(&[-1., 0., 2.]);
        let (y, cache) = Relu::new().forward(&x, Mode::Infer, &mut rng());
        assert_eq!(y.as_slice(), &[0., 0., 2.]);
        let g = Tensor::from_slice(&[1., 1., 1.]);
        let (gx, _) = Relu::new().backward(&cache, &g);
        assert_eq!(gx.as_slice(), &[0., 0., 1.]);
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let x = Tensor::from_slice(&[-2., 2.]);
        let l = LeakyRelu::new(0.1);
        let (y, cache) = l.forward(&x, Mode::Infer, &mut rng());
        assert!((y.as_slice()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.as_slice()[1], 2.0);
        let (gx, _) = l.backward(&cache, &Tensor::from_slice(&[1., 1.]));
        assert!((gx.as_slice()[0] - 0.1).abs() < 1e-6);
        assert_eq!(gx.as_slice()[1], 1.0);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let x = Tensor::from_slice(&[-10., 0., 10.]);
        let (y, _) = Sigmoid::new().forward(&x, Mode::Infer, &mut rng());
        assert!(y.as_slice()[0] < 0.001);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 0.999);
    }

    #[test]
    fn tanh_is_odd() {
        let x = Tensor::from_slice(&[-1., 1.]);
        let (y, _) = Tanh::new().forward(&x, Mode::Infer, &mut rng());
        assert!((y.as_slice()[0] + y.as_slice()[1]).abs() < 1e-6);
    }

    #[test]
    fn activations_have_no_params() {
        assert!(Relu::new().params().is_empty());
        assert!(LeakyRelu::default().params().is_empty());
        assert!(Sigmoid::new().params().is_empty());
        assert!(Tanh::new().params().is_empty());
    }
}
