//! Additive Gaussian input noise.

use rand::rngs::StdRng;
use stone_tensor::{rng as trng, Tensor};

use crate::layer::{Cache, Layer, Mode};

/// Adds `N(0, sigma²)` noise during training; identity at inference.
///
/// STONE injects Gaussian noise (σ = 0.10) at the encoder input to harden it
/// against short-term RSSI fluctuations (Sec. IV.D, Fig. 1). The gradient
/// passes through unchanged because the noise does not depend on the input.
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use stone_nn::{GaussianNoise, Layer, Mode};
/// use stone_tensor::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let noise = GaussianNoise::new(0.1);
/// let x = Tensor::zeros(vec![4]);
/// let (y, _) = noise.forward(&x, Mode::Train, &mut rng);
/// assert!(y.as_slice().iter().all(|v| v.abs() < 1.0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GaussianNoise {
    sigma: f32,
}

impl GaussianNoise {
    /// Creates a Gaussian-noise layer with standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is negative.
    #[must_use]
    pub fn new(sigma: f32) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative, got {sigma}");
        Self { sigma }
    }

    /// The noise standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f32 {
        self.sigma
    }
}

impl Layer for GaussianNoise {
    fn forward(&self, x: &Tensor, mode: Mode, rng: &mut StdRng) -> (Tensor, Cache) {
        match mode {
            Mode::Infer => (x.clone(), Cache::empty()),
            Mode::Train => {
                let noise = trng::normal_tensor(rng, x.shape().to_vec(), 0.0, self.sigma);
                (x + &noise, Cache::empty())
            }
        }
    }

    fn backward(&self, _cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        (grad_out.clone(), Vec::new())
    }

    fn name(&self) -> &'static str {
        "gaussian_noise"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn inference_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = GaussianNoise::new(0.5);
        let x = Tensor::from_slice(&[1., 2.]);
        let (y, _) = n.forward(&x, Mode::Infer, &mut rng);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn training_noise_has_requested_sigma() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = GaussianNoise::new(0.1);
        let x = Tensor::zeros(vec![50_000]);
        let (y, _) = n.forward(&x, Mode::Train, &mut rng);
        let mean = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        let var =
            y.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / y.len() as f32;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn gradient_passes_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = GaussianNoise::new(0.1);
        let x = Tensor::zeros(vec![3]);
        let (_, cache) = n.forward(&x, Mode::Train, &mut rng);
        let g = Tensor::from_slice(&[1., 2., 3.]);
        let (gx, gp) = n.backward(&cache, &g);
        assert_eq!(gx.as_slice(), g.as_slice());
        assert!(gp.is_empty());
    }

    #[test]
    fn zero_sigma_is_identity_even_in_training() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = GaussianNoise::new(0.0);
        let x = Tensor::from_slice(&[1., 2., 3.]);
        let (y, _) = n.forward(&x, Mode::Train, &mut rng);
        for (a, b) in y.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
