//! Inverted dropout.

use rand::rngs::StdRng;
use rand::Rng;
use stone_tensor::Tensor;

use crate::layer::{Cache, Layer, Mode};

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and survivors are scaled by `1 / (1 - p)`; inference is the identity.
///
/// The STONE paper interleaves dropout between the encoder's convolution
/// layers to improve generalization (Sec. IV.D).
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use stone_nn::{Dropout, Layer, Mode};
/// use stone_tensor::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let d = Dropout::new(0.5);
/// let x = Tensor::ones(vec![8]);
/// let (y, _) = d.forward(&x, Mode::Infer, &mut rng);
/// assert_eq!(y.as_slice(), x.as_slice()); // identity at inference
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    #[must_use]
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1), got {p}");
        Self { p }
    }

    /// The drop probability.
    #[must_use]
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&self, x: &Tensor, mode: Mode, rng: &mut StdRng) -> (Tensor, Cache) {
        match mode {
            Mode::Infer => (x.clone(), Cache::empty()),
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                // The mask already includes the 1/keep scaling so backward is
                // a single elementwise product.
                let mask = Tensor::from_fn(x.shape().to_vec(), |_| {
                    if rng.gen::<f32>() < keep {
                        scale
                    } else {
                        0.0
                    }
                });
                let y = &mask * x;
                (y, Cache::one(mask))
            }
        }
    }

    fn backward(&self, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        match cache.tensors.first() {
            None => (grad_out.clone(), Vec::new()), // inference cache
            Some(mask) => (mask * grad_out, Vec::new()),
        }
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn inference_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = Dropout::new(0.9);
        let x = Tensor::from_slice(&[1., 2., 3.]);
        let (y, _) = d.forward(&x, Mode::Infer, &mut rng);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn training_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Dropout::new(0.3);
        let x = Tensor::ones(vec![20_000]);
        let (y, _) = d.forward(&x, Mode::Train, &mut rng);
        let mean = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn surviving_elements_are_scaled() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Dropout::new(0.5);
        let x = Tensor::ones(vec![64]);
        let (y, _) = d.forward(&x, Mode::Train, &mut rng);
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6, "unexpected value {v}");
        }
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dropout::new(0.5);
        let x = Tensor::ones(vec![32]);
        let (y, cache) = d.forward(&x, Mode::Train, &mut rng);
        let g = Tensor::ones(vec![32]);
        let (gx, _) = d.backward(&cache, &g);
        // Gradient flows exactly where the forward pass let values through.
        for (yo, go) in y.as_slice().iter().zip(gx.as_slice()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0);
    }

    #[test]
    fn zero_p_keeps_everything() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = Dropout::new(0.0);
        let x = Tensor::from_slice(&[1., 2., 3.]);
        let (y, _) = d.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.as_slice(), x.as_slice());
    }
}
