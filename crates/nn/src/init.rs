//! Weight initialization schemes.

use rand::rngs::StdRng;
use stone_tensor::{rng as trng, Tensor};

/// He (Kaiming) normal initialization: `N(0, 2 / fan_in)`.
///
/// Suited to ReLU-family activations; used for the conv layers of the STONE
/// encoder.
#[must_use]
pub fn he_normal(shape: Vec<usize>, fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    trng::normal_tensor(rng, shape, 0.0, std)
}

/// Xavier (Glorot) uniform initialization: `U[-a, a]` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Suited to linear/embedding output layers.
#[must_use]
pub fn xavier_uniform(
    shape: Vec<usize>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut StdRng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    trng::uniform_tensor(rng, shape, -a, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_normal_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = he_normal(vec![10_000], 50, &mut rng);
        let mean = t.as_slice().iter().sum::<f32>() / t.len() as f32;
        let var =
            t.as_slice().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 2.0 / 50.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(vec![1000], 30, 70, &mut rng);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= a));
    }
}
