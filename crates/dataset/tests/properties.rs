//! Property-based tests for dataset invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_dataset::{io, office_suite, SuiteConfig, MISSING_RSSI_DBM};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn subsample_never_exceeds_fpr(seed in 0u64..200, fpr in 1usize..8) {
        let suite = office_suite(&SuiteConfig::tiny(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        let sub = suite.train.subsample_fpr(fpr, &mut rng);
        for (&_rp, &n) in &sub.records_per_rp() {
            prop_assert!(n <= fpr);
        }
        // Subsampled records are genuine members of the original set.
        for r in sub.records() {
            prop_assert!(suite.train.records().contains(r));
        }
    }

    #[test]
    fn fingerprint_rssi_values_valid(seed in 0u64..50) {
        let suite = office_suite(&SuiteConfig::tiny(seed));
        for r in suite.train.records() {
            prop_assert_eq!(r.rssi.len(), suite.train.ap_count());
            for &v in &r.rssi {
                prop_assert!((MISSING_RSSI_DBM..=0.0).contains(&v));
            }
        }
    }

    #[test]
    fn bucket_times_strictly_increase(seed in 0u64..50) {
        let suite = office_suite(&SuiteConfig::tiny(seed));
        for w in suite.buckets.windows(2) {
            prop_assert!(w[0].time.hours() < w[1].time.hours());
        }
    }

    #[test]
    fn trajectories_visit_every_rp_once(seed in 0u64..50) {
        let suite = office_suite(&SuiteConfig::tiny(seed));
        let n_rps = suite.train.rps().len();
        for b in &suite.buckets {
            for t in &b.trajectories {
                prop_assert_eq!(t.len(), n_rps);
                let mut seen: Vec<_> = t.fingerprints.iter().map(|f| f.rp).collect();
                seen.sort();
                seen.dedup();
                prop_assert_eq!(seen.len(), n_rps);
            }
        }
    }

    #[test]
    fn csv_roundtrip_is_lossless(seed in 0u64..30) {
        let suite = office_suite(&SuiteConfig::tiny(seed));
        let back = io::from_csv("p", &io::to_csv(&suite.train)).unwrap();
        // Bit-exact round trip: RSSI, labels, positions and timestamps.
        prop_assert_eq!(back.records(), suite.train.records());
        prop_assert_eq!(back.rps(), suite.train.rps());
    }

    #[test]
    fn visibility_matrix_dimensions(seed in 0u64..30) {
        let suite = office_suite(&SuiteConfig::tiny(seed));
        let vis = suite.visibility_matrix();
        prop_assert_eq!(vis.len(), suite.buckets.len());
        for row in &vis {
            prop_assert_eq!(row.len(), suite.train.ap_count());
        }
        // Every bucket must observe at least one AP (a dead building would
        // invalidate every experiment downstream).
        for (i, row) in vis.iter().enumerate() {
            prop_assert!(row.iter().any(|&v| v), "bucket {} observed nothing", i);
        }
    }
}
