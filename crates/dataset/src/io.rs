//! CSV import/export of fingerprint datasets and evaluation buckets.
//!
//! The dataset format mirrors common public fingerprint datasets (one row
//! per scan, one column per AP, then label columns):
//!
//! ```text
//! ap000,ap001,...,rp,x,y,time_h,ci
//! -62,-100,...,3,4.5,1,8,0
//! ```
//!
//! Floats are written with `{}` (Rust's shortest round-trip
//! representation), **never** with a fixed precision: `from_csv(to_csv(ds))`
//! reproduces every record bit-for-bit, which the workspace serialization
//! tests pin down. The bucket format ([`bucket_to_csv`]) adds a one-line
//! metadata prologue and a trailing `traj` column so trajectory boundaries
//! survive the round trip — it is the disk-spill format of
//! [`crate::SuitePlan::spill_buckets`].

use std::fmt::Write as _;

use stone_radio::{Point2, SimTime};

use crate::dataset::FingerprintDataset;
use crate::suites::EvalBucket;
use crate::types::{Fingerprint, ReferencePoint, RpId, Trajectory};

/// Errors produced when parsing a CSV dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CsvError {
    /// The header row is missing or malformed.
    BadHeader,
    /// A data row has the wrong number of fields or an unparsable value.
    BadRow {
        /// 1-based row number (excluding the header).
        row: usize,
    },
    /// The bucket metadata prologue is missing or malformed.
    BadBucketMeta,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader => write!(f, "missing or malformed CSV header"),
            CsvError::BadRow { row } => write!(f, "malformed CSV data row {row}"),
            CsvError::BadBucketMeta => write!(f, "missing or malformed bucket metadata line"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Writes one fingerprint's RSSI + label fields (shortest round-trip float
/// representation; no precision truncation).
fn write_record(out: &mut String, r: &Fingerprint) {
    for v in &r.rssi {
        let _ = write!(out, "{v},");
    }
    let _ = write!(out, "{},{},{},{},{}", r.rp.0, r.pos.x, r.pos.y, r.time.hours(), r.ci);
}

/// Serializes a dataset to CSV. Lossless: see the module docs.
#[must_use]
pub fn to_csv(ds: &FingerprintDataset) -> String {
    let mut out = String::new();
    for i in 0..ds.ap_count() {
        let _ = write!(out, "ap{i:03},");
    }
    out.push_str("rp,x,y,time_h,ci\n");
    for r in ds.records() {
        write_record(&mut out, r);
        out.push('\n');
    }
    out
}

/// Parses the shared `rp,x,y,time_h,ci` tail of a data row into a
/// [`Fingerprint`]; `fields` must hold exactly `ap_count` RSSI columns
/// before the tail (the caller has already validated the length).
fn parse_record(fields: &[&str], ap_count: usize, row: usize) -> Result<Fingerprint, CsvError> {
    let parse_f = |s: &str| s.trim().parse::<f64>().map_err(|_| CsvError::BadRow { row });
    let mut rssi = Vec::with_capacity(ap_count);
    for f in &fields[..ap_count] {
        rssi.push(parse_f(f)? as f32);
    }
    let rp = RpId(fields[ap_count].trim().parse::<u32>().map_err(|_| CsvError::BadRow { row })?);
    let pos = Point2::new(parse_f(fields[ap_count + 1])?, parse_f(fields[ap_count + 2])?);
    let time = SimTime::from_hours(parse_f(fields[ap_count + 3])?);
    let ci = fields[ap_count + 4].trim().parse::<usize>().map_err(|_| CsvError::BadRow { row })?;
    Ok(Fingerprint { rssi, rp, pos, time, ci })
}

/// Parses a dataset from CSV produced by [`to_csv`].
///
/// Reference-point positions are reconstructed from the first record seen
/// for each RP id.
///
/// # Errors
///
/// Returns [`CsvError`] on a malformed header or row.
pub fn from_csv(name: &str, text: &str) -> Result<FingerprintDataset, CsvError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(CsvError::BadHeader)?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() < 6 || cols[cols.len() - 5..] != ["rp", "x", "y", "time_h", "ci"] {
        return Err(CsvError::BadHeader);
    }
    let ap_count = cols.len() - 5;

    let mut rps: Vec<ReferencePoint> = Vec::new();
    let mut records: Vec<Fingerprint> = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = i + 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != ap_count + 5 {
            return Err(CsvError::BadRow { row });
        }
        let fp = parse_record(&fields, ap_count, row)?;
        if !rps.iter().any(|r| r.id == fp.rp) {
            rps.push(ReferencePoint { id: fp.rp, pos: fp.pos });
        }
        records.push(fp);
    }

    let mut ds = FingerprintDataset::new(name, ap_count, rps);
    for r in records {
        ds.push(r);
    }
    Ok(ds)
}

/// Serializes one evaluation bucket to CSV: a metadata prologue
/// (`bucket,<label>,<ci>,<time_h>`), then the dataset header with a
/// trailing `traj` column, then one row per scan tagged with its
/// trajectory index. Lossless, like [`to_csv`].
///
/// # Panics
///
/// Panics when a scan's RSSI length differs from `ap_count`, or when the
/// bucket label contains a comma or line break (which would corrupt the
/// metadata prologue) — failing at write time, not when the spilled file
/// is read back and the in-memory bucket may be gone.
#[must_use]
pub fn bucket_to_csv(bucket: &EvalBucket, ap_count: usize) -> String {
    assert!(
        !bucket.label.contains([',', '\n', '\r']),
        "bucket label {:?} contains CSV delimiters and would not round-trip",
        bucket.label
    );
    let mut out = String::new();
    let _ = writeln!(out, "bucket,{},{},{}", bucket.label, bucket.ci, bucket.time.hours());
    for i in 0..ap_count {
        let _ = write!(out, "ap{i:03},");
    }
    out.push_str("rp,x,y,time_h,ci,traj\n");
    for (ti, traj) in bucket.trajectories.iter().enumerate() {
        for r in &traj.fingerprints {
            assert_eq!(r.rssi.len(), ap_count, "bucket scan AP-universe mismatch");
            write_record(&mut out, r);
            let _ = writeln!(out, ",{ti}");
        }
    }
    out
}

/// Parses an evaluation bucket from CSV produced by [`bucket_to_csv`].
/// Scans with the same `traj` tag are regrouped, in row order, into the
/// bucket's trajectories.
///
/// # Errors
///
/// Returns [`CsvError`] on a malformed prologue, header or row.
pub fn bucket_from_csv(text: &str) -> Result<EvalBucket, CsvError> {
    let mut lines = text.lines();
    let meta: Vec<&str> = lines.next().ok_or(CsvError::BadBucketMeta)?.split(',').collect();
    if meta.len() != 4 || meta[0] != "bucket" {
        return Err(CsvError::BadBucketMeta);
    }
    let label = meta[1].to_string();
    let ci: usize = meta[2].trim().parse().map_err(|_| CsvError::BadBucketMeta)?;
    let time_h: f64 = meta[3].trim().parse().map_err(|_| CsvError::BadBucketMeta)?;

    let header = lines.next().ok_or(CsvError::BadHeader)?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() < 7 || cols[cols.len() - 6..] != ["rp", "x", "y", "time_h", "ci", "traj"] {
        return Err(CsvError::BadHeader);
    }
    let ap_count = cols.len() - 6;

    let mut trajectories: Vec<Trajectory> = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = i + 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != ap_count + 6 {
            return Err(CsvError::BadRow { row });
        }
        let fp = parse_record(&fields[..ap_count + 5], ap_count, row)?;
        let ti: usize =
            fields[ap_count + 5].trim().parse().map_err(|_| CsvError::BadRow { row })?;
        // Trajectory tags must appear in order without gaps (the writer
        // emits them grouped 0, 1, 2, ...); a skipped index would silently
        // fabricate an empty trajectory no writer ever produces.
        if ti > trajectories.len() {
            return Err(CsvError::BadRow { row });
        }
        if ti == trajectories.len() {
            trajectories.push(Trajectory::default());
        }
        trajectories[ti].fingerprints.push(fp);
    }

    Ok(EvalBucket { label, ci, time: SimTime::from_hours(time_h), trajectories })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::{office_plan, office_suite, SuiteConfig};

    #[test]
    fn roundtrip_reproduces_dataset_exactly() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let csv = to_csv(&suite.train);
        let back = from_csv("roundtrip", &csv).unwrap();
        assert_eq!(back.ap_count(), suite.train.ap_count());
        // Full-precision serialization: records must be bit-identical, not
        // merely close — `{:.4}` truncation silently moved positions.
        assert_eq!(back.records(), suite.train.records());
        assert_eq!(back.rps(), suite.train.rps());
    }

    #[test]
    fn roundtrip_preserves_awkward_floats() {
        // Values with no short decimal representation must survive exactly.
        let rps = vec![ReferencePoint { id: RpId(0), pos: Point2::new(1.0 / 3.0, 2.0_f64.sqrt()) }];
        let mut ds = FingerprintDataset::new("awkward", 2, rps.clone());
        ds.push(Fingerprint {
            rssi: vec![-63.123_456_f32, -0.000_012_3_f32],
            rp: RpId(0),
            pos: rps[0].pos,
            time: SimTime::from_hours(1e-7),
            ci: 3,
        });
        let back = from_csv("awkward", &to_csv(&ds)).unwrap();
        assert_eq!(back.records(), ds.records());
        assert_eq!(back.rps(), ds.rps());
    }

    #[test]
    fn bucket_roundtrip_reproduces_bucket_exactly() {
        let cfg = SuiteConfig { trajectories_per_bucket: 2, ..SuiteConfig::tiny(5) };
        let plan = office_plan(&cfg);
        let bucket = plan.bucket(7);
        let csv = bucket_to_csv(&bucket, plan.env().ap_count());
        let back = bucket_from_csv(&csv).unwrap();
        assert_eq!(back, bucket);
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(from_csv("x", "a,b,c\n").unwrap_err(), CsvError::BadHeader);
        assert_eq!(from_csv("x", "").unwrap_err(), CsvError::BadHeader);
    }

    #[test]
    fn rejects_bad_row() {
        let text = "ap000,rp,x,y,time_h,ci\n-40.0,0,0.0,0.0,1.0\n";
        assert_eq!(from_csv("x", text).unwrap_err(), CsvError::BadRow { row: 1 });
        let text2 = "ap000,rp,x,y,time_h,ci\n-40.0,zz,0.0,0.0,1.0,0\n";
        assert_eq!(from_csv("x", text2).unwrap_err(), CsvError::BadRow { row: 1 });
    }

    #[test]
    fn rejects_bad_bucket_prologue() {
        assert_eq!(bucket_from_csv("").unwrap_err(), CsvError::BadBucketMeta);
        assert_eq!(bucket_from_csv("dataset,CI01,1,8\n").unwrap_err(), CsvError::BadBucketMeta);
        assert_eq!(bucket_from_csv("bucket,CI01,one,8\n").unwrap_err(), CsvError::BadBucketMeta);
        // Valid prologue but dataset-style header (missing traj column).
        assert_eq!(
            bucket_from_csv("bucket,CI01,1,8\nap000,rp,x,y,time_h,ci\n").unwrap_err(),
            CsvError::BadHeader
        );
    }

    #[test]
    fn rejects_gapped_trajectory_tags() {
        // traj jumps 0 -> 2: no writer produces that; accepting it would
        // fabricate a phantom empty trajectory at index 1.
        let text = "bucket,CI01,1,8\n\
                    ap000,rp,x,y,time_h,ci,traj\n\
                    -40,0,0.5,1,8,1,0\n\
                    -41,0,0.5,1,8,1,2\n";
        assert_eq!(bucket_from_csv(text).unwrap_err(), CsvError::BadRow { row: 2 });
    }

    #[test]
    #[should_panic(expected = "AP-universe mismatch")]
    fn bucket_writer_rejects_wrong_ap_count() {
        let plan = office_plan(&SuiteConfig::tiny(5));
        let bucket = plan.bucket(0);
        let _ = bucket_to_csv(&bucket, plan.env().ap_count() + 1);
    }

    #[test]
    fn skips_blank_lines() {
        let text = "ap000,rp,x,y,time_h,ci\n-40.0,0,0.0,0.0,1.0,0\n\n";
        let ds = from_csv("x", text).unwrap();
        assert_eq!(ds.len(), 1);
    }
}
