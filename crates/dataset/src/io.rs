//! CSV import/export of fingerprint datasets.
//!
//! The format mirrors common public fingerprint datasets (one row per scan,
//! one column per AP, then label columns):
//!
//! ```text
//! ap000,ap001,...,rp,x,y,time_h,ci
//! -62.0,-100.0,...,3,4.50,1.00,8.000,0
//! ```

use std::fmt::Write as _;

use stone_radio::{Point2, SimTime};

use crate::dataset::FingerprintDataset;
use crate::types::{Fingerprint, ReferencePoint, RpId};

/// Errors produced when parsing a CSV dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CsvError {
    /// The header row is missing or malformed.
    BadHeader,
    /// A data row has the wrong number of fields or an unparsable value.
    BadRow {
        /// 1-based row number (excluding the header).
        row: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader => write!(f, "missing or malformed CSV header"),
            CsvError::BadRow { row } => write!(f, "malformed CSV data row {row}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Serializes a dataset to CSV.
#[must_use]
pub fn to_csv(ds: &FingerprintDataset) -> String {
    let mut out = String::new();
    for i in 0..ds.ap_count() {
        let _ = write!(out, "ap{i:03},");
    }
    out.push_str("rp,x,y,time_h,ci\n");
    for r in ds.records() {
        for v in &r.rssi {
            let _ = write!(out, "{v},");
        }
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4},{}",
            r.rp.0,
            r.pos.x,
            r.pos.y,
            r.time.hours(),
            r.ci
        );
    }
    out
}

/// Parses a dataset from CSV produced by [`to_csv`].
///
/// Reference-point positions are reconstructed from the first record seen
/// for each RP id.
///
/// # Errors
///
/// Returns [`CsvError`] on a malformed header or row.
pub fn from_csv(name: &str, text: &str) -> Result<FingerprintDataset, CsvError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(CsvError::BadHeader)?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() < 6 || cols[cols.len() - 5..] != ["rp", "x", "y", "time_h", "ci"] {
        return Err(CsvError::BadHeader);
    }
    let ap_count = cols.len() - 5;

    let mut rps: Vec<ReferencePoint> = Vec::new();
    let mut records: Vec<Fingerprint> = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = i + 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != ap_count + 5 {
            return Err(CsvError::BadRow { row });
        }
        let parse_f = |s: &str| s.trim().parse::<f64>().map_err(|_| CsvError::BadRow { row });
        let mut rssi = Vec::with_capacity(ap_count);
        for f in &fields[..ap_count] {
            rssi.push(parse_f(f)? as f32);
        }
        let rp =
            RpId(fields[ap_count].trim().parse::<u32>().map_err(|_| CsvError::BadRow { row })?);
        let pos = Point2::new(parse_f(fields[ap_count + 1])?, parse_f(fields[ap_count + 2])?);
        let time = SimTime::from_hours(parse_f(fields[ap_count + 3])?);
        let ci =
            fields[ap_count + 4].trim().parse::<usize>().map_err(|_| CsvError::BadRow { row })?;
        if !rps.iter().any(|r| r.id == rp) {
            rps.push(ReferencePoint { id: rp, pos });
        }
        records.push(Fingerprint { rssi, rp, pos, time, ci });
    }

    let mut ds = FingerprintDataset::new(name, ap_count, rps);
    for r in records {
        ds.push(r);
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::{office_suite, SuiteConfig};

    #[test]
    fn roundtrip_preserves_dataset() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let csv = to_csv(&suite.train);
        let back = from_csv("roundtrip", &csv).unwrap();
        assert_eq!(back.ap_count(), suite.train.ap_count());
        assert_eq!(back.len(), suite.train.len());
        for (a, b) in back.records().iter().zip(suite.train.records()) {
            assert_eq!(a.rp, b.rp);
            assert_eq!(a.ci, b.ci);
            assert_eq!(a.rssi, b.rssi);
            assert!((a.pos.x - b.pos.x).abs() < 1e-3);
            assert!((a.time.hours() - b.time.hours()).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(from_csv("x", "a,b,c\n").unwrap_err(), CsvError::BadHeader);
        assert_eq!(from_csv("x", "").unwrap_err(), CsvError::BadHeader);
    }

    #[test]
    fn rejects_bad_row() {
        let text = "ap000,rp,x,y,time_h,ci\n-40.0,0,0.0,0.0,1.0\n";
        assert_eq!(from_csv("x", text).unwrap_err(), CsvError::BadRow { row: 1 });
        let text2 = "ap000,rp,x,y,time_h,ci\n-40.0,zz,0.0,0.0,1.0,0\n";
        assert_eq!(from_csv("x", text2).unwrap_err(), CsvError::BadRow { row: 1 });
    }

    #[test]
    fn skips_blank_lines() {
        let text = "ap000,rp,x,y,time_h,ci\n-40.0,0,0.0,0.0,1.0,0\n\n";
        let ds = from_csv("x", text).unwrap();
        assert_eq!(ds.len(), 1);
    }
}
