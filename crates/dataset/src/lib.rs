//! # stone-dataset
//!
//! Long-term WiFi fingerprint datasets for the STONE reproduction.
//!
//! This crate owns the domain vocabulary shared by every localization
//! framework in the workspace:
//!
//! * [`Fingerprint`], [`ReferencePoint`], [`FingerprintDataset`] — labelled
//!   RSSI vectors collected at reference points (RPs) over time;
//! * [`Trajectory`] and [`EvalBucket`] — ordered test walks grouped into the
//!   paper's evaluation timeline (months for UJI, collection instances for
//!   Office/Basement);
//! * the [`Localizer`] / [`Framework`] traits implemented by STONE and all
//!   four baselines;
//! * suite builders ([`uji_suite`], [`office_suite`], [`basement_suite`])
//!   that drive the `stone-radio` simulator through the exact collection
//!   schedules of Sec. V.A (CI 0–2 at 8 AM/3 PM/9 PM of day 0, CI 3–8 daily,
//!   CI 9–15 monthly; UJI monthly over 15 months) including the AP-removal
//!   events of Fig. 4;
//! * sharded, streamable suite plans ([`uji_plan`], [`office_plan`],
//!   [`basement_plan`] → [`SuitePlan`]): every survey RP and every bucket
//!   is generated from its own seed-derived RNG stream, so construction
//!   parallelizes bitwise-deterministically and buckets can be materialized
//!   on demand or spilled to disk instead of held resident;
//! * CSV import/export ([`io`]).
//!
//! # Example
//!
//! ```
//! use stone_dataset::{office_suite, SuiteConfig};
//!
//! let suite = office_suite(&SuiteConfig::tiny(7));
//! assert_eq!(suite.buckets.len(), 16); // CI 0..=15
//! assert!(suite.train.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
pub mod io;
mod suites;
mod traits;
mod types;

pub use dataset::FingerprintDataset;
pub use suites::{
    basement_plan, basement_suite, office_plan, office_suite, uji_plan, uji_suite, EvalBucket,
    LongTermSuite, SuiteConfig, SuiteKind, SuitePlan,
};
pub use traits::{Framework, Localizer};
pub use types::{Fingerprint, ReferencePoint, RpId, Trajectory, MISSING_RSSI_DBM};
