//! Core fingerprinting types.

use stone_radio::{Point2, SimTime};

/// RSSI value recorded for an access point that was not observed in a scan,
/// in dBm (the paper's convention, Sec. IV.A).
pub const MISSING_RSSI_DBM: f32 = -100.0;

/// Stable identifier of a reference point (RP) on the floorplan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RpId(pub u32);

impl std::fmt::Display for RpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RP{:03}", self.0)
    }
}

/// A surveyed reference point: a labelled location on the floorplan.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReferencePoint {
    /// Identifier (the classification label).
    pub id: RpId,
    /// Surveyed position, in meters.
    pub pos: Point2,
}

/// One WiFi scan annotated with ground truth.
///
/// `rssi` has one entry per AP in the environment's universe, in dBm;
/// unobserved APs hold [`MISSING_RSSI_DBM`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fingerprint {
    /// RSSI per AP, in dBm; -100 marks a missing AP.
    pub rssi: Vec<f32>,
    /// Reference point at (or nearest to) which the scan was captured.
    pub rp: RpId,
    /// Ground-truth capture position, in meters.
    pub pos: Point2,
    /// Capture time.
    pub time: SimTime,
    /// Collection-instance index (months for UJI; CI 0–15 for
    /// Office/Basement).
    pub ci: usize,
}

impl Fingerprint {
    /// Number of APs observed (RSSI above the missing sentinel).
    #[must_use]
    pub fn visible_ap_count(&self) -> usize {
        self.rssi.iter().filter(|&&v| v > MISSING_RSSI_DBM).count()
    }

    /// Indices of observed APs.
    #[must_use]
    pub fn visible_aps(&self) -> Vec<usize> {
        self.rssi
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (v > MISSING_RSSI_DBM).then_some(i))
            .collect()
    }
}

/// An ordered walk along the floorplan: consecutive scans captured while a
/// user moves RP-to-RP. Non-sequential frameworks localize each entry
/// independently; GIFT consumes consecutive pairs.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trajectory {
    /// Scans in walk order.
    pub fingerprints: Vec<Fingerprint>,
}

impl Trajectory {
    /// Creates a trajectory from ordered fingerprints.
    #[must_use]
    pub fn new(fingerprints: Vec<Fingerprint>) -> Self {
        Self { fingerprints }
    }

    /// Number of scans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Returns `true` when the trajectory holds no scans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// Ground-truth start position.
    ///
    /// # Panics
    ///
    /// Panics on an empty trajectory.
    #[must_use]
    pub fn start_pos(&self) -> Point2 {
        self.fingerprints.first().expect("trajectory must not be empty").pos
    }

    /// Total ground-truth path length, in meters.
    #[must_use]
    pub fn path_length_m(&self) -> f64 {
        self.fingerprints.windows(2).map(|w| w[0].pos.distance(w[1].pos)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(rssi: Vec<f32>, x: f64) -> Fingerprint {
        Fingerprint { rssi, rp: RpId(0), pos: Point2::new(x, 0.0), time: SimTime::start(), ci: 0 }
    }

    #[test]
    fn visible_ap_counting() {
        let f = fp(vec![-40.0, MISSING_RSSI_DBM, -80.0], 0.0);
        assert_eq!(f.visible_ap_count(), 2);
        assert_eq!(f.visible_aps(), vec![0, 2]);
    }

    #[test]
    fn trajectory_geometry() {
        let t = Trajectory::new(vec![fp(vec![], 0.0), fp(vec![], 1.0), fp(vec![], 3.0)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.start_pos(), Point2::new(0.0, 0.0));
        assert_eq!(t.path_length_m(), 3.0);
    }

    #[test]
    fn rp_display() {
        assert_eq!(RpId(4).to_string(), "RP004");
    }
}
