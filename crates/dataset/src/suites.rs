//! Long-term evaluation suites mirroring the paper's three test venues and
//! collection timelines (Sec. V.A, Fig. 3).
//!
//! # Sharded generation
//!
//! Suite construction is *sharded*: every independently generatable unit —
//! each reference point's offline survey, each evaluation bucket — draws
//! from its own RNG stream, derived purely from `(master seed, unit
//! identity)` via [`stone_radio::derive_stream_seed`]. No RNG state is
//! threaded between units, so:
//!
//! * units can be generated on any thread, in any order, with
//!   **bitwise-identical** output at any `STONE_THREADS` value (pinned by
//!   `tests/parallel_determinism.rs`);
//! * a single bucket can be materialized **on demand** without generating
//!   the ones before it ([`SuitePlan::bucket`]), which is what makes the
//!   streaming API ([`SuitePlan::buckets_iter`], [`SuitePlan::spill_buckets`])
//!   possible: paper-scale sweeps no longer hold the whole timeline
//!   resident.
//!
//! [`uji_suite`]/[`office_suite`]/[`basement_suite`] remain the one-call
//! materializing builders; they are now thin wrappers over
//! [`uji_plan`]/[`office_plan`]/[`basement_plan`] + [`SuitePlan::build`].

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_radio::{derive_stream_seed, presets, ApSchedule, Point2, RadioEnvironment, SimTime};

use crate::dataset::FingerprintDataset;
use crate::types::{Fingerprint, ReferencePoint, RpId, Trajectory, MISSING_RSSI_DBM};

/// Which of the paper's three venues a suite models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// UJI-like library hall, monthly buckets over 15 months.
    Uji,
    /// Office corridor path, CI 0–15 over ≈8 months.
    Office,
    /// Basement corridor path, CI 0–15 over ≈8 months.
    Basement,
}

impl SuiteKind {
    /// Stable venue tag folded into every RNG stream of the suite, so the
    /// same master seed yields unrelated streams across venues.
    fn venue_tag(self) -> u64 {
        match self {
            SuiteKind::Uji => 0,
            SuiteKind::Office => 1,
            SuiteKind::Basement => 2,
        }
    }
}

impl std::fmt::Display for SuiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteKind::Uji => write!(f, "UJI"),
            SuiteKind::Office => write!(f, "Office"),
            SuiteKind::Basement => write!(f, "Basement"),
        }
    }
}

/// Configuration shared by the suite builders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteConfig {
    /// Master seed for the environment, schedules, and collection noise.
    pub seed: u64,
    /// Fingerprints per RP in the offline (training) set. `None` uses the
    /// paper's value for the suite (9 for UJI, 6 for Office/Basement).
    pub train_fpr: Option<usize>,
    /// Test trajectories generated per evaluation bucket.
    pub trajectories_per_bucket: usize,
    /// Keep every `rp_stride`-th reference point (1 = paper-scale paths;
    /// larger values shrink the suite for fast unit tests).
    pub rp_stride: usize,
}

impl SuiteConfig {
    /// Paper-scale configuration.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed, train_fpr: None, trajectories_per_bucket: 2, rp_stride: 1 }
    }

    /// A miniature configuration for unit tests: sparse RPs, one trajectory
    /// per bucket.
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        Self { seed, train_fpr: Some(3), trajectories_per_bucket: 1, rp_stride: 6 }
    }

    /// Returns the config with a different training FPR (Fig. 7 sweeps).
    #[must_use]
    pub fn with_train_fpr(mut self, fpr: usize) -> Self {
        self.train_fpr = Some(fpr);
        self
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

/// One evaluation time bucket: a month (UJI) or collection instance
/// (Office/Basement) with its test trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalBucket {
    /// Display label ("M03", "CI07", ...).
    pub label: String,
    /// Bucket index (month number or CI number).
    pub ci: usize,
    /// Nominal collection time of the bucket.
    pub time: SimTime,
    /// Test walks captured in this bucket.
    pub trajectories: Vec<Trajectory>,
}

impl EvalBucket {
    /// All fingerprints across the bucket's trajectories.
    #[must_use]
    pub fn fingerprints(&self) -> Vec<&Fingerprint> {
        self.trajectories.iter().flat_map(|t| &t.fingerprints).collect()
    }

    /// Per-AP visibility across the bucket (the rows of the paper's Fig. 4).
    #[must_use]
    pub fn ap_visibility(&self, ap_count: usize) -> Vec<bool> {
        let mut seen = vec![false; ap_count];
        for fp in self.fingerprints() {
            for (i, &v) in fp.rssi.iter().enumerate() {
                if v > MISSING_RSSI_DBM {
                    seen[i] = true;
                }
            }
        }
        seen
    }

    /// Bare RSSI vectors of the bucket (unlabeled adaptation data for
    /// frameworks that re-train, like LT-KNN).
    #[must_use]
    pub fn raw_scans(&self) -> Vec<Vec<f32>> {
        self.fingerprints().into_iter().map(|f| f.rssi.clone()).collect()
    }
}

/// A complete long-term evaluation suite: environment, offline training set
/// and the timeline of evaluation buckets.
#[derive(Debug, Clone)]
pub struct LongTermSuite {
    /// Venue kind.
    pub kind: SuiteKind,
    /// Human-readable name.
    pub name: String,
    /// The simulated radio environment (already carrying its AP schedule).
    pub env: RadioEnvironment,
    /// Offline-phase training data (day 0).
    pub train: FingerprintDataset,
    /// Evaluation buckets in chronological order.
    pub buckets: Vec<EvalBucket>,
}

impl LongTermSuite {
    /// Bucket labels in order (the x-axis of Figs. 5/6).
    #[must_use]
    pub fn bucket_labels(&self) -> Vec<String> {
        self.buckets.iter().map(|b| b.label.clone()).collect()
    }

    /// Visibility matrix over buckets × APs (the paper's Fig. 4).
    #[must_use]
    pub fn visibility_matrix(&self) -> Vec<Vec<bool>> {
        self.buckets.iter().map(|b| b.ap_visibility(self.train.ap_count())).collect()
    }
}

/// RNG-stream domains. The stream tag of a generation unit is
/// `(domain << 56) | (venue << 48) | unit index`, which is collision-free
/// by construction (indices are far below 2⁴⁸).
const DOMAIN_SETUP: u64 = 1;
const DOMAIN_SURVEY: u64 = 2;
const DOMAIN_BUCKET: u64 = 3;

/// The RNG of one generation unit: a pure function of the master seed and
/// the unit's identity, never of scheduling or of other units.
fn stream_rng(seed: u64, domain: u64, kind: SuiteKind, index: u64) -> StdRng {
    debug_assert!(index < 1 << 48, "unit index overflows the stream tag");
    let tag = (domain << 56) | (kind.venue_tag() << 48) | index;
    StdRng::seed_from_u64(derive_stream_seed(seed, tag))
}

/// Scans the environment at `pos`/`t` into a dense RSSI vector with -100 for
/// missing APs.
fn scan_vector(env: &RadioEnvironment, pos: Point2, t: SimTime, rng: &mut StdRng) -> Vec<f32> {
    env.scan(pos, t, rng).into_iter().map(|v| v.map_or(MISSING_RSSI_DBM, |x| x as f32)).collect()
}

/// Collects `fpr` stationary fingerprints at one RP (its shard of the
/// offline survey).
fn survey_rp(
    env: &RadioEnvironment,
    rp: &ReferencePoint,
    t: SimTime,
    fpr: usize,
    rng: &mut StdRng,
) -> Vec<Fingerprint> {
    (0..fpr)
        .map(|k| {
            // Paper: 6 fingerprints per RP within a 30 s window.
            let t_k = t.plus_hours(k as f64 * 5.0 / 3600.0);
            Fingerprint {
                rssi: scan_vector(env, rp.pos, t_k, rng),
                rp: rp.id,
                pos: rp.pos,
                time: t_k,
                ci: 0,
            }
        })
        .collect()
}

/// Walks the RP sequence (forward or reversed), scanning at each RP; the
/// walk advances ~10 s per RP like a real user capturing while moving.
fn walk_trajectory(
    env: &RadioEnvironment,
    rps: &[ReferencePoint],
    t_start: SimTime,
    ci: usize,
    reverse: bool,
    rng: &mut StdRng,
) -> Trajectory {
    let order: Vec<&ReferencePoint> =
        if reverse { rps.iter().rev().collect() } else { rps.iter().collect() };
    let fps = order
        .into_iter()
        .enumerate()
        .map(|(k, rp)| {
            let t_k = t_start.plus_hours(k as f64 * 10.0 / 3600.0);
            Fingerprint {
                rssi: scan_vector(env, rp.pos, t_k, rng),
                rp: rp.id,
                pos: rp.pos,
                time: t_k,
                ci,
            }
        })
        .collect();
    Trajectory::new(fps)
}

/// Serpentine ordering of a grid of RPs (row by row, alternating direction)
/// so UJI trajectories are physically contiguous walks.
fn serpentine(cols: usize, rps: Vec<ReferencePoint>) -> Vec<ReferencePoint> {
    let mut out = Vec::with_capacity(rps.len());
    for (r, chunk) in rps.chunks(cols).enumerate() {
        if r % 2 == 0 {
            out.extend_from_slice(chunk);
        } else {
            out.extend(chunk.iter().rev().copied());
        }
    }
    out
}

/// A fully-specified suite whose data has **not** been generated yet: the
/// environment, RP path, collection timeline and seed — everything needed to
/// materialize any unit of the suite independently of the others.
///
/// The plan is the sharding boundary. [`SuitePlan::build`] materializes
/// everything (buckets in parallel); [`SuitePlan::bucket`] materializes one
/// bucket on demand; [`SuitePlan::buckets_iter`] streams buckets one at a
/// time so only a single bucket is ever resident; and
/// [`SuitePlan::spill_buckets`] streams them straight to CSV files on disk.
///
/// # Example
///
/// ```
/// use stone_dataset::{office_plan, SuiteConfig};
///
/// let plan = office_plan(&SuiteConfig::tiny(7));
/// assert_eq!(plan.bucket_count(), 16); // CI 0..=15
/// // Materialize only the last bucket — no other bucket is generated.
/// let last = plan.bucket(15);
/// assert_eq!(last.label, "CI15");
/// ```
#[derive(Debug, Clone)]
pub struct SuitePlan {
    kind: SuiteKind,
    name: String,
    env: RadioEnvironment,
    rps: Vec<ReferencePoint>,
    /// Offline-survey collection time.
    train_t0: SimTime,
    /// Resolved fingerprints-per-RP of the offline survey.
    train_fpr: usize,
    /// Evaluation timeline: `(label, ci, walk start time)` per bucket.
    timeline: Vec<(String, usize, SimTime)>,
    trajectories_per_bucket: usize,
    seed: u64,
}

impl SuitePlan {
    /// Venue kind.
    #[must_use]
    pub fn kind(&self) -> SuiteKind {
        self.kind
    }

    /// Human-readable suite name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulated radio environment (already carrying its AP schedule).
    #[must_use]
    pub fn env(&self) -> &RadioEnvironment {
        &self.env
    }

    /// The reference points of the suite's path, in walk order.
    #[must_use]
    pub fn rps(&self) -> &[ReferencePoint] {
        &self.rps
    }

    /// Number of evaluation buckets in the timeline.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.timeline.len()
    }

    /// Materializes the offline training set. Each RP's stationary survey
    /// is an independent generation unit (its RNG stream is tagged by the
    /// RP id), fanned out over `STONE_THREADS` threads; output is
    /// bitwise-identical at any thread count.
    #[must_use]
    pub fn train(&self) -> FingerprintDataset {
        let per_rp: Vec<Vec<Fingerprint>> = stone_par::par_map(&self.rps, |_, rp| {
            let mut rng = stream_rng(self.seed, DOMAIN_SURVEY, self.kind, u64::from(rp.id.0));
            survey_rp(&self.env, rp, self.train_t0, self.train_fpr, &mut rng)
        });
        let mut train = FingerprintDataset::new(
            format!("{}-train", self.name.to_lowercase()),
            self.env.ap_count(),
            self.rps.clone(),
        );
        for fp in per_rp.into_iter().flatten() {
            train.push(fp);
        }
        train
    }

    /// Materializes evaluation bucket `i` — a pure function of
    /// `(plan, i)`: the bucket's RNG stream is tagged by its CI index, so
    /// no other bucket needs to exist for this one to be exact.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range of the timeline.
    #[must_use]
    pub fn bucket(&self, i: usize) -> EvalBucket {
        let (label, ci, time) = &self.timeline[i];
        let mut rng = stream_rng(self.seed, DOMAIN_BUCKET, self.kind, *ci as u64);
        let trajectories = (0..self.trajectories_per_bucket.max(1))
            .map(|k| {
                // Stagger walk start times by 2 min and alternate
                // direction so buckets aren't a single snapshot.
                let t = time.plus_hours(k as f64 * 2.0 / 60.0);
                walk_trajectory(&self.env, &self.rps, t, *ci, k % 2 == 1, &mut rng)
            })
            .collect();
        EvalBucket { label: label.clone(), ci: *ci, time: *time, trajectories }
    }

    /// Streams the evaluation buckets in chronological order, materializing
    /// each on demand: only the bucket currently yielded is resident. A
    /// streamed bucket is bitwise-identical to its [`SuitePlan::build`]
    /// twin.
    pub fn buckets_iter(&self) -> impl Iterator<Item = EvalBucket> + '_ {
        (0..self.bucket_count()).map(|i| self.bucket(i))
    }

    /// Streams every bucket to `dir` as one CSV file per bucket (named
    /// `<suite>_<label>.csv`, format of [`crate::io::bucket_to_csv`]),
    /// returning the written paths in timeline order. At most one bucket is
    /// resident at a time — the disk-spill path for paper-scale sweeps.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating `dir` or writing a file.
    pub fn spill_buckets(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(self.bucket_count());
        for bucket in self.buckets_iter() {
            let path = dir.join(format!("{}_{}.csv", self.name.to_lowercase(), bucket.label));
            std::fs::write(&path, crate::io::bucket_to_csv(&bucket, self.env.ap_count()))?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// Materializes the whole suite: the offline survey (sharded per RP)
    /// and every evaluation bucket, buckets fanned out over
    /// `STONE_THREADS` threads. Bitwise-identical at any thread count.
    #[must_use]
    pub fn build(&self) -> LongTermSuite {
        let train = self.train();
        let buckets = stone_par::par_map(&self.timeline, |i, _| self.bucket(i));
        LongTermSuite {
            kind: self.kind,
            name: self.name.clone(),
            env: self.env.clone(),
            train,
            buckets,
        }
    }
}

/// Plans the UJI-like suite: RP grid in an open hall, training on day 0
/// (up to 9 FPR), 15 monthly evaluation buckets, ~50% AP removal at month
/// 11 (Sec. V.A.1, V.B).
#[must_use]
pub fn uji_plan(cfg: &SuiteConfig) -> SuitePlan {
    let mut env = presets::uji_hall_environment(cfg.seed);
    let mut rng = stream_rng(cfg.seed, DOMAIN_SETUP, SuiteKind::Uji, 0);

    // 7 × 7 grid, 4 m pitch, inside the hall.
    let cols = 7usize;
    let mut rps = Vec::new();
    for r in 0..7usize {
        for c in 0..cols {
            rps.push(ReferencePoint {
                id: RpId((r * cols + c) as u32),
                pos: Point2::new(4.0 + c as f64 * 4.0, 3.0 + r as f64 * 4.0),
            });
        }
    }
    let rps: Vec<ReferencePoint> =
        serpentine(cols, rps).into_iter().step_by(cfg.rp_stride.max(1)).collect();

    // ~50% of APs disappear around month 11; light replacement churn before.
    let ap_ids: Vec<_> = env.aps().iter().map(|a| a.id).collect();
    let mut schedule = ApSchedule::mass_removal(&ap_ids, 0.5, SimTime::from_months(11.0), &mut rng);
    schedule.add_scattered_replacements(
        &ap_ids,
        0.08,
        SimTime::from_months(2.0),
        SimTime::from_months(10.0),
        &mut rng,
    );
    env.set_schedule(schedule);

    let timeline: Vec<(String, usize, SimTime)> = (1..=15)
        .map(|m| (format!("M{m:02}"), m, SimTime::from_months(m as f64).plus_hours(10.0)))
        .collect();

    SuitePlan {
        kind: SuiteKind::Uji,
        name: "UJI".into(),
        env,
        rps,
        train_t0: SimTime::from_hours(10.0),
        train_fpr: cfg.train_fpr.unwrap_or(9),
        timeline,
        trajectories_per_bucket: cfg.trajectories_per_bucket,
        seed: cfg.seed,
    }
}

/// Builds the UJI-like suite (see [`uji_plan`]).
#[must_use]
pub fn uji_suite(cfg: &SuiteConfig) -> LongTermSuite {
    uji_plan(cfg).build()
}

/// The Office/Basement CI timeline (Sec. V.A.2): CI 0–2 on day 0 at
/// 8 AM / 3 PM / 9 PM, CI 3–8 on consecutive days, CI 9–15 monthly.
fn ci_timeline() -> Vec<(String, usize, SimTime)> {
    (0..16)
        .map(|ci| {
            let t = match ci {
                0 => SimTime::from_hours(8.0),
                1 => SimTime::from_hours(15.0),
                2 => SimTime::from_hours(21.0),
                3..=8 => SimTime::from_days((ci - 2) as f64).plus_hours(10.0),
                _ => SimTime::from_days(6.0 + 30.0 * (ci - 8) as f64).plus_hours(10.0),
            };
            (format!("CI{ci:02}"), ci, t)
        })
        .collect()
}

fn corridor_plan(
    kind: SuiteKind,
    mut env: RadioEnvironment,
    length_m: f64,
    cfg: &SuiteConfig,
) -> SuitePlan {
    let mut rng = stream_rng(cfg.seed, DOMAIN_SETUP, kind, 0);

    // RPs every 1 m along the corridor centerline (paper: measurements 1 m
    // apart), thinned by `rp_stride` for tiny configs.
    let n = length_m.floor() as usize;
    let rps: Vec<ReferencePoint> = (0..n)
        .map(|k| ReferencePoint { id: RpId(k as u32), pos: Point2::new(0.5 + k as f64, 1.0) })
        .step_by(cfg.rp_stride.max(1))
        .collect();

    let timeline = ci_timeline();
    // ~20% of APs disappear after CI 11 (Fig. 4), plus light churn late in
    // the deployment.
    let ci11 = timeline[11].2;
    let ap_ids: Vec<_> = env.aps().iter().map(|a| a.id).collect();
    let mut schedule = ApSchedule::mass_removal(&ap_ids, 0.2, ci11, &mut rng);
    schedule.add_scattered_replacements(&ap_ids, 0.05, ci11, timeline[15].2, &mut rng);
    env.set_schedule(schedule);

    // Training: a subset of CI 0 (early morning). Evaluation walks start
    // half an hour after the stationary survey so the CI 0 bucket tests
    // *unseen* fingerprints from the same instance.
    let train_t0 = timeline[0].2;
    let eval_timeline: Vec<(String, usize, SimTime)> =
        timeline.iter().map(|(l, ci, t)| (l.clone(), *ci, t.plus_hours(0.5))).collect();

    SuitePlan {
        kind,
        name: format!("{kind}"),
        env,
        rps,
        train_t0,
        train_fpr: cfg.train_fpr.unwrap_or(6),
        timeline: eval_timeline,
        trajectories_per_bucket: cfg.trajectories_per_bucket,
        seed: cfg.seed,
    }
}

/// Plans the Office-like suite: a 48 m corridor with drywall offices,
/// CI 0–15 timeline, ~20% AP removal after CI 11.
#[must_use]
pub fn office_plan(cfg: &SuiteConfig) -> SuitePlan {
    corridor_plan(SuiteKind::Office, presets::office_environment(cfg.seed), 48.0, cfg)
}

/// Builds the Office-like suite (see [`office_plan`]).
#[must_use]
pub fn office_suite(cfg: &SuiteConfig) -> LongTermSuite {
    office_plan(cfg).build()
}

/// Plans the Basement-like suite: a 61 m corridor through metal-heavy labs,
/// CI 0–15 timeline, ~20% AP removal after CI 11.
#[must_use]
pub fn basement_plan(cfg: &SuiteConfig) -> SuitePlan {
    corridor_plan(SuiteKind::Basement, presets::basement_environment(cfg.seed), 61.0, cfg)
}

/// Builds the Basement-like suite (see [`basement_plan`]).
#[must_use]
pub fn basement_suite(cfg: &SuiteConfig) -> LongTermSuite {
    basement_plan(cfg).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_timeline_matches_paper() {
        let tl = ci_timeline();
        assert_eq!(tl.len(), 16);
        // CI 0-2: same day, 8 AM / 3 PM / 9 PM.
        assert_eq!(tl[0].2.hours(), 8.0);
        assert_eq!(tl[1].2.hours(), 15.0);
        assert_eq!(tl[2].2.hours(), 21.0);
        // CI 3-8: consecutive days.
        for (ci, entry) in tl.iter().enumerate().take(9).skip(3) {
            assert!((entry.2.days() - (ci - 2) as f64).abs() < 0.5);
        }
        // CI 9-15: ~30 days apart.
        for ci in 10..=15 {
            let gap = tl[ci].2.days() - tl[ci - 1].2.days();
            assert!((gap - 30.0).abs() < 0.1, "gap {gap} at CI{ci}");
        }
    }

    #[test]
    fn tiny_office_suite_shape() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        assert_eq!(suite.buckets.len(), 16);
        assert_eq!(suite.kind, SuiteKind::Office);
        assert_eq!(suite.train.records_per_rp().values().max(), Some(&3));
        // Stride 6 over 48 RPs -> 8 RPs.
        assert_eq!(suite.train.rps().len(), 8);
        for b in &suite.buckets {
            assert_eq!(b.trajectories.len(), 1);
            assert_eq!(b.trajectories[0].len(), 8);
        }
    }

    #[test]
    fn uji_suite_has_15_monthly_buckets() {
        let suite = uji_suite(&SuiteConfig::tiny(2));
        assert_eq!(suite.buckets.len(), 15);
        assert_eq!(suite.kind, SuiteKind::Uji);
        for (i, b) in suite.buckets.iter().enumerate() {
            assert!((b.time.months() - (i + 1) as f64).abs() < 0.1);
        }
    }

    #[test]
    fn ap_visibility_drops_after_removal_event() {
        let suite = office_suite(&SuiteConfig::tiny(3));
        let vis = suite.visibility_matrix();
        let count = |row: &Vec<bool>| row.iter().filter(|&&b| b).count();
        let before = count(&vis[9]);
        let after = count(&vis[14]);
        assert!(
            (after as f64) < before as f64 * 0.95,
            "visibility did not drop: {before} -> {after}"
        );
    }

    #[test]
    fn uji_visibility_halves_after_month_11() {
        let suite = uji_suite(&SuiteConfig::tiny(4));
        let vis = suite.visibility_matrix();
        let count = |idx: usize| vis[idx].iter().filter(|&&b| b).count();
        // Bucket index 9 = month 10 (pre-removal), 11 = month 12 (post).
        let before = count(9);
        let after = count(11);
        assert!(
            (after as f64) < before as f64 * 0.75,
            "UJI visibility did not collapse: {before} -> {after}"
        );
    }

    #[test]
    fn training_labels_cover_all_rps() {
        let suite = basement_suite(&SuiteConfig::tiny(5));
        let per_rp = suite.train.records_per_rp();
        assert_eq!(per_rp.len(), suite.train.rps().len());
    }

    #[test]
    fn trajectories_alternate_direction() {
        let cfg = SuiteConfig { trajectories_per_bucket: 2, ..SuiteConfig::tiny(6) };
        let suite = office_suite(&cfg);
        let b = &suite.buckets[0];
        let first = &b.trajectories[0].fingerprints;
        let second = &b.trajectories[1].fingerprints;
        assert_eq!(first.first().unwrap().rp, second.last().unwrap().rp);
    }

    #[test]
    fn suites_are_deterministic_per_seed() {
        let a = office_suite(&SuiteConfig::tiny(9));
        let b = office_suite(&SuiteConfig::tiny(9));
        assert_eq!(a.train.records(), b.train.records());
        assert_eq!(
            a.buckets[5].trajectories[0].fingerprints,
            b.buckets[5].trajectories[0].fingerprints
        );
    }

    #[test]
    fn on_demand_bucket_equals_built_bucket() {
        // A bucket is a pure function of (plan, index): materializing
        // bucket 12 alone must reproduce the fully-built suite's bucket 12.
        let cfg = SuiteConfig::tiny(10);
        let plan = office_plan(&cfg);
        let suite = plan.build();
        assert_eq!(plan.bucket(12), suite.buckets[12]);
        assert_eq!(plan.bucket(0), suite.buckets[0]);
    }

    #[test]
    fn streamed_buckets_match_built_suite() {
        let cfg = SuiteConfig::tiny(11);
        let plan = uji_plan(&cfg);
        let suite = plan.build();
        let streamed: Vec<EvalBucket> = plan.buckets_iter().collect();
        assert_eq!(streamed, suite.buckets);
        assert_eq!(plan.train().records(), suite.train.records());
    }

    #[test]
    fn plan_exposes_suite_shape() {
        let plan = basement_plan(&SuiteConfig::tiny(12));
        assert_eq!(plan.kind(), SuiteKind::Basement);
        assert_eq!(plan.name(), "Basement");
        assert_eq!(plan.bucket_count(), 16);
        assert_eq!(plan.rps().len(), plan.build().train.rps().len());
        assert_eq!(plan.env().ap_count(), plan.build().train.ap_count());
    }

    #[test]
    fn buckets_use_independent_rng_streams() {
        // Regenerating bucket 5 must not depend on whether buckets 0..5
        // were generated first — pin that by comparing against a fresh plan
        // that only ever touches bucket 5.
        let cfg = SuiteConfig::tiny(13);
        let all: Vec<EvalBucket> = office_plan(&cfg).buckets_iter().collect();
        let only_five = office_plan(&cfg).bucket(5);
        assert_eq!(only_five, all[5]);
    }

    #[test]
    fn serpentine_orders_grid_contiguously() {
        let rps: Vec<ReferencePoint> = (0..6)
            .map(|k| ReferencePoint {
                id: RpId(k),
                pos: Point2::new(f64::from(k % 3), f64::from(k / 3)),
            })
            .collect();
        let s = serpentine(3, rps);
        // Max step between consecutive RPs must be 1 m (grid pitch).
        for w in s.windows(2) {
            assert!(w[0].pos.distance(w[1].pos) <= 1.0 + 1e-9);
        }
    }
}
