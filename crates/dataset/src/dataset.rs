//! The fingerprint dataset container.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;
use stone_radio::Point2;

use crate::types::{Fingerprint, ReferencePoint, RpId, MISSING_RSSI_DBM};

/// A labelled fingerprint dataset over a fixed AP universe.
///
/// Rows are [`Fingerprint`]s; the RP list doubles as the label set. This is
/// the "fingerprint database" of the paper's Fig. 2.
///
/// # Example
///
/// ```
/// use stone_dataset::{office_suite, SuiteConfig};
///
/// let suite = office_suite(&SuiteConfig::tiny(1));
/// let per_rp = suite.train.records_per_rp();
/// assert!(per_rp.values().all(|&n| n >= 1));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FingerprintDataset {
    name: String,
    ap_count: usize,
    rps: Vec<ReferencePoint>,
    records: Vec<Fingerprint>,
}

impl FingerprintDataset {
    /// Creates an empty dataset over `ap_count` APs and the given RP set.
    #[must_use]
    pub fn new(name: impl Into<String>, ap_count: usize, rps: Vec<ReferencePoint>) -> Self {
        Self { name: name.into(), ap_count, rps, records: Vec::new() }
    }

    /// Dataset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size of the AP universe (the fingerprint vector length).
    #[must_use]
    pub fn ap_count(&self) -> usize {
        self.ap_count
    }

    /// The reference points (label set).
    #[must_use]
    pub fn rps(&self) -> &[ReferencePoint] {
        &self.rps
    }

    /// All records.
    #[must_use]
    pub fn records(&self) -> &[Fingerprint] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the dataset holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics when the fingerprint's RSSI length differs from the dataset's
    /// AP universe, or its RP is unknown.
    pub fn push(&mut self, fp: Fingerprint) {
        assert_eq!(fp.rssi.len(), self.ap_count, "fingerprint AP-universe mismatch");
        assert!(self.rps.iter().any(|rp| rp.id == fp.rp), "unknown RP {}", fp.rp);
        self.records.push(fp);
    }

    /// Position of an RP.
    #[must_use]
    pub fn rp_position(&self, id: RpId) -> Option<Point2> {
        self.rps.iter().find(|rp| rp.id == id).map(|rp| rp.pos)
    }

    /// Dense label index of an RP (position in [`FingerprintDataset::rps`]),
    /// used by classifier baselines.
    #[must_use]
    pub fn rp_index(&self, id: RpId) -> Option<usize> {
        self.rps.iter().position(|rp| rp.id == id)
    }

    /// Record count per RP.
    #[must_use]
    pub fn records_per_rp(&self) -> BTreeMap<RpId, usize> {
        let mut map = BTreeMap::new();
        for r in &self.records {
            *map.entry(r.rp).or_insert(0) += 1;
        }
        map
    }

    /// Returns a copy keeping at most `fpr` fingerprints per RP, sampled
    /// without replacement (the paper's FPR sensitivity axis, Fig. 7).
    ///
    /// # Panics
    ///
    /// Panics when `fpr` is zero.
    #[must_use]
    pub fn subsample_fpr<R: Rng>(&self, fpr: usize, rng: &mut R) -> Self {
        assert!(fpr > 0, "fpr must be at least 1");
        let mut by_rp: BTreeMap<RpId, Vec<&Fingerprint>> = BTreeMap::new();
        for r in &self.records {
            by_rp.entry(r.rp).or_default().push(r);
        }
        let mut out = Self::new(self.name.clone(), self.ap_count, self.rps.clone());
        for (_, mut fps) in by_rp {
            fps.shuffle(rng);
            for fp in fps.into_iter().take(fpr) {
                out.records.push(fp.clone());
            }
        }
        out
    }

    /// Mean number of visible APs per record (0 when empty).
    #[must_use]
    pub fn mean_visible_aps(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.visible_ap_count() as f64).sum::<f64>()
            / self.records.len() as f64
    }

    /// Per-AP visibility: `true` when the AP is observed in at least one
    /// record.
    #[must_use]
    pub fn ap_visibility(&self) -> Vec<bool> {
        let mut seen = vec![false; self.ap_count];
        for r in &self.records {
            for (i, &v) in r.rssi.iter().enumerate() {
                if v > MISSING_RSSI_DBM {
                    seen[i] = true;
                }
            }
        }
        seen
    }

    /// Bare RSSI vectors of all records (used as unlabeled adaptation data).
    #[must_use]
    pub fn raw_scans(&self) -> Vec<Vec<f32>> {
        self.records.iter().map(|r| r.rssi.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stone_radio::SimTime;

    fn sample_dataset() -> FingerprintDataset {
        let rps = vec![
            ReferencePoint { id: RpId(0), pos: Point2::new(0.0, 0.0) },
            ReferencePoint { id: RpId(1), pos: Point2::new(1.0, 0.0) },
        ];
        let mut ds = FingerprintDataset::new("t", 3, rps);
        for k in 0..5 {
            ds.push(Fingerprint {
                rssi: vec![-40.0 - k as f32, MISSING_RSSI_DBM, -70.0],
                rp: RpId(k % 2),
                pos: Point2::new(f64::from(k % 2), 0.0),
                time: SimTime::start(),
                ci: 0,
            });
        }
        ds
    }

    #[test]
    fn push_and_counts() {
        let ds = sample_dataset();
        assert_eq!(ds.len(), 5);
        let per_rp = ds.records_per_rp();
        assert_eq!(per_rp[&RpId(0)], 3);
        assert_eq!(per_rp[&RpId(1)], 2);
    }

    #[test]
    #[should_panic(expected = "AP-universe mismatch")]
    fn push_rejects_wrong_width() {
        let mut ds = sample_dataset();
        ds.push(Fingerprint {
            rssi: vec![-40.0],
            rp: RpId(0),
            pos: Point2::new(0.0, 0.0),
            time: SimTime::start(),
            ci: 0,
        });
    }

    #[test]
    #[should_panic(expected = "unknown RP")]
    fn push_rejects_unknown_rp() {
        let mut ds = sample_dataset();
        ds.push(Fingerprint {
            rssi: vec![-40.0, -50.0, -60.0],
            rp: RpId(9),
            pos: Point2::new(0.0, 0.0),
            time: SimTime::start(),
            ci: 0,
        });
    }

    #[test]
    fn subsample_caps_per_rp() {
        let ds = sample_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let sub = ds.subsample_fpr(1, &mut rng);
        assert_eq!(sub.len(), 2);
        assert!(sub.records_per_rp().values().all(|&n| n == 1));
        // Oversized fpr keeps everything.
        let all = ds.subsample_fpr(100, &mut rng);
        assert_eq!(all.len(), ds.len());
    }

    #[test]
    fn visibility_and_means() {
        let ds = sample_dataset();
        assert_eq!(ds.ap_visibility(), vec![true, false, true]);
        assert_eq!(ds.mean_visible_aps(), 2.0);
    }

    #[test]
    fn rp_lookups() {
        let ds = sample_dataset();
        assert_eq!(ds.rp_position(RpId(1)), Some(Point2::new(1.0, 0.0)));
        assert_eq!(ds.rp_index(RpId(1)), Some(1));
        assert_eq!(ds.rp_position(RpId(5)), None);
    }
}
