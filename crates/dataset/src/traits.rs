//! The framework interface implemented by STONE and every baseline.

use stone_radio::Point2;

use crate::dataset::FingerprintDataset;
use crate::types::Trajectory;

/// A deployed (trained) indoor-localization model.
///
/// The online phase of the paper's Fig. 2: the model receives an RSSI vector
/// captured by the user's device and predicts a floorplan position.
pub trait Localizer {
    /// Short human-readable framework name (used in reports).
    fn name(&self) -> &str;

    /// Predicts the position for a single RSSI vector (dBm; -100 = missing
    /// AP, matching [`crate::MISSING_RSSI_DBM`]).
    fn locate(&self, rssi: &[f32]) -> Point2;

    /// Offers newly collected *unlabeled* scans to the model.
    ///
    /// Frameworks that re-train post-deployment (LT-KNN re-fits its radio
    /// map every collection instance, Sec. V.A.3) use this hook; frameworks
    /// that are deployment-frozen — STONE's headline property — ignore it.
    fn adapt(&mut self, _scans: &[Vec<f32>]) {}

    /// Returns `true` when [`Localizer::adapt`] actually does something;
    /// used by reports to annotate which frameworks require re-training.
    fn requires_retraining(&self) -> bool {
        false
    }

    /// Localizes an ordered walk. The default localizes each scan
    /// independently; sequential frameworks (GIFT) override this to exploit
    /// consecutive-scan structure.
    fn locate_trajectory(&mut self, traj: &Trajectory) -> Vec<Point2> {
        traj.fingerprints.iter().map(|f| self.locate(&f.rssi)).collect()
    }
}

/// A trainable localization framework: the offline phase of Fig. 2.
///
/// `Sync` is a supertrait so the evaluation harness can train and evaluate
/// several frameworks concurrently (`stone-eval`'s parallel
/// `Experiment::run`); implementations are plain configuration values, so
/// the bound costs nothing.
pub trait Framework: Sync {
    /// Short human-readable framework name.
    fn name(&self) -> &str;

    /// Trains on the offline dataset and returns a deployable model.
    ///
    /// `seed` controls all stochastic aspects of training so experiments are
    /// reproducible.
    fn fit(&self, train: &FingerprintDataset, seed: u64) -> Box<dyn Localizer>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Fingerprint, RpId, Trajectory};
    use stone_radio::SimTime;

    struct Fixed;

    impl Localizer for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn locate(&self, _rssi: &[f32]) -> Point2 {
            Point2::new(1.0, 2.0)
        }
    }

    #[test]
    fn default_trajectory_maps_locate() {
        let mut l = Fixed;
        let traj = Trajectory::new(vec![
            Fingerprint {
                rssi: vec![-40.0],
                rp: RpId(0),
                pos: Point2::new(0.0, 0.0),
                time: SimTime::start(),
                ci: 0,
            },
            Fingerprint {
                rssi: vec![-50.0],
                rp: RpId(1),
                pos: Point2::new(1.0, 0.0),
                time: SimTime::start(),
                ci: 0,
            },
        ]);
        let out = l.locate_trajectory(&traj);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Point2::new(1.0, 2.0));
        assert!(!l.requires_retraining());
    }
}
