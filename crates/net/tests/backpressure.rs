//! The wire half of the backpressure contract (satellite 3): a paused
//! inner server with queue capacity K behind the TCP front-end, more than
//! K pipelined requests in flight — exactly the overflow is shed with a
//! wire-visible [`WireStatus::Shed`], the shed responses overtake the
//! queued answers (completion order), and the serve-side `rejected`
//! counter matches what the client observed on the wire.

mod common;

use std::time::Duration;

use stone_net::{NetClient, NetServer, WireStatus};
use stone_serve::{LocalizationServer, ServerConfig};

const CAPACITY: usize = 4;
const SENT: usize = 9;

#[test]
fn overflow_is_shed_on_the_wire_and_ledgers_agree() {
    let (registry, suite) = common::office_registry(21);
    let scan = suite.train.records()[0].rssi.clone();

    // Paused executors: the queue fills to exactly CAPACITY before any
    // request executes, so the shed set is deterministic.
    let inner = LocalizationServer::start_paused(
        registry,
        ServerConfig {
            max_batch: 16,
            max_wait: Duration::ZERO,
            queue_capacity: CAPACITY,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let mut server = NetServer::start_with(inner, "127.0.0.1:0").expect("bind ephemeral port");

    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(20))).expect("read timeout");

    // Fire SENT pipelined requests; ids come back 1..=SENT.
    let ids: Vec<u64> = (0..SENT).map(|_| client.send("office", &scan).expect("send")).collect();
    assert_eq!(ids, (1..=SENT as u64).collect::<Vec<_>>());

    // The overflow is answered first: its Shed responses are produced
    // inline at submit time, while the accepted requests sit in the
    // paused queue. Completion order means the wire shows the sheds
    // *before* the answers to earlier requests.
    let mut shed_ids = Vec::new();
    for _ in 0..SENT - CAPACITY {
        let resp = client.recv().expect("shed response");
        assert_eq!(resp.result, Err(WireStatus::Shed), "id {}", resp.request_id);
        shed_ids.push(resp.request_id);
    }
    shed_ids.sort_unstable();
    assert_eq!(
        shed_ids,
        (CAPACITY as u64 + 1..=SENT as u64).collect::<Vec<_>>(),
        "exactly the requests beyond capacity are shed"
    );

    // Nothing has executed yet; the ledgers already show the sheds.
    let mid = server.serve_stats();
    assert_eq!(mid.rejected as usize, SENT - CAPACITY);
    assert_eq!(mid.enqueued as usize, CAPACITY);
    assert_eq!(mid.completed, 0, "executors are still paused");
    assert_eq!(server.stats().shed as usize, SENT - CAPACITY);

    // Resume: every accepted request is answered (completion order again —
    // one batch, so arrival order within it is submission order).
    server.resume();
    let mut ok_ids = Vec::new();
    for _ in 0..CAPACITY {
        let resp = client.recv().expect("answer");
        let pos = resp.result.expect("accepted request answered");
        assert_eq!(pos.model_version, 1);
        ok_ids.push(resp.request_id);
    }
    ok_ids.sort_unstable();
    assert_eq!(ok_ids, (1..=CAPACITY as u64).collect::<Vec<_>>());

    let served = server.serve_stats();
    assert_eq!(served.completed as usize, CAPACITY);
    assert_eq!(served.rejected as usize, SENT - CAPACITY);
    assert_eq!(served.queue_depth, 0);

    let wire = server.shutdown();
    assert_eq!(wire.requests_decoded as usize, SENT);
    assert_eq!(wire.shed as usize, SENT - CAPACITY, "wire sheds match the serve ledger");
    assert_eq!(wire.responses_written as usize, SENT, "every request got a wire answer");
    assert_eq!(wire.malformed_frames, 0);
}
