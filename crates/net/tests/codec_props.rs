//! Property tests for the wire codec (satellite 1): round-trips are
//! bit-exact (including NaN RSSI payloads), and hostile bytes — truncated,
//! oversized, wrong-version, or plain random — are rejected with a
//! `WireError`, never a panic and never an oversized allocation.

use proptest::prelude::*;
use stone_net::codec::{
    decode_request, decode_response, encode_request, encode_response, FrameBuffer,
};
use stone_net::{
    ScanRequest, ScanResponse, WireError, WirePosition, WireStatus, MAX_FRAME_LEN,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Arbitrary request ids, venue names (0..=24 lowercase chars) and RSSI
/// vectors drawn from the *full* `f32` bit space — NaNs, infinities,
/// subnormals and all — so "bit-exact" means exactly that.
fn request_strategy() -> impl Strategy<Value = ScanRequest> {
    any::<u64>().prop_map(|seed| {
        let mut rng = sample_rng(seed);
        let venue_len = (rng.next() % 25) as usize;
        let venue: String =
            (0..venue_len).map(|_| char::from(b'a' + (rng.next() % 26) as u8)).collect();
        let ap_count = (rng.next() % 65) as usize;
        let rssi: Vec<f32> = (0..ap_count).map(|_| f32::from_bits(rng.next())).collect();
        ScanRequest {
            request_id: rng.next_u64(),
            deadline_us: rng.next(),
            trace_id: rng.next_u64(),
            venue,
            rssi,
        }
    })
}

/// A tiny splitmix-style generator so one sampled `u64` can drive a whole
/// variable-length structure (the proptest shim samples each argument
/// independently, which cannot express "length then that many elements").
struct SampleRng(u64);

fn sample_rng(seed: u64) -> SampleRng {
    SampleRng(seed)
}

impl SampleRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
        z ^ (z >> 33)
    }

    fn next(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

const STATUSES: [WireStatus; 9] = [
    WireStatus::Shed,
    WireStatus::UnknownVenue,
    WireStatus::DimensionMismatch,
    WireStatus::EmptyModel,
    WireStatus::ShuttingDown,
    WireStatus::Malformed,
    WireStatus::Internal,
    WireStatus::DeadlineExceeded,
    WireStatus::Unavailable,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip_is_bit_exact(req in request_strategy()) {
        let frame = encode_request(&req).expect("within caps by construction");
        let (got, version) = decode_request(&frame[4..]).expect("own encoding decodes");
        prop_assert_eq!(version, PROTOCOL_VERSION);
        prop_assert_eq!(got.request_id, req.request_id);
        prop_assert_eq!(got.deadline_us, req.deadline_us);
        prop_assert_eq!(got.trace_id, req.trace_id);
        prop_assert_eq!(&got.venue, &req.venue);
        prop_assert_eq!(bits(&got.rssi), bits(&req.rssi));
    }

    #[test]
    fn response_roundtrip_is_bit_exact(seed in any::<u64>()) {
        let mut rng = sample_rng(seed);
        let result = if rng.next().is_multiple_of(2) {
            Ok(WirePosition {
                x: f64::from_bits(rng.next_u64()),
                y: f64::from_bits(rng.next_u64()),
                model_version: rng.next_u64(),
            })
        } else {
            Err(STATUSES[(rng.next() % 9) as usize])
        };
        let resp = ScanResponse { request_id: rng.next_u64(), result };
        let frame = encode_response(&resp, PROTOCOL_VERSION);
        let got = decode_response(&frame[4..]).expect("own encoding decodes");
        prop_assert_eq!(got.request_id, resp.request_id);
        match (got.result, resp.result) {
            (Ok(g), Ok(w)) => {
                prop_assert_eq!(g.x.to_bits(), w.x.to_bits());
                prop_assert_eq!(g.y.to_bits(), w.y.to_bits());
                prop_assert_eq!(g.model_version, w.model_version);
            }
            (Err(g), Err(w)) => prop_assert_eq!(g, w),
            (g, w) => return Err(format!("arm flipped: {g:?} vs {w:?}")),
        }
    }

    #[test]
    fn every_strict_prefix_is_rejected_not_panicked(req in request_strategy()) {
        // Every field is length-declared, so cutting the payload anywhere
        // must surface as an error (almost always `Truncated`) — and the
        // decoder must never panic on any cut point.
        let frame = encode_request(&req).expect("within caps");
        let payload = &frame[4..];
        for cut in 0..payload.len() {
            prop_assert!(
                decode_request(&payload[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded successfully",
                payload.len()
            );
        }
        for cut in 0..14.min(payload.len()) {
            prop_assert!(decode_response(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn random_bytes_never_panic_the_decoders(seed in any::<u64>(), len in 0usize..256) {
        let mut rng = sample_rng(seed);
        let payload: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
        // Either outcome is fine; panicking or over-allocating is not.
        let _ = decode_request(&payload);
        let _ = decode_response(&payload);
        let mut fb = FrameBuffer::new();
        fb.push_bytes(&payload);
        while let Ok(Some(p)) = fb.next_payload() {
            let _ = decode_request(&p);
            let _ = decode_response(&p);
        }
    }

    #[test]
    fn frame_buffer_reassembly_is_chunking_invariant(req in request_strategy(), seed in any::<u64>()) {
        // Delivering the same two frames under any chunking (down to one
        // byte per read) yields the same payload sequence.
        let mut rng = sample_rng(seed);
        let mut stream = encode_request(&req).expect("within caps");
        stream.extend_from_slice(&encode_response(
            &ScanResponse { request_id: req.request_id, result: Err(WireStatus::Shed) },
            PROTOCOL_VERSION,
        ));
        let mut fb = FrameBuffer::new();
        let mut payloads = Vec::new();
        let mut rest = &stream[..];
        while !rest.is_empty() {
            let take = 1 + (rng.next() as usize) % rest.len().min(7);
            let (chunk, tail) = rest.split_at(take.min(rest.len()));
            fb.push_bytes(chunk);
            rest = tail;
            while let Some(p) = fb.next_payload().expect("well-formed stream") {
                payloads.push(p);
            }
        }
        prop_assert_eq!(payloads.len(), 2);
        let (got, _) = decode_request(&payloads[0]).expect("request arrives intact");
        prop_assert_eq!(bits(&got.rssi), bits(&req.rssi));
        prop_assert_eq!(
            decode_response(&payloads[1]).expect("response arrives intact").result,
            Err(WireStatus::Shed)
        );
        prop_assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn corrupted_header_bytes_are_rejected(req in request_strategy(), tweak in any::<u32>()) {
        let mut frame = encode_request(&req).expect("within caps");
        // Corrupt the version byte to anything *outside* the accepted
        // [MIN_PROTOCOL_VERSION, PROTOCOL_VERSION] range.
        let bad_version = {
            let mut v = (tweak & 0xff) as u8;
            while (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&v) {
                v = v.wrapping_add(3);
            }
            v
        };
        frame[4] = bad_version;
        prop_assert_eq!(
            decode_request(&frame[4..]).map(|_| ()),
            Err(WireError::BadVersion(bad_version))
        );
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_buffering(extra in 1usize..1_000_000) {
        let declared = MAX_FRAME_LEN + extra;
        let mut fb = FrameBuffer::new();
        fb.push_bytes(&(declared as u32).to_le_bytes());
        prop_assert_eq!(fb.next_payload(), Err(WireError::Oversized { declared }));
    }
}
