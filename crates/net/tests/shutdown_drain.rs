//! Shutdown coverage (satellite 4): graceful drain answers everything
//! already accepted, new connects are refused once drain begins, and
//! `shutdown()` joins every thread it spawned — pinned across a worker
//! budget of 1, 2 and 8 (`STONE_THREADS` scoped via `stone_par`), with a
//! `/proc`-based thread-leak check on Linux.

mod common;

use std::net::TcpStream;
use std::time::{Duration, Instant};

use stone_net::{ClientError, NetClient, NetServer};
use stone_par::with_threads;
use stone_serve::{LocalizationServer, ServerConfig};

const IN_FLIGHT: usize = 16;

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Current OS thread count of this process (Linux only — the leak check is
/// skipped elsewhere).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status readable")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line present")
        .trim()
        .parse()
        .expect("thread count parses")
}

#[cfg(not(target_os = "linux"))]
fn thread_count() -> usize {
    0 // no /proc: the leak assertion degenerates to 0 == 0
}

/// One full lifecycle: start paused, accept a client, take `IN_FLIGHT`
/// requests into the queue, then shut down — the drain must *answer* all
/// of them (then EOF), and a connect attempted after drain must fail.
/// The registry (and its trained model) is shared across cycles: training
/// is the expensive part, and the lifecycle under test starts at `start`.
fn drain_cycle(registry: &std::sync::Arc<stone_serve::ModelRegistry>, scan: &[f32]) {
    let registry = std::sync::Arc::clone(registry);
    let snapshot = registry.snapshot("office").expect("published");

    // Paused executors: every request is *accepted but unanswered* when
    // the drain begins, which is exactly the case graceful shutdown must
    // not drop.
    let inner = LocalizationServer::start_paused(
        registry,
        ServerConfig {
            max_batch: IN_FLIGHT,
            max_wait: Duration::ZERO,
            queue_capacity: 2 * IN_FLIGHT,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let mut server = NetServer::start_with(inner, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(20))).expect("read timeout");
    for _ in 0..IN_FLIGHT {
        client.send("office", scan).expect("send");
    }
    wait_for(
        || server.serve_stats().enqueued as usize == IN_FLIGHT,
        "all requests accepted into the queue",
    );

    // Drain. This resumes the executors, answers the 16 queued requests,
    // flushes them to the socket, half-closes, and joins every thread —
    // all before returning.
    let wire = server.shutdown();
    assert_eq!(wire.requests_decoded as usize, IN_FLIGHT);
    assert_eq!(wire.responses_written as usize, IN_FLIGHT, "drain answered everything accepted");
    assert_eq!(wire.shed, 0);
    assert_eq!(wire.malformed_frames, 0);
    assert_eq!(
        wire.connections_closed, wire.connections_accepted,
        "every connection fully torn down"
    );

    // The client reads all 16 answers (correct ones), then a clean EOF.
    let mut ids: Vec<u64> = (0..IN_FLIGHT)
        .map(|_| {
            let resp = client.recv().expect("drained answer");
            let pos = resp.result.expect("drained request answered, not errored");
            assert_eq!(pos.model_version, snapshot.version());
            resp.request_id
        })
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (1..=IN_FLIGHT as u64).collect::<Vec<_>>(), "no answer lost or duplicated");
    assert!(
        matches!(client.recv(), Err(ClientError::Closed)),
        "after the drained answers comes EOF, not garbage"
    );

    // The listener is gone: new connects are refused (or at worst reset —
    // they never reach a serving state).
    assert!(
        TcpStream::connect(addr).is_err(),
        "connect after shutdown should be refused at {addr}"
    );
}

#[test]
fn drain_completes_in_flight_under_every_thread_budget() {
    let (registry, suite) = common::office_registry(33);
    let scan = suite.train.records()[0].rssi.clone();
    for threads in [1usize, 2, 8] {
        with_threads(threads, || {
            // Warm-up: populates stone-par's persistent worker pool and any
            // lazily-initialized state, so the leak check below compares
            // steady state to steady state.
            drain_cycle(&registry, &scan);
            let baseline = thread_count();
            drain_cycle(&registry, &scan);
            let after = thread_count();
            assert_eq!(
                after, baseline,
                "thread leak at STONE_THREADS={threads}: {baseline} -> {after}"
            );
        });
    }
}
