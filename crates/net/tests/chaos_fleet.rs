//! The PR 9 acceptance scenario: a small fleet hammers a chaos-injected
//! server — one venue panics on its latest model, stalls are injected, a
//! corrupt publish lands mid-run — and the contract holds:
//!
//! * zero executor / connection thread deaths (pinned via `/proc`);
//! * every failed request is wire-visible with a correct status from the
//!   documented set — nothing hangs, nothing vanishes;
//! * the panicking venue trips its breaker and rolls back to the last-good
//!   model, then serves again;
//! * no expired or fast-failed request ever occupies a batch slot
//!   (`batched + expired + fast_failed == completed`);
//! * the corrupt publish is rejected and the incumbent keeps serving.

mod common;

use std::sync::Arc;
use std::time::Duration;

use stone_net::{ClientError, NetClient, NetServer, RetryPolicy, WireStatus};
use stone_serve::{corrupt_blob, ChaosConfig, LocalizationServer, ModelRegistry, ServerConfig};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 120;
const TIMEOUT: Duration = Duration::from_secs(20);

/// Current OS thread count of this process (Linux only — the death/leak
/// check degenerates to `0 == 0` elsewhere).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status readable")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line present")
        .trim()
        .parse()
        .expect("thread count parses")
}

#[cfg(not(target_os = "linux"))]
fn thread_count() -> usize {
    0
}

#[test]
fn chaos_fleet_survives_with_wire_visible_failures() {
    let idle_threads = thread_count();

    let suite = common::tiny_suite(31);
    let blob = common::tiny_localizer(&suite, 31).save();
    let scan = suite.train.records()[0].rssi.clone();

    let registry = Arc::new(ModelRegistry::new());
    assert_eq!(registry.publish_bytes("stable", &blob).unwrap(), 1);
    assert_eq!(registry.publish_bytes("flaky", &blob).unwrap(), 1);
    // The "bad deploy": flaky's v2 panics on every batch (chaos below).
    assert_eq!(registry.publish_bytes("flaky", &blob).unwrap(), 2);

    let chaos = ChaosConfig::none().with_panic("flaky", Some(2), None).with_stall(
        "stable",
        None,
        Duration::from_millis(5),
        Some(3),
    );
    let inner = LocalizationServer::start_with_chaos(
        Arc::clone(&registry),
        ServerConfig {
            max_batch: 16,
            max_wait: Duration::ZERO,
            queue_capacity: 64,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(30),
            ..ServerConfig::default()
        },
        chaos,
    );
    let mut server = NetServer::start_with(inner, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();

    // Persistent fleet connections, established before the baseline so the
    // per-connection reader/writer threads are part of it.
    let clients: Vec<NetClient> = (0..CLIENTS)
        .map(|i| {
            let mut c =
                NetClient::connect_with(addr, RetryPolicy::quick(31 + i as u64)).expect("connect");
            c.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
            // One warmup round-trip: a response proves this connection's
            // reader and writer threads are up, so they are part of the
            // baseline below.
            assert!(c.locate("stable", &scan).is_ok(), "warmup request serves");
            c
        })
        .collect();
    let baseline = thread_count();

    // The fleet: every client mixes venues and deadline budgets; every
    // outcome must be an answer or a documented wire status.
    let mut ok = 0u64;
    let mut failed = 0u64;
    let clients: Vec<NetClient> = std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(ci, mut client)| {
                let scan = scan.clone();
                s.spawn(move || {
                    let mut ok = 0u64;
                    let mut failed = 0u64;
                    for i in 0..REQUESTS_PER_CLIENT {
                        let venue = if i % 2 == 0 { "stable" } else { "flaky" };
                        // Every 8th request carries a 1 µs budget it cannot
                        // possibly meet — the deadline-expiry stream.
                        let deadline_us = if i % 8 == 3 { 1 } else { 0 };
                        match client.locate_deadline_us(venue, &scan, deadline_us) {
                            Ok(pos) => {
                                assert!(pos.x.is_finite() && pos.y.is_finite());
                                ok += 1;
                            }
                            Err(ClientError::Status(status)) => {
                                assert!(
                                    matches!(
                                        status,
                                        WireStatus::Shed
                                            | WireStatus::Internal
                                            | WireStatus::Unavailable
                                            | WireStatus::DeadlineExceeded
                                    ),
                                    "client {ci} got an undocumented failure: {status:?}"
                                );
                                failed += 1;
                            }
                            Err(other) => panic!("client {ci} lost a request: {other:?}"),
                        }
                    }
                    (client, ok, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (client, client_ok, client_failed) = h.join().expect("client thread survives");
                ok += client_ok;
                failed += client_failed;
                client
            })
            .collect()
    });
    assert_eq!(
        ok + failed,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64,
        "every request resolved to an answer or a documented status"
    );

    // Mid-run event, replayed at rest for determinism of the assertion: a
    // corrupt publish must be rejected with the incumbent left serving.
    assert!(
        registry.publish_bytes("stable", &corrupt_blob(&blob)).is_err(),
        "corrupt blob must fail its checksum"
    );
    assert_eq!(registry.snapshot("stable").expect("still published").version(), 1);

    // Thread deaths are leaks in reverse: a panicking batch must not have
    // cost an executor, and no connection thread may have died (the fleet
    // connections are all still open).
    assert_eq!(thread_count(), baseline, "an executor or connection thread died (or leaked)");

    // The flaky venue tripped, rolled back to last-good v1, and serves.
    assert_eq!(registry.snapshot("flaky").expect("still published").version(), 1);
    let stats = server.serve_stats();
    assert!(stats.panicked_batches >= 2, "the bad deploy panicked until the breaker tripped");
    let flaky = stats.venues.iter().find(|v| v.venue == "flaky").expect("venue stats");
    assert!(flaky.breaker_trips >= 1);
    assert!(stats.expired >= 1, "the 1 µs budgets produced wire-visible expirations");

    // Every completed request was either batched, expired in the queue, or
    // fast-failed by an open breaker — expired and fast-failed work never
    // occupied a batch slot.
    let batched: u64 = stats.batch_hist.iter().enumerate().map(|(i, &n)| (i as u64 + 1) * n).sum();
    let fast_failed: u64 = stats.venues.iter().map(|v| v.fast_failed).sum();
    assert_eq!(batched + stats.expired + fast_failed, stats.completed);

    // The server still serves both venues after the storm.
    let mut check = NetClient::connect(addr).expect("connect");
    check.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
    assert!(check.locate("stable", &scan).is_ok());
    assert!(check.locate("flaky", &scan).is_ok(), "rolled-back venue serves again");

    assert!(ok > 0, "the fleet got real answers through the chaos");
    drop(check);
    drop(clients);
    let ledger = server.shutdown();
    assert_eq!(ledger.requests_decoded, ledger.responses_written, "no request went unanswered");

    // Everything the front-end spawned is joined; only the harness threads
    // that existed before the server remain.
    let deadline = std::time::Instant::now() + TIMEOUT;
    while thread_count() > idle_threads {
        assert!(std::time::Instant::now() < deadline, "server threads leaked past shutdown");
        std::thread::sleep(Duration::from_millis(2));
    }
}
