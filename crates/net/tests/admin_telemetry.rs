//! The wire-queryable telemetry surface (PR 10): admin stats/trace
//! queries answered over TCP, exposition text that round-trips through
//! the strict parser, v3 trace ids carried from the client into the
//! server's stage spans, and a balanced span ledger.
//!
//! Tracing state is process-global, so this file holds a single test.

mod common;

use std::time::Duration;

use stone_net::NetClient;
use stone_obs::{mint_trace_id, parse_exposition, set_tracing, Sample};
use stone_serve::ServerConfig;

const SCANS: usize = 12;

/// The first sample with `name` and exactly these labels.
fn find<'a>(samples: &'a [Sample], name: &str, labels: &[(&str, &str)]) -> Option<&'a Sample> {
    samples.iter().find(|s| {
        s.name == name
            && s.labels.len() == labels.len()
            && s.labels.iter().zip(labels).all(|(got, want)| got.0 == want.0 && got.1 == want.1)
    })
}

#[test]
fn admin_queries_answer_over_tcp_with_carried_trace_ids() {
    let (registry, suite) = common::office_registry(31);
    let scan = suite.train.records()[0].rssi.clone();
    let mut server = stone_net::NetServer::start(
        registry,
        "127.0.0.1:0",
        ServerConfig { max_batch: 8, ..ServerConfig::default() },
    )
    .expect("bind ephemeral port");

    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(20))).expect("read timeout");

    set_tracing(true);
    // Bracket the run with two locally minted ids: every id the client
    // mints for the scans below falls strictly between them, and if the
    // server were re-minting instead of carrying the wire's trace id, the
    // bracket would widen by another SCANS.
    let low = mint_trace_id();
    for _ in 0..SCANS {
        client.locate("office", &scan).expect("traced locate");
    }
    let high = mint_trace_id();
    assert_eq!(
        high - low,
        SCANS as u64 + 1,
        "one minted id per scan: the server carried the wire ids instead of re-minting"
    );
    // The WriteBack span is recorded *after* the reply is sent, so give
    // the executor a beat to finish the last request's bookkeeping before
    // snapshotting ledgers over the wire.
    std::thread::sleep(Duration::from_millis(200));

    // Stats: the whole surface in one parseable document.
    let stats = client.fetch_stats().expect("fetch stats");
    let samples = parse_exposition(&stats).expect("exposition parses strictly");
    let completed = find(&samples, "stone_serve_completed_total", &[]).expect("completed counter");
    assert!(completed.value >= SCANS as f64, "completed {} < {SCANS}", completed.value);
    let version =
        find(&samples, "stone_model_version", &[("venue", "office")]).expect("model version gauge");
    assert_eq!(version.value, 1.0);
    let decoded =
        find(&samples, "stone_net_requests_decoded_total", &[]).expect("net decode counter");
    assert!(decoded.value >= SCANS as f64);
    assert!(
        find(&samples, "stone_serve_latency_us_count", &[]).is_some(),
        "latency histogram crossed the wire"
    );
    let opened = find(&samples, "stone_trace_spans_opened_total", &[]).expect("ledger opened");
    let closed = find(&samples, "stone_trace_spans_closed_total", &[]).expect("ledger closed");
    assert_eq!(opened.value, closed.value, "span ledger balances over the wire");
    assert!(opened.value >= (SCANS * 5) as f64, "five spans per answered scan");

    // Trace: the span ring as text, holding complete traces for the
    // bracketed ids — five stages each.
    let trace = client.fetch_trace().expect("fetch trace");
    assert!(trace.starts_with("# span ring:"), "header line present: {trace:?}");
    for stage in ["queue_wait", "collect", "snapshot", "infer", "write_back"] {
        assert!(trace.contains(&format!("stage={stage}")), "{stage} span in dump");
    }
    let mut in_bracket = 0usize;
    for line in trace.lines().filter(|l| !l.starts_with('#')) {
        let id: u64 = line
            .split_whitespace()
            .find_map(|f| f.strip_prefix("trace_id="))
            .expect("trace_id field")
            .parse()
            .expect("numeric trace id");
        if id > low && id < high {
            in_bracket += 1;
        }
    }
    assert_eq!(in_bracket, SCANS * 5, "every scan's five spans carry its wire trace id");

    set_tracing(false);
    server.shutdown();
}
