//! Fault-injection suite (satellite 2): hostile and broken connections —
//! half-open peers, mid-frame disconnects, garbage preambles, one-byte
//! dribblers — must each affect only themselves. Throughout, a well-behaved
//! client keeps getting answers that are bitwise equal to direct in-process
//! `locate` calls, and the wire counters account for every event exactly.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use stone_dataset::Localizer;
use stone_net::codec::{decode_response, encode_request, FrameBuffer};
use stone_net::{NetClient, NetServer, ScanRequest, WireStatus};
use stone_serve::ServerConfig;

const TIMEOUT: Duration = Duration::from_secs(20);

fn poll_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + TIMEOUT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn faulty_connections_only_hurt_themselves() {
    let (registry, suite) = common::office_registry(7);
    let snapshot = registry.snapshot("office").expect("published");
    let scans: Vec<Vec<f32>> = suite
        .buckets
        .iter()
        .flat_map(|b| b.trajectories.iter().flat_map(|t| &t.fingerprints))
        .map(|f| f.rssi.clone())
        .take(8)
        .collect();
    assert_eq!(scans.len(), 8, "suite too small for the scenario");

    let mut server = NetServer::start(
        registry,
        "127.0.0.1:0",
        ServerConfig { queue_capacity: 64, workers: 1, ..ServerConfig::default() },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    // Fault 1: a half-open peer — connects, sends nothing, just sits there.
    // It must not occupy anything the other connections need.
    let half_open = TcpStream::connect(addr).expect("half-open connect");

    // Fault 2: a mid-frame disconnect — declares a 64-byte payload,
    // delivers 10 bytes, vanishes. Not a protocol violation the server can
    // even prove (the rest could have been in flight), so it is *not*
    // counted malformed; the reader just unwinds.
    {
        let mut s = TcpStream::connect(addr).expect("mid-frame connect");
        s.write_all(&64u32.to_le_bytes()).expect("length prefix");
        s.write_all(&[0u8; 10]).expect("partial payload");
    } // dropped here: RST/FIN mid-frame

    // Fault 3: a garbage preamble — an HTTP request, say. The first four
    // bytes read as a ~540 MB declared length, so the server answers with
    // the request-id-0 Malformed goodbye and closes without allocating.
    let mut garbage = TcpStream::connect(addr).expect("garbage connect");
    garbage.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
    garbage.write_all(b"GET /locate HTTP/1.1\r\n\r\n").expect("garbage bytes");
    {
        let mut frames = FrameBuffer::new();
        let mut buf = [0u8; 256];
        let goodbye = loop {
            if let Some(payload) = frames.next_payload().expect("well-formed goodbye") {
                break decode_response(&payload).expect("goodbye decodes");
            }
            let n = garbage.read(&mut buf).expect("read goodbye");
            assert!(n > 0, "EOF before the Malformed goodbye");
            frames.push_bytes(&buf[..n]);
        };
        assert_eq!(goodbye.request_id, 0);
        assert_eq!(goodbye.result, Err(WireStatus::Malformed));
        // After the goodbye the server closes the connection.
        poll_until(|| garbage.read(&mut buf).map(|n| n == 0).unwrap_or(true), "garbage conn EOF");
    }

    // Fault 4: a dribbler — a perfectly valid frame delivered one byte at a
    // time. Slow is not wrong: it must get a real answer.
    {
        let frame = encode_request(&ScanRequest {
            request_id: 99,
            deadline_us: 0,
            trace_id: 0,
            venue: "office".into(),
            rssi: scans[0].clone(),
        })
        .expect("within caps");
        let mut s = TcpStream::connect(addr).expect("dribble connect");
        s.set_nodelay(true).expect("nodelay");
        s.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
        for &b in &frame {
            s.write_all(&[b]).expect("dribble byte");
            std::thread::sleep(Duration::from_micros(200));
        }
        let mut frames = FrameBuffer::new();
        let mut buf = [0u8; 256];
        let resp = loop {
            if let Some(payload) = frames.next_payload().expect("well-formed response") {
                break decode_response(&payload).expect("response decodes");
            }
            let n = s.read(&mut buf).expect("read response");
            assert!(n > 0, "EOF before the dribbler's answer");
            frames.push_bytes(&buf[..n]);
        };
        assert_eq!(resp.request_id, 99);
        let pos = resp.result.expect("dribbled request is answered");
        let direct = snapshot.model().locate(&scans[0]);
        assert_eq!((pos.x, pos.y), (direct.x, direct.y), "dribbled answer differs from direct");
        assert_eq!(pos.model_version, snapshot.version());
    }

    // Meanwhile, a well-behaved client gets every answer, each bitwise
    // equal to a direct in-process locate on the same snapshot.
    let mut client = NetClient::connect(addr).expect("good client connect");
    client.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
    for scan in &scans {
        let pos = client.locate("office", scan).expect("good client is served");
        let direct = snapshot.model().locate(scan);
        assert_eq!((pos.x, pos.y), (direct.x, direct.y), "served answer differs from direct");
        assert_eq!(pos.model_version, snapshot.version());
    }

    // Unknown venues and dimension mismatches come back as status codes on
    // a healthy connection — not as closes.
    let err = client.locate("atlantis", &scans[0]).expect_err("unknown venue");
    assert!(
        matches!(err, stone_net::ClientError::Status(WireStatus::UnknownVenue)),
        "unexpected error: {err}"
    );
    let err = client.locate("office", &[0.0_f32; 3]).expect_err("dimension mismatch");
    assert!(
        matches!(err, stone_net::ClientError::Status(WireStatus::DimensionMismatch)),
        "unexpected error: {err}"
    );
    let pos = client.locate("office", &scans[0]).expect("still serving after status errors");
    assert_eq!(pos.model_version, snapshot.version());

    // The two broken connections (mid-frame, garbage) have fully closed by
    // now; the half-open one and the good client are still up.
    poll_until(|| server.stats().connections_closed >= 3, "faulty conns torn down");

    let live = server.stats();
    assert_eq!(live.connections_accepted, 5, "half-open + mid-frame + garbage + dribble + good");
    assert_eq!(live.malformed_frames, 1, "only the garbage preamble is provably malformed");
    // 8 good locates + unknown-venue + mismatch + 1 retry + 1 dribble.
    assert_eq!(live.requests_decoded, 12);
    assert_eq!(live.shed, 0, "nothing overflowed the queue in this scenario");

    let final_stats = server.shutdown();
    drop(half_open);
    assert_eq!(final_stats.connections_closed, 5, "every connection torn down on drain");
    assert_eq!(final_stats.responses_written, 13, "12 answers + 1 malformed goodbye");
}
