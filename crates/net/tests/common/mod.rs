//! Shared fixtures for the stone-net integration suites: a tiny trained
//! localizer (small enough to fit in a test's time budget, real enough to
//! produce meaningful positions) and a registry holding it.

#![allow(dead_code)] // each test binary uses a subset of these helpers

use std::sync::Arc;

use stone::{KnnMode, StoneBuilder, StoneConfig, StoneLocalizer, TrainerConfig};
use stone_dataset::{office_suite, LongTermSuite, SuiteConfig};
use stone_serve::ModelRegistry;

/// A tiny office deployment: fast to generate, deterministic per seed.
pub fn tiny_suite(seed: u64) -> LongTermSuite {
    office_suite(&SuiteConfig::tiny(seed))
}

/// Trains a small model on the suite's survey (mirrors the stone-serve
/// test fixture).
pub fn tiny_localizer(suite: &LongTermSuite, seed: u64) -> StoneLocalizer {
    StoneBuilder::from_config(StoneConfig {
        trainer: TrainerConfig {
            embed_dim: 4,
            epochs: 1,
            triplets_per_epoch: 16,
            batch_size: 8,
            ..TrainerConfig::quick()
        },
        knn_k: 3,
        knn_mode: KnnMode::WeightedRegression,
    })
    .fit(&suite.train, seed)
}

/// A registry with one published venue, plus the suite it was trained on.
pub fn office_registry(seed: u64) -> (Arc<ModelRegistry>, LongTermSuite) {
    let suite = tiny_suite(seed);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("office", tiny_localizer(&suite, seed));
    (registry, suite)
}
