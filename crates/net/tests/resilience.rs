//! Wire-level resilience (PR 9): deadline budgets ride the v2 protocol and
//! expire server-side as wire-visible `DeadlineExceeded`; v1 clients keep
//! working against a v2 server (answered in v1); the client retry policy
//! retries sheds with jittered backoff, reconnects through dropped
//! connections, refuses to retry terminal statuses, and gives up cleanly
//! when the server is gone; and `NetServer::shutdown` is idempotent,
//! returning the same settled ledger twice.

mod common;

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use stone_net::codec::{decode_response, encode_request_v1, FrameBuffer};
use stone_net::{
    ClientError, NetClient, NetServer, RetryPolicy, ScanRequest, WireStatus, MIN_PROTOCOL_VERSION,
};
use stone_par::with_threads;
use stone_serve::{LocalizationServer, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(20);

fn quick_config() -> ServerConfig {
    ServerConfig { max_batch: 16, max_wait: Duration::ZERO, ..ServerConfig::default() }
}

/// A v2 request's deadline budget is honored end to end: queued past its
/// budget on a paused server, it comes back `DeadlineExceeded` while an
/// unbudgeted request submitted alongside it is answered. Pinned across
/// `STONE_THREADS` ∈ {1, 2, 8}.
#[test]
fn wire_deadline_budget_expires_server_side() {
    let (registry, suite) = common::office_registry(21);
    let scan = &suite.train.records()[0].rssi;
    for threads in [1usize, 2, 8] {
        with_threads(threads, || {
            let inner =
                LocalizationServer::start_paused(std::sync::Arc::clone(&registry), quick_config());
            let mut server =
                NetServer::start_with(inner, "127.0.0.1:0").expect("bind ephemeral port");
            let mut client = NetClient::connect(server.local_addr()).expect("connect");
            client.set_read_timeout(Some(TIMEOUT)).expect("read timeout");

            // 1 ms budget vs. no budget, both parked in the paused queue.
            let doomed = client.send_deadline("office", scan, 1_000).expect("send");
            let alive = client.send("office", scan).expect("send");
            std::thread::sleep(Duration::from_millis(20));
            server.resume();

            for _ in 0..2 {
                let resp = client.recv().expect("both requests answered");
                if resp.request_id == doomed {
                    assert_eq!(resp.result, Err(WireStatus::DeadlineExceeded));
                } else {
                    assert_eq!(resp.request_id, alive);
                    assert!(resp.result.is_ok(), "unbudgeted request answers normally");
                }
            }
            let stats = server.serve_stats();
            assert_eq!(stats.expired, 1);
            server.shutdown();
        });
    }
}

/// A protocol-v1 client (no deadline field) still gets served by a v2
/// server — and is answered in v1, its own version.
#[test]
fn v1_clients_interoperate_with_v2_server() {
    let (registry, suite) = common::office_registry(22);
    let scan = suite.train.records()[0].rssi.clone();
    let mut server =
        NetServer::start(registry, "127.0.0.1:0", quick_config()).expect("bind ephemeral port");

    let frame = encode_request_v1(&ScanRequest {
        request_id: 7,
        deadline_us: 0, // not on the v1 wire
        trace_id: 0,    // nor this
        venue: "office".into(),
        rssi: scan,
    })
    .expect("within caps");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
    stream.write_all(&frame).expect("send v1 frame");

    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 4096];
    let payload = loop {
        if let Some(p) = fb.next_payload().expect("well-formed response stream") {
            break p;
        }
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "server closed before answering");
        fb.push_bytes(&buf[..n]);
    };
    assert_eq!(payload[0], MIN_PROTOCOL_VERSION, "v1 requests are answered in v1");
    let resp = decode_response(&payload).expect("decodes");
    assert_eq!(resp.request_id, 7);
    assert!(resp.result.is_ok(), "v1 request is served");
    server.shutdown();
}

/// A shed (`WireStatus::Shed`) is transient: the retry policy backs off
/// and wins once capacity frees up, and the retry count is observable.
#[test]
fn retry_policy_rides_out_a_shed() {
    let (registry, suite) = common::office_registry(23);
    let scan = suite.train.records()[0].rssi.clone();
    // Capacity 1 and paused executors: the first request wedges the queue,
    // everything else sheds until `resume`.
    let inner = LocalizationServer::start_paused(
        registry,
        ServerConfig { queue_capacity: 1, ..quick_config() },
    );
    let mut server = NetServer::start_with(inner, "127.0.0.1:0").expect("bind ephemeral port");

    let mut filler = NetClient::connect(server.local_addr()).expect("connect");
    filler.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
    let filler_id = filler.send("office", &scan).expect("fills the queue");
    // The submit happens on the server's reader thread: wait until the
    // queue really holds it before counting on sheds.
    let deadline = std::time::Instant::now() + TIMEOUT;
    while server.serve_stats().queue_depth < 1 {
        assert!(std::time::Instant::now() < deadline, "queue never filled");
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut client = NetClient::connect_with(
        server.local_addr(),
        RetryPolicy {
            max_attempts: 20,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            retry_budget: u32::MAX,
            jitter_seed: 23,
        },
    )
    .expect("connect");
    client.set_read_timeout(Some(TIMEOUT)).expect("read timeout");

    // Unblock the queue mid-retry-loop.
    let server_ref = &server;
    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(40));
            server_ref.resume();
        });
        let pos = client.locate("office", &scan).expect("retries ride out the shed");
        assert!(pos.x.is_finite() && pos.y.is_finite());
    });
    assert!(client.total_retries() >= 1, "at least one attempt was shed and retried");

    // The queue-filling request is answered too once resumed.
    let resp = filler.recv().expect("filler answered");
    assert_eq!(resp.request_id, filler_id);
    assert!(resp.result.is_ok());
    server.shutdown();
}

/// `DeadlineExceeded` is terminal: the budget is the client saying the
/// answer is worthless after that long, so the policy must NOT retry it.
#[test]
fn deadline_exceeded_is_not_retried() {
    let (registry, suite) = common::office_registry(24);
    let scan = suite.train.records()[0].rssi.clone();
    let inner = LocalizationServer::start_paused(registry, quick_config());
    let mut server = NetServer::start_with(inner, "127.0.0.1:0").expect("bind ephemeral port");

    let mut client =
        NetClient::connect_with(server.local_addr(), RetryPolicy::quick(24)).expect("connect");
    client.set_read_timeout(Some(TIMEOUT)).expect("read timeout");

    let server_ref = &server;
    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(20));
            server_ref.resume();
        });
        let err = client.locate_deadline_us("office", &scan, 1_000).unwrap_err();
        assert!(
            matches!(err, ClientError::Status(WireStatus::DeadlineExceeded)),
            "expected terminal DeadlineExceeded, got {err:?}"
        );
    });
    assert_eq!(client.total_retries(), 0, "terminal statuses are never retried");
    server.shutdown();
}

/// A dropped connection is transient: the client reconnects (to the same
/// peer) and the retried attempt succeeds. The flaky first hop is a local
/// proxy that kills its first connection unanswered, then pipes every
/// later one through to the real server.
#[test]
fn retry_reconnects_through_a_dropped_connection() {
    let (registry, suite) = common::office_registry(25);
    let scan = suite.train.records()[0].rssi.clone();
    let mut server =
        NetServer::start(registry, "127.0.0.1:0", quick_config()).expect("bind ephemeral port");
    let upstream = server.local_addr();

    let flaky = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let flaky_addr = flaky.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        // Connection #1: accepted and immediately dropped — the client
        // sees EOF/reset mid-request.
        if let Ok((first, _)) = flaky.accept() {
            drop(first);
        }
        // Later connections: byte-for-byte pipes to the real server.
        while let Ok((down, _)) = flaky.accept() {
            let Ok(up) = TcpStream::connect(upstream) else { return };
            let (mut d2u_r, mut d2u_w) =
                (down.try_clone().expect("clone"), up.try_clone().expect("clone"));
            let pump = std::thread::spawn(move || {
                let _ = std::io::copy(&mut d2u_r, &mut d2u_w);
                let _ = d2u_w.shutdown(std::net::Shutdown::Write);
            });
            let (mut u2d_r, mut u2d_w) = (up, down);
            let _ = std::io::copy(&mut u2d_r, &mut u2d_w);
            let _ = u2d_w.shutdown(std::net::Shutdown::Write);
            let _ = pump.join();
        }
    });

    let mut client = NetClient::connect_with(
        flaky_addr,
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            retry_budget: u32::MAX,
            jitter_seed: 25,
        },
    )
    .expect("connect through proxy");
    client.set_read_timeout(Some(TIMEOUT)).expect("read timeout");

    let pos = client.locate("office", &scan).expect("reconnect + retry succeeds");
    assert!(pos.x.is_finite() && pos.y.is_finite());
    assert!(client.total_retries() >= 1, "the dropped first connection forced a retry");
    server.shutdown();
}

/// When the server is gone for good, the policy gives up after its bounded
/// attempts instead of spinning forever.
#[test]
fn retry_gives_up_when_the_server_stays_dead() {
    let (registry, suite) = common::office_registry(26);
    let scan = suite.train.records()[0].rssi.clone();
    let mut server =
        NetServer::start(registry, "127.0.0.1:0", quick_config()).expect("bind ephemeral port");

    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        retry_budget: u32::MAX,
        jitter_seed: 26,
    };
    let mut client = NetClient::connect_with(server.local_addr(), policy).expect("connect");
    client.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
    server.shutdown();

    let err = client.locate("office", &scan).unwrap_err();
    assert!(
        matches!(err, ClientError::Closed | ClientError::Io(_)),
        "a dead server surfaces as a connection error, got {err:?}"
    );
    assert_eq!(client.total_retries(), 3, "max_attempts - 1 retries, then give up");
}

/// The lifetime retry budget caps total retries across calls even when
/// per-call attempts would allow more.
#[test]
fn retry_budget_is_a_lifetime_cap() {
    let (registry, suite) = common::office_registry(27);
    let scan = suite.train.records()[0].rssi.clone();
    let mut server =
        NetServer::start(registry, "127.0.0.1:0", quick_config()).expect("bind ephemeral port");

    let policy = RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        retry_budget: 2,
        jitter_seed: 27,
    };
    let mut client = NetClient::connect_with(server.local_addr(), policy).expect("connect");
    client.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
    server.shutdown();

    let _ = client.locate("office", &scan).unwrap_err();
    assert_eq!(client.total_retries(), 2, "the lifetime budget stops the loop, not attempts");
    let _ = client.locate("office", &scan).unwrap_err();
    assert_eq!(client.total_retries(), 2, "a spent budget allows no further retries");
}

/// `NetServer::shutdown` is idempotent: the second call is a no-op that
/// returns the same settled ledger (satellite regression for PR 9).
#[test]
fn double_shutdown_returns_the_same_settled_ledger() {
    let (registry, suite) = common::office_registry(28);
    let scan = &suite.train.records()[0].rssi;
    let mut server =
        NetServer::start(registry, "127.0.0.1:0", quick_config()).expect("bind ephemeral port");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
    client.locate("office", scan).expect("served");
    drop(client);

    let first = server.shutdown();
    assert_eq!(first.requests_decoded, 1);
    assert_eq!(first.responses_written, 1);
    let second = server.shutdown();
    assert_eq!(first, second, "second shutdown returns the identical ledger");
}
